//! Event-driven testbed: the DPDK sender → switch → control-plane loop as
//! a discrete-event simulation with latency percentiles.
//!
//! Unlike the trace-replay drivers (which apply pending completions
//! lazily), this example schedules every packet arrival and every
//! control-plane completion as events on the netsim engine, and reports
//! p50/p99 translation latency — the style of measurement a real testbed
//! produces.
//!
//! ```text
//! cargo run --release --example event_driven_testbed
//! ```

use p4lru::core::array::P4Lru3Array;
use p4lru::netsim::stats::Percentiles;
use p4lru::netsim::{Engine, MICROSECOND};
use p4lru::traffic::caida::CaidaConfig;

/// The placeholder for in-flight translations.
const PENDING: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client packet with this virtual address arrives at the switch.
    Packet { va: u32 },
    /// The control plane answers a lookup for `va` with `ra`.
    Resolution { va: u32, ra: u32 },
}

fn main() {
    let trace = CaidaConfig::caida_n(8, 200_000, 11).generate();
    let delta_t = 50 * MICROSECOND;
    let base_forward = MICROSECOND;

    let mut engine = Engine::new();
    for pkt in &trace {
        let va = pkt.flow.fingerprint(5) | 1;
        engine.schedule(pkt.ts_ns, Event::Packet { va });
    }
    println!("scheduled {} packet arrivals", engine.pending());

    let mut cache = P4Lru3Array::<u32, u32>::with_seed(1 << 12, 9);
    let mut latency = Percentiles::new();
    let (mut fast, mut slow) = (0u64, 0u64);

    engine.run(|eng, now, ev| match ev {
        Event::Packet { va } => {
            // One pass through the P4LRU3 array: hit keeps the value,
            // miss installs the placeholder.
            let before = cache.get(&va).copied();
            cache.update(va, PENDING, |_cached, _new| { /* keep on hit */ });
            match before {
                Some(ra) if ra != PENDING => {
                    fast += 1;
                    latency.push(base_forward);
                }
                Some(_) => {
                    // Placeholder hit: pays the slow path, no re-lookup.
                    slow += 1;
                    latency.push(base_forward + delta_t);
                }
                None => {
                    slow += 1;
                    latency.push(base_forward + delta_t);
                    let ra = p4lru::core::hashing::hash_u64(0xA7, u64::from(va)) as u32 | 1;
                    eng.schedule(now + delta_t, Event::Resolution { va, ra });
                }
            }
        }
        Event::Resolution { va, ra } => {
            // The answer re-traverses the data plane as a full update.
            cache.update(va, ra, |cached, new| *cached = new);
        }
    });

    let total = fast + slow;
    println!(
        "processed {} packets ({} events total)",
        total,
        engine.processed()
    );
    println!(
        "fast path: {} ({:.2}%), slow path: {} ({:.2}%)",
        fast,
        fast as f64 / total as f64 * 100.0,
        slow,
        slow as f64 / total as f64 * 100.0
    );
    println!(
        "translation latency: p50 = {:.1} us, p99 = {:.1} us, mean = {:.1} us",
        latency.quantile(0.5).unwrap() as f64 / 1000.0,
        latency.quantile(0.99).unwrap() as f64 / 1000.0,
        latency.mean() / 1000.0
    );
}
