//! LruTable scenario: a NAT gateway with a data-plane fast path.
//!
//! The control plane holds the authoritative virtual→real address table;
//! the data plane caches hot translations in P4LRU3 units. Misses pay a
//! control-plane round trip (ΔT) and leave a placeholder until the answer
//! re-traverses the pipeline — watch the miss rate and the added latency
//! across replacement policies.
//!
//! ```text
//! cargo run --release --example nat_gateway
//! ```

use p4lru::core::policies::PolicyKind;
use p4lru::lrutable::{LruTable, LruTableConfig};
use p4lru::traffic::caida::CaidaConfig;

fn main() {
    let trace = CaidaConfig::caida_n(16, 300_000, 7).generate();
    println!(
        "replaying {} packets / {} flows through the NAT gateway\n",
        trace.len(),
        trace.flow_count()
    );
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>14}",
        "policy", "fast", "slow", "miss rate", "added lat(us)"
    );
    for policy in [
        PolicyKind::P4Lru3,
        PolicyKind::P4Lru2,
        PolicyKind::P4Lru1,
        PolicyKind::Timeout {
            timeout_ns: 10_000_000,
        },
        PolicyKind::Elastic,
        PolicyKind::Coco,
        PolicyKind::Ideal,
    ] {
        let report = LruTable::new(LruTableConfig {
            policy,
            memory_bytes: 24_000,
            slow_path_ns: 50_000,
            ..Default::default()
        })
        .run_trace(&trace);
        println!(
            "{:<10} {:>10} {:>10} {:>11.2}% {:>14.3}",
            report.policy,
            report.fast_path,
            report.slow_path,
            report.slow_rate * 100.0,
            report.mean_added_latency_ns / 1000.0
        );
    }
    println!("\nP4LRU3 should sit between the ideal LRU and every deployable baseline.");
}
