//! The series connection technique up close (§3.2).
//!
//! Demonstrates the paper's key protocol insight: when every key crosses
//! the data plane twice (query + reply), the query pass can be read-only
//! across all levels and the reply performs the single required write —
//! avoiding the duplicate entries that eager insertion creates.
//!
//! ```text
//! cargo run --release --example series_connection
//! ```

use p4lru::core::series::{P4Lru3Series, QueryHit};
use p4lru::traffic::ycsb::YcsbConfig;

fn main() {
    // Walk through the protocol on a tiny series first.
    let mut s = P4Lru3Series::<u64, u64>::new(2, 1, 42);
    println!("tiny series: 2 levels x 1 unit x 3 entries\n");
    for key in [1u64, 2, 3, 4] {
        s.apply_reply(QueryHit::Miss, key, key * 100);
    }
    for key in [1u64, 3, 4] {
        let (hit, val) = s.query(&key);
        println!(
            "query {key}: cached_flag = {} (value {:?})",
            hit.cached_flag(),
            val
        );
    }
    println!("key 1 was demoted to level 2's tail when 4 arrived — still cached.\n");

    // Now the quantitative comparison on a YCSB stream.
    let ops = 300_000usize;
    let workload = YcsbConfig {
        items: 50_000,
        ..Default::default()
    };
    for levels in [1usize, 2, 4, 8] {
        let units = 4096 / levels;
        let mut deferred = P4Lru3Series::<u64, u64>::new(levels, units, 7);
        let mut eager = P4Lru3Series::<u64, u64>::new(levels, units, 7);
        let (mut miss_d, mut miss_e) = (0u64, 0u64);
        for op in workload.stream().take(ops) {
            let key = op.key();
            // Deferred: read-only query, then the reply's single write.
            let (hit, _) = deferred.query(&key);
            if matches!(hit, QueryHit::Miss) {
                miss_d += 1;
            }
            deferred.apply_reply(hit, key, key);
            // Eager: every miss writes level 0 immediately.
            if !eager.contains(&key) {
                miss_e += 1;
            }
            eager.insert_eager(key, key);
        }
        println!(
            "levels={levels}: deferred miss {:.2}% (dupes {}), eager miss {:.2}% (dupes {})",
            miss_d as f64 / ops as f64 * 100.0,
            deferred.duplicate_count(),
            miss_e as f64 / ops as f64 * 100.0,
            eager.duplicate_count()
        );
    }
    println!("\ndeferred improves with depth; eager wastes capacity on duplicates (§3.2).");
}
