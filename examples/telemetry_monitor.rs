//! LruMon scenario: per-flow telemetry with a bounded upload budget.
//!
//! A TowerSketch filters mouse flows; elephants aggregate in a P4LRU3
//! cache; every cache miss costs one upload packet to the analyzer. A
//! better replacement policy ⇒ fewer uploads at identical accuracy.
//!
//! ```text
//! cargo run --release --example telemetry_monitor
//! ```

use p4lru::core::policies::PolicyKind;
use p4lru::lrumon::{FilterKind, LruMon, LruMonConfig};
use p4lru::traffic::caida::CaidaConfig;

fn main() {
    let trace = CaidaConfig::caida_n(16, 300_000, 3).generate();
    println!(
        "monitoring {} packets / {} flows / {} MB\n",
        trace.len(),
        trace.flow_count(),
        trace.total_bytes() / 1_000_000
    );

    println!(
        "{:<10} {:<8} {:>9} {:>12} {:>12} {:>12}",
        "policy", "filter", "uploads", "upload/s", "total err", "max err (B)"
    );
    for policy in [
        PolicyKind::P4Lru3,
        PolicyKind::P4Lru1,
        PolicyKind::Elastic,
        PolicyKind::Coco,
    ] {
        for filter in [FilterKind::Tower, FilterKind::Cm] {
            let report = LruMon::new(LruMonConfig {
                policy,
                filter,
                threshold_bytes: 1_500,
                reset_ns: 10_000_000,
                memory_bytes: 16_000,
                ..Default::default()
            })
            .run_trace(&trace);
            println!(
                "{:<10} {:<8} {:>9} {:>12.0} {:>11.3}% {:>12}",
                report.policy,
                report.filter,
                report.uploads,
                report.upload_pps,
                report.total_error_rate * 100.0,
                report.max_flow_error
            );
        }
    }
    println!("\naccuracy is filter-determined; the cache policy only moves the upload volume.");
}
