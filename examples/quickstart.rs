//! Quickstart: a P4LRU3 cache in five minutes.
//!
//! Builds a parallel-connected P4LRU3 array, replays a skewed flow
//! workload, and compares its hit rate against the plain hash table a
//! switch would otherwise use.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p4lru::core::array::P4Lru3Array;
use p4lru::core::metrics::MissStats;
use p4lru::core::policies::{merge_replace, Access, Cache, P4Lru1Cache, P4Lru3Cache};
use p4lru::traffic::caida::CaidaConfig;

fn main() {
    // 1. A single unit is a strict 3-entry LRU with key/value separation.
    let mut cache = P4Lru3Array::<u64, u64>::with_seed(1024, 42);
    cache.update(7, 100, |acc, v| *acc += v);
    cache.update(8, 10, |acc, v| *acc += v);
    cache.update(7, 100, |acc, v| *acc += v); // hit: accumulates + promotes
    println!(
        "flow 7 accumulated {} bytes",
        cache.get(&7).expect("cached")
    );
    println!(
        "array capacity: {} entries in {} units\n",
        cache.capacity(),
        cache.unit_count()
    );

    // 2. Same memory, two policies, one synthetic CAIDA-style trace.
    let trace = CaidaConfig::caida_n(8, 200_000, 1).generate();
    println!(
        "trace: {} packets, {} flows",
        trace.len(),
        trace.flow_count()
    );

    let mut p4lru3 = P4Lru3Cache::<u64, u64>::new(2048, 7); // 6144 entries
    let mut baseline = P4Lru1Cache::<u64, u64>::new(6144, 7); // 6144 entries
    let (mut s3, mut s1) = (MissStats::default(), MissStats::default());
    for pkt in &trace {
        let key = p4lru::core::hashing::hash_of(9, &pkt.flow);
        let out: Access<u64, u64> =
            p4lru3.access(key, u64::from(pkt.len), pkt.ts_ns, merge_replace);
        s3.record(&out);
        let out = baseline.access(key, u64::from(pkt.len), pkt.ts_ns, merge_replace);
        s1.record(&out);
    }
    println!("P4LRU3   hit rate: {:.2}%", s3.hit_rate() * 100.0);
    println!("baseline hit rate: {:.2}%", s1.hit_rate() * 100.0);
    println!(
        "miss reduction: {:.1}%",
        (1.0 - s3.miss_rate() / s1.miss_rate()) * 100.0
    );
}
