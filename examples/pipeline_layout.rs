//! Pipeline fidelity: run P4LRU3 as an actual stage program.
//!
//! Builds the ten-stage pipeline layout (hash → key swap stages → state
//! ALUs → slot map → value registers), checks it against the data-plane
//! constraints, pushes packets through the interpreter, and prints the
//! Table 2-style resource accounting for all three systems.
//!
//! ```text
//! cargo run --release --example pipeline_layout
//! ```

use p4lru::pipeline::layouts::{build_p4lru3_array, ArrayOutcome, ValueMode};
use p4lru::pipeline::program::ConstraintChecker;
use p4lru::pipeline::resources::TofinoModel;
use p4lru::pipeline::systems::table2_reports;

fn main() {
    // The P4LRU3 array as a pipeline program.
    let mut layout = build_p4lru3_array(1 << 10, 42, ValueMode::Accumulate);
    ConstraintChecker::default()
        .check(&layout.program)
        .expect("P4LRU3 fits the pipeline rules");
    println!(
        "P4LRU3 array program: {} stages, {} register arrays — constraints OK\n",
        layout.program.stage_count(),
        layout.program.registers().len()
    );

    // Push a few packets and watch the cache behave.
    for (key, len) in [(10u32, 100u32), (11, 200), (10, 50), (12, 10), (13, 30)] {
        let out = layout.process(key, len);
        match out {
            ArrayOutcome::Hit { pos, merged } => {
                println!("key {key}: HIT at position {pos}, accumulated {merged}B")
            }
            ArrayOutcome::Inserted => println!("key {key}: inserted into an empty slot"),
            ArrayOutcome::Evicted { key: ek, value } => {
                println!("key {key}: inserted, evicting key {ek} ({value}B)")
            }
        }
    }

    // Table 2: resource accounting of the full systems at paper scale.
    println!("\nTable 2 — hardware resources (% of occupied pipes):");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>6} {:>7} {:>6}",
        "system", "HashBits", "SRAM", "MapRAM", "TCAM", "SALU", "VLIW"
    );
    for (name, r) in table2_reports(&TofinoModel::default()) {
        println!(
            "{:<10} {:>8.2}% {:>7.2}% {:>7.2}% {:>5.1}% {:>6.2}% {:>5.2}%",
            name, r.hash_pct, r.sram_pct, r.map_ram_pct, r.tcam_pct, r.salu_pct, r.vliw_pct
        );
    }
    println!("\npaper Table 2 SRAM%: LruTable 11.25, LruIndex 14.09, LruMon 24.90 — same regime.");
}
