//! LruIndex scenario: accelerating database queries from the switch.
//!
//! The switch caches 48-bit record addresses in four series-connected
//! P4LRU3 arrays. Query packets probe read-only and stamp `cached_flag`;
//! the server skips its B+Tree walk on a hit; reply packets perform the
//! single deferred cache write.
//!
//! ```text
//! cargo run --release --example query_acceleration
//! ```

use p4lru::core::policies::PolicyKind;
use p4lru::kvstore::db::Database;
use p4lru::lruindex::system::{run_miss_rate, run_throughput, LruIndexConfig, ThroughputConfig};

fn main() {
    // The database substrate: a real B+Tree index over a slab store.
    let db = Database::populate(200_000);
    println!(
        "database: {} records, B+Tree height {}, service {}ns (indexed) vs {}ns (index walk)\n",
        db.len(),
        db.index_height(),
        db.service_ns_indexed(),
        db.service_ns_unindexed()
    );

    // Miss rate under the deferred query/reply protocol.
    println!("{:<10} {:>10} {:>12}", "policy", "levels", "miss rate");
    for (policy, levels) in [
        (PolicyKind::P4Lru3, 4),
        (PolicyKind::P4Lru3, 1),
        (PolicyKind::P4Lru2, 4),
        (PolicyKind::P4Lru1, 4),
    ] {
        let report = run_miss_rate(&LruIndexConfig {
            policy,
            levels,
            items: 100_000,
            ops: 300_000,
            memory_bytes: 64_000,
            ..Default::default()
        });
        println!(
            "{:<10} {:>10} {:>11.2}%",
            report.policy,
            levels,
            report.miss_rate * 100.0
        );
    }

    // Closed-loop throughput: 8 client threads against the server pool.
    println!(
        "\n{:<10} {:>10} {:>12} {:>10}",
        "threads", "KTPS", "naive KTPS", "speedup"
    );
    for threads in [1, 2, 4, 8] {
        let r = run_throughput(
            &ThroughputConfig {
                threads,
                items: 200_000,
                duration_ns: 50_000_000,
                ..Default::default()
            },
            PolicyKind::P4Lru3,
        );
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>9.2}x",
            threads, r.ktps, r.naive_ktps, r.speedup
        );
    }
}
