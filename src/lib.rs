//! # p4lru — facade crate
//!
//! Re-exports the whole P4LRU reproduction workspace under one roof so the
//! examples and integration tests can `use p4lru::…`. See the individual
//! crates for the real documentation:
//!
//! * [`core`] — the P4LRU algorithm, baselines and metrics
//! * [`pipeline`] — the Tofino-like pipeline model and resource accounting
//! * [`sketches`] — TowerSketch, Count-Min, CU, Elastic, Coco
//! * [`traffic`] — synthetic CAIDA_n traces and YCSB workloads
//! * [`kvstore`] — B+Tree-indexed database substrate
//! * [`durable`] — write-ahead log, snapshots, and crash recovery
//! * [`netsim`] — deterministic discrete-event simulator
//! * [`lrutable`], [`lruindex`], [`lrumon`] — the three in-network systems
//! * [`server`] — the runnable sharded cache service and load generator
//! * [`tier`] — the two-tier deployment: LruIndex switch tier over serverd

#![forbid(unsafe_code)]

pub use p4lru_core as core;
pub use p4lru_durable as durable;
pub use p4lru_kvstore as kvstore;
pub use p4lru_lruindex as lruindex;
pub use p4lru_lrumon as lrumon;
pub use p4lru_lrutable as lrutable;
pub use p4lru_netsim as netsim;
pub use p4lru_pipeline as pipeline;
pub use p4lru_server as server;
pub use p4lru_sketches as sketches;
pub use p4lru_tier as tier;
pub use p4lru_traffic as traffic;
