//! An atomic, mergeable log₂-bucketed histogram.
//!
//! Same bucketing as the load generator's client-side
//! `p4lru_server::LatencyHistogram` — bucket `i` holds samples with
//! `floor(log2(ns)) == i`, quantiles read back at the bucket's geometric
//! midpoint — but recordable from any thread: buckets are `AtomicU64`s
//! bumped with `Relaxed` ordering, so the hot path is one `fetch_add` per
//! sample plus one for the count and one for the running sum (the sum is
//! what Prometheus `_sum` series need to stay exact). Reads produce a
//! [`HistSnapshot`], a plain value type that merges exactly (bucket-wise
//! addition), which is how per-shard histograms roll up into totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets (covers the full `u64` nanosecond range).
pub const BUCKETS: usize = 64;

/// A lock-free histogram of nanosecond samples.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample in nanoseconds (three relaxed `fetch_add`s).
    pub fn record_ns(&self, ns: u64) {
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Individual buckets are exact; the set is not
    /// read under a lock (samples recorded concurrently may or may not be
    /// included), matching the consistency of the shard counter snapshots.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]: a plain value type that
/// supports exact merging and quantile estimation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`buckets[i]` holds samples with
    /// `floor(log2(ns)) == i`); always [`BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all recorded samples, nanoseconds.
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// An empty snapshot (all-zero buckets).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Rebuilds a snapshot from externally carried buckets (e.g. the STATS
    /// JSON payload). Short vectors are zero-padded; long ones truncated.
    pub fn from_buckets(buckets: &[u64]) -> Self {
        let mut b = vec![0u64; BUCKETS];
        for (slot, &v) in b.iter_mut().zip(buckets.iter()) {
            *slot = v;
        }
        let count = b.iter().sum();
        Self {
            buckets: b,
            count,
            sum_ns: 0,
        }
    }

    /// Adds another snapshot's samples into this one (exact: bucket-wise).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The approximate `q`-quantile in nanoseconds (`q` in `[0, 1]`), read
    /// at the holding bucket's geometric midpoint, or `None` when empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u64 << i;
                return Some((lo as f64 * std::f64::consts::SQRT_2) as u64);
            }
        }
        // Bucket counts can exceed `count` only if a concurrent recorder
        // raced the snapshot loads; the last non-empty bucket is still the
        // right answer for any rank at or past the total.
        let last = self.buckets.iter().rposition(|&n| n > 0)?;
        Some(((1u64 << last) as f64 * std::f64::consts::SQRT_2) as u64)
    }

    /// `quantile_ns` converted to microseconds (0.0 when empty) — the shape
    /// STATS reports.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile_ns(q).unwrap_or(0) as f64 / 1e3
    }

    /// Cumulative count of samples at or below `2^exp` nanoseconds — the
    /// value of a Prometheus `le="2^exp ns"` bucket. Buckets `0..exp` hold
    /// exactly the samples `< 2^exp`, and log₂ bucketing cannot split finer.
    pub fn cumulative_le_pow2(&self, exp: u32) -> u64 {
        self.buckets.iter().take((exp as usize).min(BUCKETS)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_and_reads_quantiles_like_the_locked_variant() {
        let h = AtomicHistogram::new();
        for _ in 0..99 {
            h.record_ns(1_000); // bucket 9: [512, 1024)
        }
        h.record_ns(1_000_000); // bucket 19
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_ns, 99 * 1_000 + 1_000_000);
        let p50 = s.quantile_ns(0.50).unwrap();
        assert!((512..2048).contains(&p50), "p50 = {p50}");
        let p100 = s.quantile_ns(1.0).unwrap();
        assert!((524_288..2_097_152).contains(&p100), "p100 = {p100}");
        assert_eq!(s.quantile_us(2.0), s.quantile_ns(1.0).unwrap() as f64 / 1e3);
    }

    #[test]
    fn zero_and_max_samples_clamp_into_range() {
        let h = AtomicHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[63], 1);
        assert!(s.quantile_ns(0.5).is_some());
    }

    #[test]
    fn snapshots_merge_exactly() {
        let a = AtomicHistogram::new();
        a.record_ns(100);
        a.record_ns(200);
        let b = AtomicHistogram::new();
        b.record_ns(1 << 30);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_ns, 300 + (1 << 30));
        assert_eq!(m.buckets.iter().sum::<u64>(), 3);
        assert!(m.quantile_ns(1.0).unwrap() > 1 << 29);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = AtomicHistogram::new();
        for ns in [1u64, 700, 1_500, 90_000, 2_000_000, 2_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for exp in 0..=64u32 {
            let c = s.cumulative_le_pow2(exp);
            assert!(c >= prev, "cumulative le buckets must be non-decreasing");
            prev = c;
        }
        assert_eq!(s.cumulative_le_pow2(64), s.count, "+Inf equals count");
    }

    #[test]
    fn from_buckets_pads_and_counts() {
        let s = HistSnapshot::from_buckets(&[1, 2, 3]);
        assert_eq!(s.buckets.len(), BUCKETS);
        assert_eq!(s.count, 6);
        assert_eq!(s.cumulative_le_pow2(2), 3);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.quantile_ns(0.5), None);
        assert_eq!(s.quantile_us(0.5), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns((t + 1) * 1_000 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }
}
