//! Request-lifecycle span tracing.
//!
//! A [`RequestTrace`] is a fixed-size array of nanosecond timestamps — one
//! per [`Stage`] — relative to the [`Tracer`]'s epoch (the server's start
//! instant). It rides along with the request: the connection handler stamps
//! the front-of-pipe stages, the shard thread stamps the middle, and the
//! handler stamps the tail when the response leaves on the wire. Stamping
//! is one `Instant::now()` plus an array store; for an untraced request the
//! stamp is a single predictable branch.
//!
//! A fully traced request costs several clock reads plus a few dozen atomic
//! RMWs (stage histograms, ring slot) — real money at millions of ops/s, so
//! the tracer *samples*: [`ObsConfig::sample_every`] traces one request in
//! N (default 64) and the rest carry a disabled trace whose every stamp is
//! that one branch. Sampling is what keeps the overhead budget (<3% ops/s,
//! measured by `server_throughput --trace`) honest; `sample_every = 1`
//! traces everything (tests and slow-op hunts), at a measured cost in the
//! tens of percent at saturation.
//!
//! Completed traces are [`Tracer::finish`]ed: unstamped stages inherit the
//! previous stage's timestamp (a GET has no WAL append; a volatile server
//! has no fsync), per-stage durations feed the tracer's atomic stage
//! histograms, and the trace lands in a lock-free [`TraceRing`] — plus a
//! second, smaller ring when the end-to-end time crosses the slow-op
//! threshold. Rings are drainable at any time without stopping writers.
//!
//! [`TraceRing`] is a seqlock-style ring: producers claim a slot with one
//! `fetch_add` and bracket their (plain atomic) stores with an odd/even
//! version counter; readers retry or skip slots whose version moved under
//! them. Two producers lapping onto the same slot can tear each other's
//! write — acceptable for a rolling observational sample (the ring is sized
//! orders of magnitude past the writer count), never for accounting, which
//! is why counters and histograms are recorded separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::{AtomicHistogram, HistSnapshot};
use crate::span::SpanContext;

/// The eight lifecycle stages, in pipeline order. `WalAppend` precedes
/// `Apply` because the server's durability discipline appends to the WAL
/// *before* mutating memory; `Fsync` is the commit gate — when the batch's
/// acknowledgements were released — whether or not the sync policy issued a
/// physical fsync for this batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Request frame parsed on the connection thread.
    Decode = 0,
    /// Shard routing decided and the request dispatched.
    Route = 1,
    /// Dequeued by the shard thread (duration = shard-queue wait).
    Queue = 2,
    /// WAL record appended (buffered; GETs and volatile servers skip this).
    WalAppend = 3,
    /// In-memory apply complete (cache + backing store).
    Apply = 4,
    /// Commit gate passed: the batch's sync policy ran and the reply was
    /// released toward the connection.
    Fsync = 5,
    /// Response left the reorder buffer and was encoded onto the
    /// connection's write buffer (duration = cross-shard reorder wait).
    Reorder = 6,
    /// Response flushed to the socket.
    Flush = 7,
}

/// Number of lifecycle stages.
pub const NUM_STAGES: usize = 8;

/// Stage names, indexed by `Stage as usize` (metric label values).
pub const STAGE_NAMES: [&str; NUM_STAGES] = [
    "decode",
    "route",
    "queue",
    "wal_append",
    "apply",
    "fsync",
    "reorder",
    "flush",
];

/// All stages in order (for iteration).
pub const STAGES: [Stage; NUM_STAGES] = [
    Stage::Decode,
    Stage::Route,
    Stage::Queue,
    Stage::WalAppend,
    Stage::Apply,
    Stage::Fsync,
    Stage::Reorder,
    Stage::Flush,
];

/// The operation a trace belongs to (indexes the per-op histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// A GET.
    Get = 0,
    /// A SET.
    Set = 1,
    /// A DEL.
    Del = 2,
}

/// Number of op kinds.
pub const NUM_OPS: usize = 3;

/// Op names, indexed by `OpKind as usize` (metric label values).
pub const OP_NAMES: [&str; NUM_OPS] = ["get", "set", "del"];

impl OpKind {
    fn from_u8(v: u8) -> OpKind {
        match v {
            1 => OpKind::Set,
            2 => OpKind::Del,
            _ => OpKind::Get,
        }
    }
}

/// One request's lifecycle timestamps (nanoseconds since the tracer's
/// epoch; 0 = not stamped). Plain data — it is moved through channels with
/// the request it describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// The traced operation.
    pub op: OpKind,
    /// The shard that served it.
    pub shard: u32,
    /// The propagated in-band context, when the request's frame carried
    /// one and the trace was sampled. Joins this trace to the upstream
    /// hops' breakdown lines by trace id.
    pub span: Option<SpanContext>,
    /// Microseconds the request had already been in flight (origin →
    /// decode) when the span attached; 0 without a span.
    pub upstream_us: u32,
    enabled: bool,
    stamps: [u64; NUM_STAGES],
}

impl RequestTrace {
    /// A trace that records nothing (inline responses, tracing off).
    pub fn disabled() -> Self {
        Self {
            op: OpKind::Get,
            shard: 0,
            span: None,
            upstream_us: 0,
            enabled: false,
            stamps: [0; NUM_STAGES],
        }
    }

    /// Whether stamps are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The timestamp of `stage`, nanoseconds since the tracer epoch
    /// (0 = never stamped; [`Tracer::finish`] fills such holes with the
    /// previous stage's stamp).
    pub fn stamp_ns(&self, stage: Stage) -> u64 {
        self.stamps[stage as usize]
    }

    /// End-to-end time (flush − decode), after normalization.
    pub fn total_ns(&self) -> u64 {
        self.stamps[Stage::Flush as usize].saturating_sub(self.stamps[Stage::Decode as usize])
    }

    /// Fills unstamped stages with the previous stage's timestamp, so every
    /// finished trace is non-decreasing across all eight stages and a
    /// skipped stage reads as a zero-duration span.
    fn normalize(&mut self) {
        for i in 1..NUM_STAGES {
            if self.stamps[i] == 0 {
                self.stamps[i] = self.stamps[i - 1];
            }
        }
    }

    /// Renders a one-line per-stage breakdown (the slow-op log format):
    /// the op, shard, end-to-end total, and each stage's incremental cost.
    pub fn breakdown(&self) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "{} shard={} total={:.1}us",
            OP_NAMES[self.op as usize].to_uppercase(),
            self.shard,
            self.total_ns() as f64 / 1e3
        );
        if let Some(span) = &self.span {
            // Same `trace=` key as every forwarding hop's HopTrace line:
            // grep the id to join the router/tier view to these stages.
            let _ = write!(
                line,
                " trace={:016x} hop={} upstream+{:.1}us",
                span.trace_id,
                span.hop,
                f64::from(self.upstream_us)
            );
        }
        let mut prev = self.stamps[0];
        for (i, name) in STAGE_NAMES.iter().enumerate().skip(1) {
            let at = self.stamps[i];
            let _ = write!(
                line,
                " {name}+{:.1}us",
                at.saturating_sub(prev) as f64 / 1e3
            );
            prev = at;
        }
        line
    }
}

/// Tracer configuration (server `ObsConfig`).
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Whether lifecycle stamps are recorded at all. Off = every stamp is a
    /// predictable branch and no clock is read.
    pub enabled: bool,
    /// Trace one request in this many (1 = every request). Sampled-out
    /// requests cost one atomic increment and carry a disabled trace.
    pub sample_every: u64,
    /// Slots in the rolling all-requests ring.
    pub ring_capacity: usize,
    /// Slots in the slow-op ring.
    pub slow_ring_capacity: usize,
    /// End-to-end threshold (microseconds) past which a request counts as a
    /// slow op: it is pushed to the slow ring and (in `serverd`) logged with
    /// its per-stage breakdown.
    pub slow_op_us: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_every: 64,
            ring_capacity: 4096,
            slow_ring_capacity: 256,
            slow_op_us: 10_000,
        }
    }
}

/// What [`Tracer::finish`] reports back for an enabled trace.
#[derive(Clone, Copy, Debug)]
pub struct FinishedTrace {
    /// The normalized trace (every stage stamped, non-decreasing).
    pub trace: RequestTrace,
    /// End-to-end nanoseconds (flush − decode).
    pub total_ns: u64,
    /// Whether the total crossed the slow-op threshold.
    pub slow: bool,
}

/// The tracing engine: epoch, stage histograms, rings, and counters.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    enabled: bool,
    sample_every: u64,
    /// Requests offered to [`Tracer::start`] (the sampling clock).
    started: AtomicU64,
    slow_threshold_ns: u64,
    ring: TraceRing,
    slow_ring: TraceRing,
    stage_hist: [AtomicHistogram; NUM_STAGES],
    finished: AtomicU64,
    slow_ops: AtomicU64,
}

impl Tracer {
    /// A tracer with its epoch at "now".
    pub fn new(config: &ObsConfig) -> Self {
        Self {
            epoch: Instant::now(),
            enabled: config.enabled,
            sample_every: config.sample_every.max(1),
            started: AtomicU64::new(0),
            slow_threshold_ns: config.slow_op_us.saturating_mul(1_000),
            ring: TraceRing::new(config.ring_capacity.max(1)),
            slow_ring: TraceRing::new(config.slow_ring_capacity.max(1)),
            stage_hist: std::array::from_fn(|_| AtomicHistogram::new()),
            finished: AtomicU64::new(0),
            slow_ops: AtomicU64::new(0),
        }
    }

    /// Whether stamps are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the tracer epoch, clamped to at least 1 (0 is the
    /// "unstamped" sentinel).
    pub fn now_ns(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    /// The configured sampling rate (1 = every request).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Begins a trace for one request (no stages stamped yet). Whether the
    /// trace is live is the sampling decision: with `sample_every = N`,
    /// every Nth request offered here gets a live trace and the rest get
    /// disabled ones (every stamp a predictable branch). With tracing off
    /// this is branch-only — not even the sampling counter is touched.
    pub fn start(&self, op: OpKind, shard: u32) -> RequestTrace {
        let enabled = self.enabled
            && (self.sample_every == 1
                || self
                    .started
                    .fetch_add(1, Ordering::Relaxed)
                    .is_multiple_of(self.sample_every));
        RequestTrace {
            op,
            shard,
            span: None,
            upstream_us: 0,
            enabled,
            stamps: [0; NUM_STAGES],
        }
    }

    /// Attaches a propagated in-band span to a live trace, recording how
    /// long the request had already been in flight (origin → now). A
    /// disabled (sampled-out) trace ignores the span — propagation rides
    /// the same sampling budget as everything else.
    pub fn attach_span(&self, trace: &mut RequestTrace, span: SpanContext) {
        if trace.enabled {
            trace.span = Some(span);
            trace.upstream_us = span.age_us();
        }
    }

    /// Stamps `stage` at the current instant.
    #[inline]
    pub fn stamp(&self, trace: &mut RequestTrace, stage: Stage) {
        if trace.enabled {
            trace.stamps[stage as usize] = self.now_ns();
        }
    }

    /// Stamps `stage` at an externally captured instant (the durable
    /// crate's append/fsync span hooks). Instants before the epoch clamp
    /// to 1.
    pub fn stamp_at(&self, trace: &mut RequestTrace, stage: Stage, at: Instant) {
        if trace.enabled {
            trace.stamps[stage as usize] =
                (at.saturating_duration_since(self.epoch).as_nanos() as u64).max(1);
        }
    }

    /// Completes a trace: normalizes it, feeds the stage histograms and the
    /// ring(s), and reports the end-to-end total. Returns `None` for
    /// disabled traces (tracing off, inline responses) — by design a single
    /// branch, nothing else.
    pub fn finish(&self, mut trace: RequestTrace) -> Option<FinishedTrace> {
        if !trace.enabled {
            return None;
        }
        trace.normalize();
        let mut prev = trace.stamps[0];
        for i in 1..NUM_STAGES {
            let at = trace.stamps[i];
            self.stage_hist[i].record_ns(at.saturating_sub(prev));
            prev = at;
        }
        let total_ns = trace.total_ns();
        self.finished.fetch_add(1, Ordering::Relaxed);
        self.ring.push(&trace);
        let slow = total_ns >= self.slow_threshold_ns;
        if slow {
            self.slow_ops.fetch_add(1, Ordering::Relaxed);
            self.slow_ring.push(&trace);
        }
        Some(FinishedTrace {
            trace,
            total_ns,
            slow,
        })
    }

    /// Traces finished since startup.
    pub fn finished_count(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Slow ops seen since startup.
    pub fn slow_op_count(&self) -> u64 {
        self.slow_ops.load(Ordering::Relaxed)
    }

    /// The slow-op threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_ns / 1_000
    }

    /// Snapshot of the duration histogram of `stage` (time since the
    /// previous stage).
    pub fn stage_snapshot(&self, stage: Stage) -> HistSnapshot {
        self.stage_hist[stage as usize].snapshot()
    }

    /// Drains a consistent-as-possible copy of the rolling trace ring.
    pub fn sample_traces(&self) -> Vec<RequestTrace> {
        self.ring.drain()
    }

    /// Drains the slow-op ring.
    pub fn slow_traces(&self) -> Vec<RequestTrace> {
        self.slow_ring.drain()
    }
}

/// Words per ring slot: op/shard header plus the eight stamps.
const SLOT_WORDS: usize = 1 + NUM_STAGES;

struct Slot {
    /// Seqlock version: odd while a writer is mid-store.
    ver: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// A lock-free multi-producer ring of completed traces. Pushing is one
/// `fetch_add` to claim a slot plus plain atomic stores bracketed by the
/// slot's version counter; draining skips slots that are mid-write or
/// changed underneath the read. See the module docs for the (accepted)
/// torn-write caveat when producers lap the ring.
pub struct TraceRing {
    slots: Vec<Slot>,
    head: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

impl TraceRing {
    /// A ring with `capacity` slots (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    ver: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (≥ what a drain can return).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends a trace, overwriting the oldest once the ring is full.
    pub fn push(&self, trace: &RequestTrace) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.ver.fetch_add(1, Ordering::Acquire); // now odd: writing
        slot.words[0].store(
            u64::from(trace.op as u8) | (u64::from(trace.shard) << 8),
            Ordering::Relaxed,
        );
        for (w, &stamp) in slot.words[1..].iter().zip(trace.stamps.iter()) {
            w.store(stamp, Ordering::Relaxed);
        }
        slot.ver.fetch_add(1, Ordering::Release); // even again: complete
    }

    /// Copies out every readable trace, oldest-to-newest slot order not
    /// guaranteed (it is a ring). Mid-write or torn slots are skipped.
    pub fn drain(&self) -> Vec<RequestTrace> {
        let filled = self.pushed().min(self.slots.len() as u64) as usize;
        let mut out = Vec::with_capacity(filled);
        for slot in &self.slots[..filled] {
            let v1 = slot.ver.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or a writer is mid-store
            }
            let header = slot.words[0].load(Ordering::Relaxed);
            let mut stamps = [0u64; NUM_STAGES];
            for (stamp, w) in stamps.iter_mut().zip(slot.words[1..].iter()) {
                *stamp = w.load(Ordering::Relaxed);
            }
            if slot.ver.load(Ordering::Acquire) != v1 {
                continue; // a writer raced the read
            }
            // The ring persists stamps only; a drained trace's span is
            // gone (slow-op *logging* happens at finish time, span
            // intact — the ring is the rolling statistical sample).
            out.push(RequestTrace {
                op: OpKind::from_u8((header & 0xFF) as u8),
                shard: (header >> 8) as u32,
                span: None,
                upstream_us: 0,
                enabled: true,
                stamps,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tracer(slow_us: u64) -> Tracer {
        Tracer::new(&ObsConfig {
            slow_op_us: slow_us,
            sample_every: 1,
            ..ObsConfig::default()
        })
    }

    #[test]
    fn sampling_traces_every_nth_request() {
        let t = Tracer::new(&ObsConfig {
            sample_every: 4,
            ..ObsConfig::default()
        });
        let live: Vec<bool> = (0..12)
            .map(|_| t.start(OpKind::Get, 0).is_enabled())
            .collect();
        assert_eq!(live.iter().filter(|&&e| e).count(), 3, "{live:?}");
        assert!(live[0], "the first request is always sampled");
        assert!(live[4] && live[8], "then every Nth after it");
        // Rate 1 short-circuits the counter entirely.
        let all = tracer(10);
        assert!((0..5).all(|_| all.start(OpKind::Get, 0).is_enabled()));
    }

    #[test]
    fn stamps_are_monotone_and_normalization_fills_holes() {
        let t = tracer(u64::MAX / 2_000);
        let mut trace = t.start(OpKind::Get, 3);
        t.stamp(&mut trace, Stage::Decode);
        t.stamp(&mut trace, Stage::Route);
        t.stamp(&mut trace, Stage::Queue);
        // No WalAppend (a GET), no Fsync (volatile).
        t.stamp(&mut trace, Stage::Apply);
        t.stamp(&mut trace, Stage::Reorder);
        t.stamp(&mut trace, Stage::Flush);
        let done = t.finish(trace).expect("enabled trace finishes");
        let mut prev = 0;
        for stage in STAGES {
            let at = done.trace.stamp_ns(stage);
            assert!(at >= prev, "{stage:?} went backwards: {at} < {prev}");
            assert!(at > 0, "{stage:?} left unstamped after normalize");
            prev = at;
        }
        assert_eq!(
            done.trace.stamp_ns(Stage::WalAppend),
            done.trace.stamp_ns(Stage::Queue),
            "a skipped stage inherits the previous stamp"
        );
        assert!(!done.slow);
        assert_eq!(t.finished_count(), 1);
        assert_eq!(t.slow_op_count(), 0);
    }

    #[test]
    fn slow_ops_cross_the_threshold_into_the_slow_ring() {
        let t = tracer(0); // everything is slow
        let mut trace = t.start(OpKind::Set, 1);
        t.stamp(&mut trace, Stage::Decode);
        t.stamp(&mut trace, Stage::Flush);
        let done = t.finish(trace).unwrap();
        assert!(done.slow);
        assert_eq!(t.slow_op_count(), 1);
        let slow = t.slow_traces();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].op, OpKind::Set);
        assert_eq!(slow[0].shard, 1);
        let line = slow[0].breakdown();
        assert!(line.starts_with("SET shard=1 total="), "{line}");
        assert!(line.contains(" fsync+"), "{line}");
    }

    #[test]
    fn disabled_tracer_stamps_nothing_and_finishes_to_none() {
        let t = Tracer::new(&ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        });
        let mut trace = t.start(OpKind::Del, 0);
        t.stamp(&mut trace, Stage::Decode);
        assert_eq!(trace.stamp_ns(Stage::Decode), 0);
        assert!(t.finish(trace).is_none());
        assert!(t.finish(RequestTrace::disabled()).is_none());
        assert_eq!(t.finished_count(), 0);
    }

    #[test]
    fn stage_histograms_record_interstage_durations() {
        let t = tracer(u64::MAX / 2_000);
        let mut trace = t.start(OpKind::Get, 0);
        t.stamp(&mut trace, Stage::Decode);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.stamp(&mut trace, Stage::Route);
        t.stamp(&mut trace, Stage::Flush);
        t.finish(trace).unwrap();
        let route = t.stage_snapshot(Stage::Route);
        assert_eq!(route.count, 1);
        assert!(
            route.quantile_ns(0.5).unwrap() >= 1_000_000,
            "the 2ms decode→route gap must land in the route stage"
        );
    }

    #[test]
    fn stamp_at_accepts_external_instants() {
        let t = tracer(u64::MAX / 2_000);
        let at = Instant::now();
        let mut trace = t.start(OpKind::Set, 0);
        t.stamp(&mut trace, Stage::Decode);
        t.stamp_at(&mut trace, Stage::WalAppend, at);
        assert!(trace.stamp_ns(Stage::WalAppend) >= 1);
    }

    #[test]
    fn attached_spans_ride_the_trace_into_the_breakdown() {
        use crate::span::SpanContext;
        let t = tracer(u64::MAX / 2_000);
        let mut trace = t.start(OpKind::Get, 2);
        let span = SpanContext {
            trace_id: 0x0123_4567_89AB_CDEF,
            origin_us: crate::span::unix_us_now().wrapping_sub(250),
            hop: 1,
        };
        t.attach_span(&mut trace, span);
        assert_eq!(trace.span, Some(span));
        assert!(trace.upstream_us >= 250, "upstream {}us", trace.upstream_us);
        t.stamp(&mut trace, Stage::Decode);
        t.stamp(&mut trace, Stage::Flush);
        let done = t.finish(trace).unwrap();
        let line = done.trace.breakdown();
        assert!(
            line.contains("trace=0123456789abcdef hop=1 upstream+"),
            "{line}"
        );
        // Disabled traces refuse the span (sampled-out requests stay free).
        let mut off = RequestTrace::disabled();
        t.attach_span(&mut off, span);
        assert_eq!(off.span, None);
        assert!(!off.breakdown().contains("trace="));
    }

    #[test]
    fn ring_keeps_the_newest_capacity_traces() {
        let ring = TraceRing::new(8);
        let t = tracer(u64::MAX / 2_000);
        for shard in 0..20u32 {
            let mut trace = t.start(OpKind::Get, shard);
            t.stamp(&mut trace, Stage::Decode);
            ring.push(&trace);
        }
        assert_eq!(ring.pushed(), 20);
        let drained = ring.drain();
        assert_eq!(drained.len(), 8);
        for trace in &drained {
            assert!(trace.shard >= 12, "old entries were overwritten");
        }
    }

    #[test]
    fn ring_survives_concurrent_pushers_and_drainers() {
        let ring = Arc::new(TraceRing::new(64));
        let t = Arc::new(tracer(u64::MAX / 2_000));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut trace = t.start(OpKind::Get, w);
                        t.stamp(&mut trace, Stage::Decode);
                        t.stamp(&mut trace, Stage::Flush);
                        ring.push(&trace);
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = 0;
                for _ in 0..50 {
                    seen += ring.drain().len();
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ring.pushed(), 20_000);
        let final_drain = ring.drain();
        assert!(!final_drain.is_empty());
        for trace in final_drain {
            assert!(trace.shard < 4, "no torn shard ids in a quiescent drain");
            assert!(trace.stamp_ns(Stage::Flush) >= trace.stamp_ns(Stage::Decode));
        }
    }
}
