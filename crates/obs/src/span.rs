//! In-band trace propagation: a [`SpanContext`] rides *inside* the wire
//! frame across hops (router → tier → server), the way in-band network
//! telemetry rides the data packets it describes — no sidecar, no second
//! connection, telemetry shares the request path.
//!
//! The context is deliberately tiny and fixed-size ([`SPAN_BYTES`] = 16):
//! a 64-bit trace id (grep it across every hop's log), a truncated
//! origin timestamp (unix microseconds mod 2³², wrap-safe deltas good for
//! ~71 minutes — orders of magnitude past any request lifetime), a hop
//! counter, and three reserved zero bytes. Frames carrying one set a flag
//! bit in the frame magic; plain frames are byte-identical to the
//! pre-trace protocol, so old clients and new servers interoperate in
//! both directions.
//!
//! Each forwarding hop (router, tier) builds a [`HopTrace`] around the
//! context — named duration segments like `queue` and `upstream` — and
//! prints its breakdown when the hop total crosses its slow-op threshold.
//! The server stamps its eight [`crate::trace::Stage`]s into the *same*
//! trace (the context attaches to the sampled `RequestTrace`), so one
//! trace id joins the router's queue+RTT view to the server's
//! decode→flush view.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Encoded size of a [`SpanContext`] on the wire.
pub const SPAN_BYTES: usize = 16;

/// The in-band trace context carried inside flagged wire frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// Random-ish id shared by every hop of one request.
    pub trace_id: u64,
    /// Unix microseconds (mod 2³²) when the first hop originated the
    /// trace. Deltas use wrapping arithmetic, so the truncation only
    /// matters past ~71 minutes of in-flight time.
    pub origin_us: u32,
    /// Hops traversed so far (the originator is hop 0; each forwarder
    /// increments).
    pub hop: u8,
}

/// Unix time truncated to microseconds mod 2³² (the `origin_us` clock).
pub fn unix_us_now() -> u32 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u32)
        .unwrap_or(0)
}

impl SpanContext {
    /// Originates a trace at hop 0, stamped "now".
    pub fn originate(trace_id: u64) -> Self {
        Self {
            trace_id,
            origin_us: unix_us_now(),
            hop: 0,
        }
    }

    /// The context to forward upstream: same trace, one more hop.
    pub fn next_hop(self) -> Self {
        Self {
            hop: self.hop.saturating_add(1),
            ..self
        }
    }

    /// Microseconds since the trace was originated (wrap-safe).
    pub fn age_us(&self) -> u32 {
        unix_us_now().wrapping_sub(self.origin_us)
    }

    /// Encodes to the 16-byte wire form (LE fields, 3 reserved zero
    /// bytes).
    pub fn encode(&self) -> [u8; SPAN_BYTES] {
        let mut buf = [0u8; SPAN_BYTES];
        buf[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        buf[8..12].copy_from_slice(&self.origin_us.to_le_bytes());
        buf[12] = self.hop;
        buf
    }

    /// Decodes the 16-byte wire form; `None` if `buf` is not exactly
    /// [`SPAN_BYTES`] long.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() != SPAN_BYTES {
            return None;
        }
        Some(Self {
            trace_id: u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            origin_us: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
            hop: buf[12],
        })
    }
}

/// Allocates process-unique trace ids: a per-process random base (from
/// the OS via `RandomState`-free address entropy + time) mixed with a
/// counter, so two routers started in the same microsecond still
/// diverge.
#[derive(Debug)]
pub struct TraceIdGen {
    base: u64,
    next: AtomicU64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for TraceIdGen {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceIdGen {
    /// A generator seeded from wall-clock nanoseconds and a stack
    /// address (std-only entropy; ids need uniqueness, not secrecy).
    pub fn new() -> Self {
        let t = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let marker = 0u8;
        let addr = std::ptr::addr_of!(marker) as u64;
        Self {
            base: mix(t ^ mix(addr)),
            next: AtomicU64::new(0),
        }
    }

    /// The next trace id (never 0 — 0 reads as "no trace" in logs).
    pub fn next_id(&self) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        mix(self.base ^ n) | 1
    }
}

/// The role a hop plays in the request path (label in breakdowns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// The cluster router (`p4lru_routerd`).
    Router,
    /// The switch-tier proxy (`p4lru_tierd`).
    Tier,
    /// The cache server itself (`p4lru_serverd`).
    Server,
}

impl HopKind {
    /// Uppercase label (breakdown line prefix).
    pub fn label(&self) -> &'static str {
        match self {
            HopKind::Router => "ROUTER",
            HopKind::Tier => "TIER",
            HopKind::Server => "SERVER",
        }
    }
}

/// Per-hop segment budget; hops have few stages (queue, upstream, …).
const MAX_SEGMENTS: usize = 4;

/// One hop's view of a trace: the context plus named duration segments,
/// renderable as a slow-op breakdown line that shares its trace id with
/// every other hop's line.
#[derive(Clone, Debug)]
pub struct HopTrace {
    /// The propagated context this hop saw (or originated).
    pub ctx: SpanContext,
    /// What this hop is.
    pub kind: HopKind,
    segments: [(&'static str, u64); MAX_SEGMENTS],
    len: usize,
}

impl HopTrace {
    /// A hop trace with no segments yet.
    pub fn new(ctx: SpanContext, kind: HopKind) -> Self {
        Self {
            ctx,
            kind,
            segments: [("", 0); MAX_SEGMENTS],
            len: 0,
        }
    }

    /// Appends a named segment (nanoseconds). Segments past the fixed
    /// budget are dropped — hops have a known, small stage count.
    pub fn segment(&mut self, name: &'static str, ns: u64) {
        if self.len < MAX_SEGMENTS {
            self.segments[self.len] = (name, ns);
            self.len += 1;
        }
    }

    /// Sum of all segments, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.segments[..self.len].iter().map(|(_, ns)| ns).sum()
    }

    /// One-line breakdown: kind, trace id, hop, total, then each
    /// segment's incremental cost — same shape as the server's
    /// per-stage slow-op line, so the two grep and read together.
    pub fn breakdown(&self) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "{} trace={:016x} hop={} total={:.1}us",
            self.kind.label(),
            self.ctx.trace_id,
            self.ctx.hop,
            self.total_ns() as f64 / 1e3
        );
        for (name, ns) in &self.segments[..self.len] {
            let _ = write!(line, " {name}+{:.1}us", *ns as f64 / 1e3);
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_roundtrips_through_the_wire_form() {
        let ctx = SpanContext {
            trace_id: 0xDEAD_BEEF_0012_3456,
            origin_us: 0xFFFF_FFF0,
            hop: 3,
        };
        let bytes = ctx.encode();
        assert_eq!(bytes.len(), SPAN_BYTES);
        assert_eq!(&bytes[13..], &[0, 0, 0], "reserved bytes stay zero");
        assert_eq!(SpanContext::decode(&bytes), Some(ctx));
        assert_eq!(SpanContext::decode(&bytes[..15]), None);
        assert_eq!(SpanContext::decode(&[0; 17]), None);
    }

    #[test]
    fn next_hop_increments_and_saturates() {
        let ctx = SpanContext::originate(7);
        assert_eq!(ctx.hop, 0);
        assert_eq!(ctx.next_hop().hop, 1);
        assert_eq!(ctx.next_hop().trace_id, 7, "trace id is preserved");
        let deep = SpanContext {
            hop: u8::MAX,
            ..ctx
        };
        assert_eq!(deep.next_hop().hop, u8::MAX);
    }

    #[test]
    fn age_survives_the_u32_wrap() {
        let now = unix_us_now();
        let ctx = SpanContext {
            trace_id: 1,
            origin_us: now.wrapping_sub(500),
            hop: 0,
        };
        let age = ctx.age_us();
        assert!((500..5_000_000).contains(&age), "age was {age}");
        // Origin just before the wrap, "now" just after: delta stays small.
        let pre_wrap = SpanContext {
            trace_id: 1,
            origin_us: u32::MAX - 10,
            hop: 0,
        };
        let delta = 25u32.wrapping_sub(pre_wrap.origin_us);
        assert_eq!(delta, 36);
    }

    #[test]
    fn trace_ids_are_unique_and_never_zero() {
        let generator = TraceIdGen::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = generator.next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id:#x}");
        }
    }

    #[test]
    fn hop_breakdown_prints_kind_trace_and_segments() {
        let ctx = SpanContext {
            trace_id: 0xABCD,
            origin_us: 0,
            hop: 0,
        };
        let mut hop = HopTrace::new(ctx, HopKind::Router);
        hop.segment("queue", 1_500);
        hop.segment("upstream", 2_000_000);
        assert_eq!(hop.total_ns(), 2_001_500);
        let line = hop.breakdown();
        assert!(
            line.starts_with("ROUTER trace=000000000000abcd hop=0"),
            "{line}"
        );
        assert!(line.contains("queue+1.5us"), "{line}");
        assert!(line.contains("upstream+2000.0us"), "{line}");
    }

    #[test]
    fn segments_past_the_budget_are_dropped_not_panicked() {
        let mut hop = HopTrace::new(SpanContext::originate(1), HopKind::Tier);
        for _ in 0..10 {
            hop.segment("s", 1);
        }
        assert_eq!(hop.total_ns(), MAX_SEGMENTS as u64);
    }
}
