//! A minimal std-only HTTP/1.1 GET handler for the metrics endpoint.
//!
//! [`MetricsHttp`] binds a `TcpListener`, spawns one accept-loop thread,
//! and serves each request from a render callback. It understands exactly
//! enough HTTP for a Prometheus scraper or `curl`: the request line is
//! parsed for method and path, headers are read to the blank line and
//! discarded, and the response carries `Content-Length` and
//! `Connection: close`. Anything beyond `GET /metrics` (or `GET /`) gets
//! a 404; non-GET methods get a 405. One connection at a time — a scrape
//! endpoint polled every few seconds does not need more.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background metrics HTTP server. Shuts down on [`MetricsHttp::stop`]
/// or drop.
pub struct MetricsHttp {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsHttp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHttp")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsHttp {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port — see
    /// [`MetricsHttp::local_addr`]) and starts serving. `render` is called
    /// once per `GET /metrics` and must return the full exposition text.
    pub fn serve<F>(addr: &str, render: F) -> std::io::Result<Self>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Ignore per-connection errors: a scraper that hangs up
                    // mid-response must not take the endpoint down.
                    let _ = handle_conn(stream, &render);
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept() by connecting to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_conn<F: Fn() -> String>(stream: TcpStream, render: &F) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain the headers; we don't use any of them.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut stream = stream;
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match path.split('?').next().unwrap_or("") {
        "/metrics" | "/" => {
            let body = render();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Issues a plain HTTP/1.1 GET for `path` against `addr` and returns
/// `(status_line, body)`. A test/CI helper — also used by the obs-smoke
/// scrape script — not a general HTTP client.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: metrics\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    let mut in_body = false;
    let mut body = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if in_body {
            body.push_str(&line);
        } else if line.trim_end().is_empty() {
            in_body = true;
        }
    }
    Ok((status.trim_end().to_string(), body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let server = MetricsHttp::serve("127.0.0.1:0", || "p4lru_up 1\n".to_string()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "p4lru_up 1\n");

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn root_path_serves_metrics_too() {
        let server = MetricsHttp::serve("127.0.0.1:0", || "x 2\n".to_string()).unwrap();
        let (status, body) = http_get(server.local_addr(), "/").unwrap();
        assert!(status.contains("200"));
        assert_eq!(body, "x 2\n");
    }

    #[test]
    fn non_get_is_rejected() {
        let server = MetricsHttp::serve("127.0.0.1:0", String::new).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.contains("405"), "{status}");
    }

    #[test]
    fn stop_joins_the_thread_and_frees_the_port() {
        let mut server = MetricsHttp::serve("127.0.0.1:0", String::new).unwrap();
        let addr = server.local_addr();
        server.stop();
        // After stop the listener is gone; a fresh bind to the port works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }

    #[test]
    fn render_reflects_live_state() {
        use std::sync::atomic::AtomicU64;
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let server = MetricsHttp::serve("127.0.0.1:0", move || {
            format!("c {}\n", c.load(Ordering::Relaxed))
        })
        .unwrap();
        let addr = server.local_addr();
        let (_, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(body, "c 0\n");
        counter.store(41, Ordering::Relaxed);
        let (_, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(body, "c 41\n");
    }
}
