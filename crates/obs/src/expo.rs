//! Prometheus text-format (version 0.0.4) exposition.
//!
//! [`Expo`] is a small builder that renders `# HELP` / `# TYPE` metadata,
//! escaped label values, and histogram series with cumulative `le` buckets.
//! It writes the wire text directly — no intermediate metric registry —
//! because the server already owns its counters and snapshots; the builder
//! only has to get the format details right:
//!
//! - label *values* escape `\` → `\\`, `"` → `\"`, and newline → `\n`
//!   (metric and label names are restricted to `[a-zA-Z_:][a-zA-Z0-9_:]*`
//!   and are asserted, not escaped);
//! - `# HELP` text escapes `\` and newlines;
//! - histogram `le` buckets are cumulative, end with `le="+Inf"` equal to
//!   `_count`, and are emitted in seconds (the log₂ nanosecond buckets
//!   convert as `2^i / 1e9`).

use crate::hist::{HistSnapshot, BUCKETS};

/// A Prometheus text-format document builder.
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
}

/// A `name="value"` label pair (value escaped at render time).
pub type Label<'a> = (&'a str, &'a str);

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders an `f64` the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// spelled out, integers without a trailing `.0` is not required — plain
/// `{}` formatting is valid exposition).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

impl Expo {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits `# HELP` and `# TYPE` metadata for `name`. Call once per
    /// metric family, before its samples.
    pub fn meta(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        escape_help(help, &mut self.out);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    fn labels(&mut self, labels: &[Label<'_>]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            debug_assert!(valid_name(k), "invalid label name {k:?}");
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(k);
            self.out.push_str("=\"");
            escape_label_value(v, &mut self.out);
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Emits one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[Label<'_>], value: f64) -> &mut Self {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.out.push_str(name);
        self.labels(labels);
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
        self
    }

    /// Emits a full histogram family from a log₂ nanosecond snapshot:
    /// cumulative `le` buckets in seconds (`le = 2^i / 1e9` for each
    /// non-empty boundary), `le="+Inf"`, `_sum` (seconds), and `_count`.
    /// Empty leading/trailing buckets are elided — only boundaries that
    /// change the cumulative count are emitted, plus `+Inf` — keeping the
    /// document small without breaking cumulativity.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[Label<'_>],
        snap: &HistSnapshot,
    ) -> &mut Self {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &n) in snap.buckets.iter().take(BUCKETS).enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            // Upper bound of bucket i is 2^(i+1) ns: it holds samples with
            // floor(log2(ns)) == i, i.e. ns < 2^(i+1).
            let le = ((1u128 << (i + 1)) as f64) / 1e9;
            let le_str = fmt_value(le);
            let mut all: Vec<Label<'_>> = labels.to_vec();
            all.push(("le", &le_str));
            self.sample(&bucket_name, &all, cumulative as f64);
        }
        let mut all: Vec<Label<'_>> = labels.to_vec();
        all.push(("le", "+Inf"));
        // +Inf must equal _count even if a racing recorder bumped `count`
        // between bucket loads; use the bucket total for both so the family
        // is internally consistent.
        let total: u64 = snap.buckets.iter().sum();
        self.sample(&bucket_name, &all, total as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum_ns as f64 / 1e9);
        self.sample(&format!("{name}_count"), labels, total as f64);
        self
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::AtomicHistogram;

    #[test]
    fn renders_meta_and_samples() {
        let mut e = Expo::new();
        e.meta("p4lru_hits_total", "counter", "Cache hits.")
            .sample("p4lru_hits_total", &[("shard", "0")], 42.0)
            .sample("p4lru_hits_total", &[("shard", "1")], 7.0);
        let text = e.finish();
        assert!(text.contains("# HELP p4lru_hits_total Cache hits.\n"));
        assert!(text.contains("# TYPE p4lru_hits_total counter\n"));
        assert!(text.contains("p4lru_hits_total{shard=\"0\"} 42\n"));
        assert!(text.contains("p4lru_hits_total{shard=\"1\"} 7\n"));
    }

    #[test]
    fn escapes_label_values_and_help() {
        let mut e = Expo::new();
        e.meta("m", "gauge", "line1\nline2 \\ back")
            .sample("m", &[("path", "a\"b\\c\nd")], 1.0);
        let text = e.finish();
        assert!(text.contains("# HELP m line1\\nline2 \\\\ back\n"));
        assert!(text.contains("m{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let h = AtomicHistogram::new();
        for ns in [100u64, 900, 900, 70_000, 3_000_000] {
            h.record_ns(ns);
        }
        let mut e = Expo::new();
        e.meta("p4lru_request_seconds", "histogram", "Request latency.")
            .histogram("p4lru_request_seconds", &[("op", "get")], &h.snapshot());
        let text = e.finish();

        // Parse back every bucket line and check monotonicity.
        let mut values = Vec::new();
        let mut inf = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("p4lru_request_seconds_bucket{") {
                let (labels, value) = rest.split_once("} ").unwrap();
                let v: f64 = value.parse().unwrap();
                if labels.contains("le=\"+Inf\"") {
                    inf = Some(v);
                } else {
                    values.push(v);
                }
            }
        }
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        assert_eq!(inf, Some(5.0), "+Inf bucket equals the sample count");
        assert!(text.contains("p4lru_request_seconds_count{op=\"get\"} 5\n"));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("p4lru_request_seconds_sum"))
            .unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - (100.0 + 900.0 + 900.0 + 70_000.0 + 3_000_000.0) / 1e9).abs() < 1e-12);
    }

    #[test]
    fn histogram_le_bounds_are_powers_of_two_in_seconds() {
        let h = AtomicHistogram::new();
        h.record_ns(1_000); // bucket 9 → le = 2^10 ns = 1.024e-6 s
        let mut e = Expo::new();
        e.histogram("m", &[], &h.snapshot());
        let text = e.finish();
        assert!(text.contains("m_bucket{le=\"0.000001024\"} 1\n"), "{text}");
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_count() {
        let mut e = Expo::new();
        e.histogram("m", &[], &HistSnapshot::empty());
        let text = e.finish();
        assert!(text.contains("m_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("m_sum 0\n"));
        assert!(text.contains("m_count 0\n"));
    }

    #[test]
    fn special_values_render_spelled_out() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(3.0), "3");
    }

    #[test]
    fn name_validation_rejects_leading_digits_and_bad_chars() {
        assert!(valid_name("p4lru_hits_total"));
        assert!(valid_name("up:rate"));
        assert!(!valid_name("4lru"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
