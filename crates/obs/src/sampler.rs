//! A periodic background sampler.
//!
//! [`Periodic`] runs a callback on a fixed interval in its own thread —
//! the server uses it to append `StatsReport` deltas as JSONL into the
//! data dir. Shutdown (explicit [`Periodic::stop`] or drop) wakes the
//! thread immediately via a channel instead of waiting out the interval,
//! and fires one final tick so short-lived runs still produce at least one
//! sample.

use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread invoking a callback every `interval`.
pub struct Periodic {
    stop_tx: Option<Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Periodic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Periodic")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Periodic {
    /// Spawns the sampler. `tick` receives the 1-based tick number; the
    /// final shutdown tick reuses the next number in sequence.
    pub fn spawn<F>(interval: Duration, tick: F) -> Self
    where
        F: FnMut(u64) + Send + 'static,
    {
        let (stop_tx, stop_rx) = channel::<()>();
        let mut tick = tick;
        let handle = std::thread::Builder::new()
            .name("sampler".into())
            .spawn(move || {
                let mut n = 0u64;
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => {
                            n += 1;
                            tick(n);
                        }
                        // Stop requested (or the handle was leaked and the
                        // sender dropped): flush a final sample and exit.
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                            tick(n + 1);
                            break;
                        }
                    }
                }
            })
            .expect("spawn sampler thread");
        Self {
            stop_tx: Some(stop_tx),
            handle: Some(handle),
        }
    }

    /// Stops the sampler, firing one final tick, and joins the thread.
    pub fn stop(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Periodic {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn ticks_on_the_interval() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut p = Periodic::spawn(Duration::from_millis(5), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(40));
        p.stop();
        let n = count.load(Ordering::Relaxed);
        assert!(n >= 2, "expected several ticks in 40ms at 5ms, got {n}");
    }

    #[test]
    fn stop_fires_a_final_tick_even_before_the_first_interval() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut p = Periodic::spawn(Duration::from_secs(3600), move |n| {
            c.store(n, Ordering::Relaxed);
        });
        p.stop();
        assert_eq!(count.load(Ordering::Relaxed), 1, "shutdown tick ran");
    }

    #[test]
    fn drop_is_stop() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        {
            let _p = Periodic::spawn(Duration::from_secs(3600), move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tick_numbers_are_sequential() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let mut p = Periodic::spawn(Duration::from_millis(3), move |n| {
            s.lock().unwrap().push(n);
        });
        std::thread::sleep(Duration::from_millis(25));
        p.stop();
        let ticks = seen.lock().unwrap();
        assert!(!ticks.is_empty());
        for (i, &n) in ticks.iter().enumerate() {
            assert_eq!(n, i as u64 + 1);
        }
    }
}
