//! # p4lru-obs
//!
//! Observability primitives for the cache service, std-only (consistent
//! with the `compat/` vendoring policy — this crate has zero dependencies):
//!
//! - [`hist::AtomicHistogram`] — an atomic, mergeable variant of the
//!   log₂-bucketed latency histogram, recordable from any thread without
//!   locks (the server keeps one per shard per op-type and one per
//!   lifecycle stage).
//! - [`trace`] — request-lifecycle span tracing: a [`trace::Tracer`] stamps
//!   eight pipeline stages (decode → route → shard-queue → wal-append →
//!   apply → fsync/commit-gate → reply-reorder → flush) into a fixed-size
//!   [`trace::RequestTrace`] that rides along with the request, and
//!   completed traces land in lock-free [`trace::TraceRing`]s (one for a
//!   rolling sample of all requests, one for slow ops past a configurable
//!   threshold), drainable on demand.
//! - [`expo`] — Prometheus text-format (version 0.0.4) exposition: `# HELP`
//!   / `# TYPE` metadata, label escaping, and cumulative `le` histogram
//!   buckets.
//! - [`http::MetricsHttp`] — a minimal std-only HTTP/1.1 GET handler
//!   serving `/metrics` from a render callback (`serverd --metrics-addr`).
//! - [`sampler::Periodic`] — a background thread invoking a callback on a
//!   fixed interval (the server's JSONL stats sampler), with a final tick
//!   on shutdown so short runs still produce output.
//! - [`span`] — in-band trace propagation: a 16-byte [`span::SpanContext`]
//!   (trace id, origin stamp, hop count) carried *inside* flagged wire
//!   frames across router → tier → server hops, plus the per-hop
//!   [`span::HopTrace`] segment model so every hop of a slow request
//!   prints a breakdown line sharing one grep-able trace id.
//!
//! The stage order matches the server's actual pipeline: the WAL append
//! happens *before* the in-memory apply (the append-before-apply
//! durability discipline), and the fsync stamp is the commit gate — the
//! moment the request's acknowledgement was released, whether or not the
//! sync policy issued a physical fsync for this batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod http;
pub mod sampler;
pub mod span;
pub mod trace;

pub use expo::Expo;
pub use hist::{AtomicHistogram, HistSnapshot};
pub use http::MetricsHttp;
pub use sampler::Periodic;
pub use span::{HopKind, HopTrace, SpanContext, TraceIdGen, SPAN_BYTES};
pub use trace::{FinishedTrace, ObsConfig, OpKind, RequestTrace, Stage, TraceRing, Tracer};
