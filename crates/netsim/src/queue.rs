//! Server pools and closed-loop clients.
//!
//! [`ServerPool`] models `c` identical FIFO servers (database worker
//! threads, a control-plane CPU): work submitted at an arrival time with a
//! service duration completes when a server has drained everything ahead of
//! it. [`ClosedLoop`] drives a pool the way the YCSB benchmark drives a
//! database: each client keeps exactly one request outstanding.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Nanos;

/// `c` identical FIFO servers.
#[derive(Clone, Debug)]
pub struct ServerPool {
    /// Earliest time each server becomes free (min-heap).
    free_at: BinaryHeap<Reverse<Nanos>>,
}

impl ServerPool {
    /// A pool of `servers` servers, all free at time 0.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "pool needs at least one server");
        Self {
            free_at: (0..servers).map(|_| Reverse(0)).collect(),
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Submits work arriving at `arrival` needing `service` time; returns
    /// its completion time. Work is served by the earliest-free server.
    pub fn submit(&mut self, arrival: Nanos, service: Nanos) -> Nanos {
        let Reverse(free) = self.free_at.pop().expect("pool is non-empty");
        let start = free.max(arrival);
        let done = start + service;
        self.free_at.push(Reverse(done));
        done
    }

    /// The earliest time any server is free.
    pub fn next_free(&self) -> Nanos {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(0)
    }
}

/// Closed-loop client driver: `clients` clients each keep one request in
/// flight against a [`ServerPool`], with a fixed network round-trip.
///
/// `service_time(op_index)` supplies per-operation service durations (e.g.
/// cheap for index-cache hits, a full B+Tree walk for misses). The loop
/// runs until the simulated clock passes `duration`; returns completed
/// operation count, from which throughput follows.
#[derive(Debug)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Network round-trip added to every operation.
    pub rtt: Nanos,
    /// Wall-clock budget of the run.
    pub duration: Nanos,
}

impl ClosedLoop {
    /// Runs the loop; returns `(completed_ops, makespan)`.
    ///
    /// Deterministic: clients are interleaved by completion time with FIFO
    /// tie-breaks.
    pub fn run(
        &self,
        pool: &mut ServerPool,
        mut service_time: impl FnMut(u64) -> Nanos,
    ) -> (u64, Nanos) {
        assert!(self.clients > 0, "need at least one client");
        // Min-heap of (next issue time, client id).
        let mut issue: BinaryHeap<Reverse<(Nanos, usize)>> =
            (0..self.clients).map(|c| Reverse((0, c))).collect();
        let mut ops = 0u64;
        let mut makespan = 0;
        while let Some(Reverse((t, client))) = issue.pop() {
            if t >= self.duration {
                continue;
            }
            // Request travels rtt/2, queues at the pool, is served, returns.
            let service = service_time(ops);
            let done = pool.submit(t + self.rtt / 2, service) + self.rtt / 2;
            ops += 1;
            makespan = makespan.max(done);
            issue.push(Reverse((done, client)));
        }
        (ops, makespan)
    }

    /// Convenience: throughput in operations per second.
    pub fn throughput(&self, pool: &mut ServerPool, service_time: impl FnMut(u64) -> Nanos) -> f64 {
        let (ops, makespan) = self.run(pool, service_time);
        if makespan == 0 {
            0.0
        } else {
            ops as f64 * 1e9 / makespan as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut p = ServerPool::new(1);
        assert_eq!(p.submit(0, 10), 10);
        assert_eq!(p.submit(0, 10), 20); // queued behind the first
        assert_eq!(p.submit(100, 10), 110); // idle gap
    }

    #[test]
    fn two_servers_parallelize() {
        let mut p = ServerPool::new(2);
        assert_eq!(p.submit(0, 10), 10);
        assert_eq!(p.submit(0, 10), 10);
        assert_eq!(p.submit(0, 10), 20);
    }

    #[test]
    fn next_free_tracks_earliest() {
        let mut p = ServerPool::new(2);
        p.submit(0, 100);
        assert_eq!(p.next_free(), 0);
        p.submit(0, 50);
        assert_eq!(p.next_free(), 50);
    }

    #[test]
    fn closed_loop_throughput_scales_with_clients_until_saturation() {
        // 8 servers, 1 µs service, zero RTT: throughput should scale
        // linearly in clients up to 8, then plateau at 8 ops/µs.
        let tput = |clients| {
            let mut pool = ServerPool::new(8);
            let cl = ClosedLoop {
                clients,
                rtt: 0,
                duration: 1_000_000,
            };
            cl.throughput(&mut pool, |_| 1_000)
        };
        let t1 = tput(1);
        let t4 = tput(4);
        let t8 = tput(8);
        let t32 = tput(32);
        assert!((t1 - 1e6).abs() / 1e6 < 0.01, "t1 = {t1}");
        assert!((t4 - 4e6).abs() / 4e6 < 0.01, "t4 = {t4}");
        assert!((t8 - 8e6).abs() / 8e6 < 0.02, "t8 = {t8}");
        assert!(t32 < 8.3e6, "t32 = {t32} exceeded capacity");
    }

    #[test]
    fn rtt_lowers_closed_loop_throughput() {
        let run = |rtt| {
            let mut pool = ServerPool::new(1);
            let cl = ClosedLoop {
                clients: 1,
                rtt,
                duration: 1_000_000,
            };
            cl.throughput(&mut pool, |_| 1_000)
        };
        // 1 µs service + 1 µs RTT halves single-client throughput.
        let fast = run(0);
        let slow = run(1_000);
        assert!(
            (slow - fast / 2.0).abs() / fast < 0.02,
            "fast {fast} slow {slow}"
        );
    }

    #[test]
    fn per_op_service_times_apply() {
        // Every second op is 3× slower; mean service = 2 µs → 0.5 ops/µs.
        let mut pool = ServerPool::new(1);
        let cl = ClosedLoop {
            clients: 1,
            rtt: 0,
            duration: 10_000_000,
        };
        let tput = cl.throughput(&mut pool, |i| if i % 2 == 0 { 1_000 } else { 3_000 });
        assert!((tput - 0.5e6).abs() / 0.5e6 < 0.01, "tput {tput}");
    }

    #[test]
    fn deterministic_run() {
        let run = || {
            let mut pool = ServerPool::new(3);
            let cl = ClosedLoop {
                clients: 5,
                rtt: 500,
                duration: 100_000,
            };
            cl.run(&mut pool, |i| 700 + (i % 7) * 100)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ServerPool::new(0);
    }
}
