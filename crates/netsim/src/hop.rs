//! The switch hop of a two-tier deployment: client → Tofino switch →
//! server, with the switch optionally answering from its on-chip cache.
//!
//! The paper's headline latency claim is that a switch-tier hit saves the
//! entire switch↔server leg *and* the server's service time: the reply is
//! produced inside the pipeline (sub-microsecond) instead of by a host.
//! [`SwitchHop`] prices both paths of one closed-loop request so that a
//! gateway driving a real TCP server can charge each operation a modeled
//! wire latency and compare two-tier against server-only fairly:
//!
//! * **hit** — client wire out, one pipeline traversal, client wire back;
//! * **forward** — the hit path plus a second pipeline traversal (the reply
//!   re-enters the switch) and both directions of the switch↔server wire.
//!   The *server's* service time is real, measured by the caller, and added
//!   on top.
//!
//! The model is stateless (uncontended links): a closed-loop client has at
//! most one frame in flight, so FIFO queueing never engages.

use crate::link::Link;
use crate::{Nanos, MICROSECOND};

/// Latency model of one client → switch → server path.
#[derive(Clone, Debug)]
pub struct SwitchHop {
    /// Client ↔ switch wire.
    client_link: Link,
    /// Switch ↔ server wire.
    server_link: Link,
    /// One traversal of the switch pipeline (ingress parser → deparser).
    pipeline_ns: Nanos,
}

impl SwitchHop {
    /// A hop with explicit wires and pipeline traversal time.
    pub fn new(client_link: Link, server_link: Link, pipeline_ns: Nanos) -> Self {
        Self {
            client_link,
            server_link,
            pipeline_ns,
        }
    }

    /// Testbed-flavored defaults: 10 Gb/s wires, 5 µs client↔switch and
    /// 2 µs switch↔server propagation (top-of-rack distances), ~400 ns for
    /// one pipeline traversal.
    pub fn testbed() -> Self {
        Self::new(
            Link::ten_gbps(5 * MICROSECOND),
            Link::ten_gbps(2 * MICROSECOND),
            400,
        )
    }

    /// One pipeline traversal.
    pub fn pipeline_ns(&self) -> Nanos {
        self.pipeline_ns
    }

    /// RTT of a request answered *at the switch*: out and back on the client
    /// wire with a single pipeline traversal in between.
    pub fn hit_rtt(&self, request_bytes: u32, response_bytes: u32) -> Nanos {
        self.client_link.oneway_ns(request_bytes)
            + self.pipeline_ns
            + self.client_link.oneway_ns(response_bytes)
    }

    /// Extra wire/pipeline time a *forwarded* request pays on top of
    /// [`Self::hit_rtt`]: both directions of the switch↔server wire plus the
    /// second pipeline traversal when the reply re-enters the switch. The
    /// server's own service time is not included — it is real, and the
    /// caller measures it.
    pub fn forward_overhead_ns(&self, request_bytes: u32, response_bytes: u32) -> Nanos {
        self.server_link.oneway_ns(request_bytes)
            + self.server_link.oneway_ns(response_bytes)
            + self.pipeline_ns
    }

    /// Total modeled wire RTT of a request that goes all the way to the
    /// server — also the per-request cost of the *server-only* baseline,
    /// where the switch forwards everything. Add the measured server
    /// service time for the full client-observed latency.
    pub fn direct_rtt(&self, request_bytes: u32, response_bytes: u32) -> Nanos {
        self.hit_rtt(request_bytes, response_bytes)
            + self.forward_overhead_ns(request_bytes, response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_is_strictly_cheaper_than_direct() {
        let hop = SwitchHop::testbed();
        assert!(hop.hit_rtt(64, 128) < hop.direct_rtt(64, 128));
        assert_eq!(
            hop.direct_rtt(64, 128),
            hop.hit_rtt(64, 128) + hop.forward_overhead_ns(64, 128)
        );
    }

    #[test]
    fn rtt_matches_hand_computation() {
        // 1 Gb/s wires: 125 bytes serialize in exactly 1 µs.
        let hop = SwitchHop::new(
            Link::new(1_000_000_000, 500),
            Link::new(1_000_000_000, 200),
            100,
        );
        // Hit: (1000 + 500) out + 100 pipeline + (1000 + 500) back.
        assert_eq!(hop.hit_rtt(125, 125), 3_100);
        // Forward overhead: (1000 + 200) × 2 + 100.
        assert_eq!(hop.forward_overhead_ns(125, 125), 2_500);
        assert_eq!(hop.direct_rtt(125, 125), 5_600);
    }

    #[test]
    fn testbed_hit_is_sub_twenty_microseconds() {
        let hop = SwitchHop::testbed();
        assert!(hop.hit_rtt(64, 128) < 20 * MICROSECOND);
        assert_eq!(hop.pipeline_ns(), 400);
    }
}
