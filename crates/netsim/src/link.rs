//! A store-and-forward link: fixed propagation latency plus a serialization
//! rate with a FIFO queue. Models the client↔switch↔server wires of the
//! testbed and the switch→analyzer upload channel.

use crate::Nanos;

/// A simplex link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Bits per second.
    rate_bps: u64,
    /// Propagation delay.
    latency_ns: Nanos,
    /// Time the transmitter becomes free.
    busy_until: Nanos,
    /// Bytes accepted.
    bytes: u64,
    /// Frames accepted.
    frames: u64,
}

impl Link {
    /// A link with the given serialization rate and propagation delay.
    ///
    /// # Panics
    /// Panics if `rate_bps == 0`.
    pub fn new(rate_bps: u64, latency_ns: Nanos) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        Self {
            rate_bps,
            latency_ns,
            busy_until: 0,
            bytes: 0,
            frames: 0,
        }
    }

    /// A 10 Gb/s link with the given propagation delay (the testbed's NICs).
    pub fn ten_gbps(latency_ns: Nanos) -> Self {
        Self::new(10_000_000_000, latency_ns)
    }

    /// Serialization time of a frame.
    pub fn serialization_ns(&self, bytes: u32) -> Nanos {
        (u64::from(bytes) * 8 * 1_000_000_000).div_ceil(self.rate_bps)
    }

    /// Propagation delay.
    pub fn latency_ns(&self) -> Nanos {
        self.latency_ns
    }

    /// One-way traversal time of an *uncontended* link: serialization plus
    /// propagation, ignoring the FIFO queue. The stateless counterpart of
    /// [`Self::transmit`], for closed-loop latency models where at most one
    /// frame is ever in flight.
    pub fn oneway_ns(&self, bytes: u32) -> Nanos {
        self.serialization_ns(bytes) + self.latency_ns
    }

    /// Enqueues a frame handed to the link at `now`; returns its arrival
    /// time at the far end (FIFO behind any queued frames).
    pub fn transmit(&mut self, now: Nanos, bytes: u32) -> Nanos {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.serialization_ns(bytes);
        self.bytes += u64::from(bytes);
        self.frames += 1;
        self.busy_until + self.latency_ns
    }

    /// Queueing delay a frame handed over at `now` would experience before
    /// serialization starts.
    pub fn queue_delay(&self, now: Nanos) -> Nanos {
        self.busy_until.saturating_sub(now)
    }

    /// Total bytes accepted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total frames accepted.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mean utilization over `[0, horizon]` (serialized time / horizon).
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let serialized = self.bytes * 8 * 1_000_000_000 / self.rate_bps;
        (serialized as f64 / horizon as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_rate() {
        let l = Link::new(1_000_000_000, 0); // 1 Gb/s
        assert_eq!(l.serialization_ns(125), 1_000); // 1000 bits → 1 µs
        let l = Link::ten_gbps(0);
        assert_eq!(l.serialization_ns(1250), 1_000);
    }

    #[test]
    fn idle_link_delivers_after_serialization_plus_latency() {
        let mut l = Link::new(1_000_000_000, 500);
        assert_eq!(l.transmit(1_000, 125), 1_000 + 1_000 + 500);
    }

    #[test]
    fn back_to_back_frames_queue_fifo() {
        let mut l = Link::new(1_000_000_000, 0);
        let a = l.transmit(0, 125); // done at 1000
        let b = l.transmit(0, 125); // queued: done at 2000
        assert_eq!(a, 1_000);
        assert_eq!(b, 2_000);
        assert_eq!(l.queue_delay(0), 2_000);
        // After the queue drains, a later frame sees no delay.
        let c = l.transmit(10_000, 125);
        assert_eq!(c, 11_000);
    }

    #[test]
    fn accounting_and_utilization() {
        let mut l = Link::new(1_000_000_000, 0);
        for _ in 0..10 {
            l.transmit(0, 125);
        }
        assert_eq!(l.frames(), 10);
        assert_eq!(l.bytes(), 1250);
        // 10 µs serialized over a 20 µs horizon.
        assert!((l.utilization(20_000) - 0.5).abs() < 1e-9);
        assert_eq!(l.utilization(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Link::new(0, 0);
    }
}
