//! # p4lru-netsim
//!
//! A small deterministic discrete-event simulator, standing in for the
//! paper's DPDK testbed (sender client → Tofino switch → receiver/server).
//!
//! The testbed figures (9–11) measure *relative* quantities — miss rate,
//! added latency, throughput, upload rate — between P4LRU3 and baseline
//! systems under identical load. A deterministic event simulation preserves
//! exactly those relations while being reproducible bit-for-bit, which the
//! hardware testbed is not.
//!
//! * [`engine`] — time-ordered event queue with a run loop;
//! * [`queue`] — FIFO multi-server pools (database threads, control-plane
//!   lookup) and closed-loop client drivers;
//! * [`link`] — store-and-forward links (rate + propagation + FIFO queue);
//! * [`hop`] — the client→switch→server latency model of the two-tier
//!   deployment (hit-at-switch vs forward-to-server pricing);
//! * [`stats`] — online moments, exact percentiles, windowed rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod hop;
pub mod link;
pub mod queue;
pub mod stats;

pub use engine::Engine;
pub use hop::SwitchHop;
pub use link::Link;
pub use queue::{ClosedLoop, ServerPool};
pub use stats::{OnlineStats, Percentiles, WindowedRate};

/// Nanoseconds — every clock in the workspace uses this unit.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;
