//! Time-ordered event queue.
//!
//! Events carry a user-defined payload `E`. Ties in time are broken by
//! insertion order (FIFO), which keeps simulations deterministic even when
//! many events share a timestamp.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Nanos;

/// A deterministic discrete-event engine.
///
/// ```
/// use p4lru_netsim::Engine;
///
/// let mut engine = Engine::new();
/// engine.schedule(20, "world");
/// engine.schedule(10, "hello");
/// let mut seen = Vec::new();
/// while let Some((t, ev)) = engine.pop() {
///     seen.push((t, ev));
///     if ev == "hello" {
///         engine.schedule(15, "again"); // may schedule while running
///     }
/// }
/// assert_eq!(seen, vec![(10, "hello"), (15, "again"), (20, "world")]);
/// ```
#[derive(Clone, Debug)]
pub struct Engine<E> {
    heap: BinaryHeap<Reverse<(Nanos, u64, EventBox<E>)>>,
    seq: u64,
    now: Nanos,
    processed: u64,
}

/// Wrapper giving the payload a vacuous ordering so the heap only orders by
/// (time, seq).
#[derive(Clone, Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// An empty engine at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            processed: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current simulation time (events cannot
    /// be scheduled into the past).
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse((t, _, EventBox(e))) = self.heap.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue drained?
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains the queue through `handler`, which may schedule more events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Nanos, E)) {
        while let Some((t, e)) = self.pop() {
            handler(self, t, e);
        }
    }

    /// Like [`Self::run`] but stops (leaving the queue intact) once the
    /// clock passes `deadline`.
    pub fn run_until(&mut self, deadline: Nanos, mut handler: impl FnMut(&mut Self, Nanos, E)) {
        while let Some(Reverse((t, _, _))) = self.heap.peek() {
            if *t > deadline {
                break;
            }
            let (t, e) = self.pop().expect("peeked event exists");
            handler(self, t, e);
        }
        self.now = self.now.max(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule(30, 'c');
        e.schedule(10, 'a');
        e.schedule(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| e.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| e.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule(100, ());
        assert_eq!(e.now(), 0);
        e.pop();
        assert_eq!(e.now(), 100);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(100, ());
        e.pop();
        e.schedule(50, ());
    }

    #[test]
    fn run_handles_cascading_events() {
        let mut e = Engine::new();
        e.schedule(1, 3u32);
        let mut total = 0u32;
        e.run(|eng, t, countdown| {
            total += 1;
            if countdown > 0 {
                eng.schedule(t + 10, countdown - 1);
            }
        });
        assert_eq!(total, 4);
        assert_eq!(e.now(), 31);
        assert!(e.is_idle());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        for t in [10u64, 20, 30, 40] {
            e.schedule(t, ());
        }
        let mut count = 0;
        e.run_until(25, |_, _, _| count += 1);
        assert_eq!(count, 2);
        assert_eq!(e.pending(), 2);
        assert_eq!(e.now(), 25);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule(100, "first");
        e.pop();
        e.schedule_in(50, "second");
        assert_eq!(e.pop(), Some((150, "second")));
    }

    #[test]
    fn processed_counter() {
        let mut e = Engine::new();
        e.schedule(1, ());
        e.schedule(2, ());
        e.run(|_, _, _| {});
        assert_eq!(e.processed(), 2);
    }
}
