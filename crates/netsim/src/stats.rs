//! Measurement sinks: online moments, exact percentiles, windowed rates.

use crate::Nanos;

/// Welford online mean/variance with min/max.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Exact percentile recorder: stores all samples, sorts on demand.
///
/// The figure harnesses record ≤ a few million latencies per run; exactness
/// beats a sketch here and sorting once at the end is cheap.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<u64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, x: u64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&x| x as f64).sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Counts events per fixed time window, yielding a rate series — used for
/// upload-rate (KPPS) measurements in LruMon.
#[derive(Clone, Debug)]
pub struct WindowedRate {
    window_ns: Nanos,
    counts: Vec<u64>,
}

impl WindowedRate {
    /// A rate counter with the given window size.
    ///
    /// # Panics
    /// Panics if `window_ns == 0`.
    pub fn new(window_ns: Nanos) -> Self {
        assert!(window_ns > 0, "window must be positive");
        Self {
            window_ns,
            counts: Vec::new(),
        }
    }

    /// Records one event at absolute time `at`.
    pub fn record(&mut self, at: Nanos) {
        let idx = (at / self.window_ns) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean events per second over the observed span.
    pub fn mean_rate_per_sec(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let span_sec = (self.counts.len() as f64 * self.window_ns as f64) / 1e9;
        self.total() as f64 / span_sec
    }

    /// Peak single-window rate, scaled to events per second.
    pub fn peak_rate_per_sec(&self) -> f64 {
        let peak = self.counts.iter().copied().max().unwrap_or(0);
        peak as f64 * (1e9 / self.window_ns as f64)
    }

    /// Per-window counts (for plotting time series).
    pub fn windows(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100u64 {
            p.push(x);
        }
        assert_eq!(p.quantile(0.5), Some(50));
        assert_eq!(p.quantile(0.99), Some(99));
        assert_eq!(p.quantile(1.0), Some(100));
        assert_eq!(p.quantile(0.0), Some(1));
        assert!((p.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interleaved_push_and_query() {
        let mut p = Percentiles::new();
        p.push(10);
        assert_eq!(p.quantile(0.5), Some(10));
        p.push(0);
        assert_eq!(p.quantile(0.5), Some(0));
        assert_eq!(p.count(), 2);
    }

    #[test]
    fn percentiles_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.mean(), 0.0);
    }

    #[test]
    fn windowed_rate_buckets_and_rates() {
        let mut w = WindowedRate::new(1_000_000); // 1 ms windows
        for t in [0u64, 100, 999_999, 1_000_000, 2_500_000] {
            w.record(t);
        }
        assert_eq!(w.windows(), &[3, 1, 1]);
        assert_eq!(w.total(), 5);
        // 5 events over 3 ms.
        assert!((w.mean_rate_per_sec() - 5.0 / 0.003).abs() < 1e-6);
        // Peak window had 3 events in 1 ms → 3000/s.
        assert!((w.peak_rate_per_sec() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn windowed_rate_empty() {
        let w = WindowedRate::new(1000);
        assert_eq!(w.total(), 0);
        assert_eq!(w.mean_rate_per_sec(), 0.0);
        assert_eq!(w.peak_rate_per_sec(), 0.0);
    }
}
