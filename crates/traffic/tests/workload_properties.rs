//! Property tests for the workload generators: structural invariants that
//! must hold for *any* configuration, not just the calibrated defaults.

use proptest::prelude::*;

use p4lru_traffic::caida::CaidaConfig;
use p4lru_traffic::packet::FiveTuple;
use p4lru_traffic::ycsb::{ScrambledIndex, YcsbConfig};
use p4lru_traffic::zipf::Zipf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn traces_are_sorted_bounded_and_deterministic(
        segments in 1usize..12,
        packets in 500usize..8000,
        seed in any::<u64>(),
    ) {
        let cfg = CaidaConfig::caida_n(segments, packets, seed);
        let trace = cfg.generate();
        // Time-sorted, within duration.
        for w in trace.packets.windows(2) {
            prop_assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        prop_assert!(trace.packets.iter().all(|p| p.ts_ns < cfg.duration_ns));
        // Packet lengths are valid wire sizes.
        prop_assert!(trace.packets.iter().all(|p| (40..=1500).contains(&p.len)));
        // Deterministic.
        let again = cfg.generate();
        prop_assert_eq!(&trace.packets, &again.packets);
        // Budget respected within tolerance.
        let got = trace.len() as f64;
        prop_assert!(
            (got - packets as f64).abs() / packets as f64 <= 0.5,
            "budget {} got {}", packets, got
        );
    }

    #[test]
    fn zipf_samples_in_range(n in 1u64..100_000, s in 0.2f64..2.5, seed in any::<u64>()) {
        use rand::SeedableRng;
        let zipf = Zipf::new(n, s);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn scramble_is_bijective_for_any_domain(n in 1u64..5000, seed in any::<u64>()) {
        let s = ScrambledIndex::new(n, seed);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = s.apply(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize], "collision at input {}", x);
            seen[y as usize] = true;
        }
    }

    #[test]
    fn ycsb_keys_in_range_and_deterministic(items in 1u64..100_000, seed in any::<u64>()) {
        let cfg = YcsbConfig { items, seed, ..Default::default() };
        let a = cfg.generate(300);
        let b = cfg.generate(300);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|op| op.key() < items));
    }

    #[test]
    fn synthetic_tuples_roundtrip_distinctness(ids in proptest::collection::hash_set(any::<u64>(), 2..100)) {
        let tuples: Vec<FiveTuple> = ids.iter().map(|&i| FiveTuple::synthetic(i)).collect();
        let mut dedup = tuples.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), tuples.len());
    }
}
