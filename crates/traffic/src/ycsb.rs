//! YCSB-style key-request workload (paper §4.1, LruIndex experiments).
//!
//! "The query transaction set was generated based on the Zipf distribution
//! with a skewness of α = 0.9." Popularity ranks are scrambled onto key ids
//! with a format-preserving permutation so that hot keys are spread across
//! the key space (adjacent ranks must not be adjacent ids, or hash-indexed
//! caches would see artificial collision patterns).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A format-preserving pseudorandom permutation on `0..n`, built from a
/// 4-round Feistel network over the next power of two with cycle-walking.
/// Deterministic in the seed; bijective for any `n`.
#[derive(Clone, Debug)]
pub struct ScrambledIndex {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl ScrambledIndex {
    /// A permutation of `0..n` derived from `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        let bits = 64 - (n - 1).leading_zeros();
        let half_bits = (bits.max(2)).div_ceil(2);
        let keys = std::array::from_fn(|i| p4lru_core::hashing::hash_u64(seed, i as u64 ^ 0xF015));
        Self { n, half_bits, keys }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    fn round(&self, half: u64, key: u64) -> u64 {
        p4lru_core::hashing::hash_u64(key, half) & ((1 << self.half_bits) - 1)
    }

    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let (mut l, mut r) = (x >> self.half_bits, x & mask);
        for key in self.keys {
            let next = l ^ self.round(r, key);
            l = r;
            r = next & mask;
        }
        (l << self.half_bits) | r
    }

    /// The image of `x` under the permutation.
    ///
    /// # Panics
    /// Panics if `x >= n`.
    pub fn apply(&self, x: u64) -> u64 {
        assert!(x < self.n, "input {x} outside domain 0..{}", self.n);
        // Cycle-walk: iterate until we land back inside the domain. The
        // Feistel net permutes 0..2^(2·half_bits), so walking terminates.
        let mut y = self.feistel(x);
        while y >= self.n {
            y = self.feistel(y);
        }
        y
    }
}

/// One database operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the value of a key.
    Read(u64),
    /// Update the value of a key.
    Update(u64),
}

impl Op {
    /// The key being operated on.
    pub fn key(self) -> u64 {
        match self {
            Op::Read(k) | Op::Update(k) => k,
        }
    }
}

/// YCSB-style workload configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Number of items in the database.
    pub items: u64,
    /// Zipf skew of key popularity (paper: 0.9).
    pub alpha: f64,
    /// Fraction of reads (YCSB-B is 0.95, YCSB-C is 1.0).
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            items: 1_000_000,
            alpha: 0.9,
            read_fraction: 1.0,
            seed: 0x5C5B,
        }
    }
}

impl YcsbConfig {
    /// An infinite deterministic operation stream.
    pub fn stream(&self) -> YcsbStream {
        YcsbStream {
            zipf: Zipf::new(self.items, self.alpha),
            scramble: ScrambledIndex::new(self.items, self.seed ^ 0x5EED),
            rng: SmallRng::seed_from_u64(self.seed),
            read_fraction: self.read_fraction,
        }
    }

    /// Generates `ops` operations eagerly.
    pub fn generate(&self, ops: usize) -> Vec<Op> {
        self.stream().take(ops).collect()
    }
}

/// Iterator of YCSB operations.
#[derive(Clone, Debug)]
pub struct YcsbStream {
    zipf: Zipf,
    scramble: ScrambledIndex,
    rng: SmallRng,
    read_fraction: f64,
}

impl Iterator for YcsbStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let rank = self.zipf.sample(&mut self.rng); // 1..=items
        let key = self.scramble.apply(rank - 1);
        let op = if self.rng.gen::<f64>() < self.read_fraction {
            Op::Read(key)
        } else {
            Op::Update(key)
        };
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_a_bijection() {
        for n in [1u64, 2, 7, 100, 1000, 4096] {
            let s = ScrambledIndex::new(n, 42);
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = s.apply(x);
                assert!(y < n, "image {y} out of range for n={n}");
                assert!(!seen[y as usize], "collision at {x} for n={n}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn scramble_differs_per_seed() {
        let a = ScrambledIndex::new(1000, 1);
        let b = ScrambledIndex::new(1000, 2);
        let diff = (0..1000).filter(|&x| a.apply(x) != b.apply(x)).count();
        assert!(diff > 900, "only {diff} differences");
    }

    #[test]
    fn scramble_spreads_adjacent_ranks() {
        let s = ScrambledIndex::new(1 << 16, 3);
        let adjacent = (0..1000u64)
            .filter(|&x| s.apply(x).abs_diff(s.apply(x + 1)) <= 1)
            .count();
        assert!(adjacent < 5, "{adjacent} adjacent pairs stayed adjacent");
    }

    #[test]
    fn workload_is_zipf_skewed() {
        let cfg = YcsbConfig {
            items: 10_000,
            ..Default::default()
        };
        let ops = cfg.generate(100_000);
        let mut counts = std::collections::HashMap::new();
        for op in &ops {
            *counts.entry(op.key()).or_insert(0usize) += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // With α=0.9 over 10⁴ items, the hottest ~100 keys take a large share.
        let share: usize = freq.iter().take(100).sum();
        let share = share as f64 / ops.len() as f64;
        assert!(share > 0.2, "top-100 share {share}");
        // And all keys are in range.
        assert!(counts.keys().all(|&k| k < cfg.items));
    }

    #[test]
    fn read_fraction_respected() {
        let cfg = YcsbConfig {
            items: 100,
            read_fraction: 0.5,
            ..Default::default()
        };
        let ops = cfg.generate(20_000);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = YcsbConfig {
            items: 1000,
            seed: 77,
            ..Default::default()
        };
        assert_eq!(cfg.generate(500), cfg.generate(500));
    }

    #[test]
    fn op_key_helper() {
        assert_eq!(Op::Read(5).key(), 5);
        assert_eq!(Op::Update(9).key(), 9);
    }
}
