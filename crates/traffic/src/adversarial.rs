//! Adversarial request patterns for the two-tier evaluation.
//!
//! A static Zipf workload flatters any cache once it is warm; the cases
//! that separate recency-tracking (LRU) from frequency or static placement
//! are the ones where popularity *moves*:
//!
//! * [`HotFlipConfig`] — Zipf-skewed traffic whose hot set rotates every
//!   `flip_every` operations. Each phase shifts the popularity ranking by a
//!   golden-ratio stride before the usual rank→key scramble, so successive
//!   hot sets are nearly disjoint. An LRU tier re-converges within one
//!   cache-fill of the flip; a frequency-biased or static tier keeps
//!   serving yesterday's celebrities.
//! * [`ScanConfig`] — a sequential sweep over the whole key space, the
//!   classic LRU-adversarial pattern: with more keys than cache entries
//!   every reference is a capacity miss, bounding the tier's hit rate from
//!   below and the offload claim from above.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ycsb::{Op, ScrambledIndex};
use crate::zipf::Zipf;

/// Zipf workload with a periodically rotating hot set.
#[derive(Clone, Debug)]
pub struct HotFlipConfig {
    /// Number of items in the database.
    pub items: u64,
    /// Zipf skew of key popularity within a phase.
    pub alpha: f64,
    /// Fraction of reads (the remainder are updates).
    pub read_fraction: f64,
    /// Operations between hot-set rotations.
    pub flip_every: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HotFlipConfig {
    fn default() -> Self {
        Self {
            items: 100_000,
            alpha: 0.9,
            read_fraction: 0.95,
            flip_every: 50_000,
            seed: 0xF11B,
        }
    }
}

impl HotFlipConfig {
    /// An infinite deterministic operation stream.
    ///
    /// # Panics
    /// Panics if `items == 0` or `flip_every == 0`.
    pub fn stream(&self) -> HotFlipStream {
        assert!(self.flip_every > 0, "flip_every must be positive");
        // Golden-ratio stride: phase offsets φ·items, 2φ·items, … are
        // maximally spread over the key space (a Weyl sequence), so the
        // rotated hot heads of consecutive phases barely overlap.
        let stride = ((self.items as f64 * 0.618_033_988_749_894_9) as u64).max(1);
        HotFlipStream {
            zipf: Zipf::new(self.items, self.alpha),
            scramble: ScrambledIndex::new(self.items, self.seed ^ 0x5EED),
            rng: SmallRng::seed_from_u64(self.seed),
            read_fraction: self.read_fraction,
            flip_every: self.flip_every,
            stride,
            items: self.items,
            emitted: 0,
        }
    }

    /// Generates `ops` operations eagerly.
    pub fn generate(&self, ops: usize) -> Vec<Op> {
        self.stream().take(ops).collect()
    }
}

/// Iterator of hot-key-flip operations.
#[derive(Clone, Debug)]
pub struct HotFlipStream {
    zipf: Zipf,
    scramble: ScrambledIndex,
    rng: SmallRng,
    read_fraction: f64,
    flip_every: u64,
    stride: u64,
    items: u64,
    emitted: u64,
}

impl HotFlipStream {
    /// The key that holds popularity rank `rank` (1-based) during `phase`.
    fn key_for(&self, rank: u64, phase: u64) -> u64 {
        let rotated = (rank - 1 + phase.wrapping_mul(self.stride)) % self.items;
        self.scramble.apply(rotated)
    }

    /// The current phase index (increments every `flip_every` ops).
    pub fn phase(&self) -> u64 {
        self.emitted / self.flip_every
    }
}

impl Iterator for HotFlipStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let phase = self.phase();
        self.emitted += 1;
        let rank = self.zipf.sample(&mut self.rng);
        let key = self.key_for(rank, phase);
        Some(if self.rng.gen::<f64>() < self.read_fraction {
            Op::Read(key)
        } else {
            Op::Update(key)
        })
    }
}

/// A sequential scan over the key space (LRU's worst case).
#[derive(Clone, Debug)]
pub struct ScanConfig {
    /// Number of items in the database.
    pub items: u64,
    /// Fraction of reads (the remainder are updates).
    pub read_fraction: f64,
    /// RNG seed (drives only the read/update coin).
    pub seed: u64,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self {
            items: 100_000,
            read_fraction: 0.95,
            seed: 0x5CA7,
        }
    }
}

impl ScanConfig {
    /// An infinite deterministic operation stream sweeping `0..items`
    /// repeatedly.
    ///
    /// # Panics
    /// Panics if `items == 0`.
    pub fn stream(&self) -> ScanStream {
        assert!(self.items > 0, "scan needs a non-empty key space");
        ScanStream {
            rng: SmallRng::seed_from_u64(self.seed),
            read_fraction: self.read_fraction,
            items: self.items,
            next_key: 0,
        }
    }

    /// Generates `ops` operations eagerly.
    pub fn generate(&self, ops: usize) -> Vec<Op> {
        self.stream().take(ops).collect()
    }
}

/// Iterator of sequential-scan operations.
#[derive(Clone, Debug)]
pub struct ScanStream {
    rng: SmallRng,
    read_fraction: f64,
    items: u64,
    next_key: u64,
}

impl Iterator for ScanStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let key = self.next_key;
        self.next_key = (self.next_key + 1) % self.items;
        Some(if self.rng.gen::<f64>() < self.read_fraction {
            Op::Read(key)
        } else {
            Op::Update(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_head(ops: &[Op], top: usize) -> Vec<u64> {
        let mut counts = std::collections::HashMap::new();
        for op in ops {
            *counts.entry(op.key()).or_insert(0usize) += 1;
        }
        let mut freq: Vec<(u64, usize)> = counts.into_iter().collect();
        freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        freq.into_iter().take(top).map(|(k, _)| k).collect()
    }

    #[test]
    fn flip_rotates_the_hot_set() {
        let cfg = HotFlipConfig {
            items: 10_000,
            flip_every: 30_000,
            ..Default::default()
        };
        let ops = cfg.generate(60_000);
        let before: std::collections::HashSet<u64> =
            hot_head(&ops[..30_000], 50).into_iter().collect();
        let after: std::collections::HashSet<u64> =
            hot_head(&ops[30_000..], 50).into_iter().collect();
        let overlap = before.intersection(&after).count();
        assert!(overlap < 10, "hot sets overlap in {overlap}/50 keys");
    }

    #[test]
    fn flip_keys_stay_in_range_and_deterministic() {
        let cfg = HotFlipConfig {
            items: 777,
            flip_every: 100,
            ..Default::default()
        };
        let ops = cfg.generate(1_000);
        assert!(ops.iter().all(|o| o.key() < cfg.items));
        assert_eq!(ops, cfg.generate(1_000));
    }

    #[test]
    fn flip_respects_read_fraction() {
        let cfg = HotFlipConfig {
            items: 1_000,
            read_fraction: 0.5,
            flip_every: 1_000,
            ..Default::default()
        };
        let ops = cfg.generate(20_000);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn phase_counter_advances() {
        let cfg = HotFlipConfig {
            items: 100,
            flip_every: 10,
            ..Default::default()
        };
        let mut s = cfg.stream();
        assert_eq!(s.phase(), 0);
        for _ in 0..10 {
            s.next();
        }
        assert_eq!(s.phase(), 1);
    }

    #[test]
    fn scan_sweeps_sequentially_and_wraps() {
        let cfg = ScanConfig {
            items: 5,
            read_fraction: 1.0,
            ..Default::default()
        };
        let keys: Vec<u64> = cfg.generate(12).iter().map(|o| o.key()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn scan_mixes_updates() {
        let cfg = ScanConfig {
            items: 100,
            read_fraction: 0.9,
            ..Default::default()
        };
        let ops = cfg.generate(10_000);
        let updates = ops.iter().filter(|o| matches!(o, Op::Update(_))).count();
        let frac = updates as f64 / ops.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "update fraction {frac}");
    }
}
