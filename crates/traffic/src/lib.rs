//! # p4lru-traffic
//!
//! Workload substrate for the P4LRU evaluation.
//!
//! The paper drives its testbed and simulations with the CAIDA 2018
//! anonymized traces, sliced into `CAIDA_n` variants: take the first `n`
//! one-minute datasets and splice `1/n` minutes from each, holding packet
//! count roughly constant (≈2.6×10⁷) while the flow count climbs from
//! 1.3×10⁶ to 2.4×10⁶ and peak flow concurrency from 1.5×10⁵ to 5.8×10⁵.
//!
//! CAIDA traces are license-gated, so this crate generates *synthetic*
//! equivalents reproducing the three properties the experiments actually
//! exercise (see DESIGN.md §2):
//!
//! 1. **Zipf-skewed flow sizes** — a few elephant flows carry most packets
//!    ([`zipf`]);
//! 2. **temporal locality** — a flow's packets cluster in bursts inside a
//!    bounded active window ([`caida`]);
//! 3. **controllable concurrency** — the `CAIDA_n` splicing knob is
//!    reproduced by generating `n` segments with fresh flow populations
//!    ([`caida::CaidaConfig::segments`]).
//!
//! [`ycsb`] provides the Zipf(α = 0.9) key-request workload used for the
//! LruIndex experiments, [`adversarial`] the hot-key-flip and sequential
//! scan patterns used to stress the two-tier deployment, and [`stats`]
//! computes the trace statistics used to calibrate the generator against
//! the paper's quoted numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod caida;
pub mod packet;
pub mod stats;
pub mod ycsb;
pub mod zipf;

pub use adversarial::{HotFlipConfig, ScanConfig};
pub use caida::{CaidaConfig, Trace};
pub use packet::{FiveTuple, Packet};
pub use zipf::Zipf;
