//! Synthetic CAIDA_n trace generation.
//!
//! The paper's `CAIDA_n` datasets splice `1/n` minutes from each of the
//! first `n` one-minute CAIDA 2018 traces: packet count stays ≈2.6×10⁷
//! while flow population and concurrency grow with `n`. [`CaidaConfig`]
//! reproduces that construction synthetically:
//!
//! * the trace is `n` back-to-back **segments**, each with a fresh flow
//!   population (splicing different minutes ⇒ disjoint flows);
//! * per segment, flow sizes follow a Zipf law and flow count is calibrated
//!   so the *total* flow count grows like the paper's measurements
//!   (1.3×10⁶ → 2.4×10⁶ over n = 1 → 60, i.e. ∝ n^0.15);
//! * each flow transmits in bursts inside a bounded active window, giving
//!   the temporal locality an LRU exploits.
//!
//! Everything is deterministic in the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::packet::{FiveTuple, Packet};
use crate::zipf::Zipf;

/// How the total flow count scales with the segment count `n`, fit to the
/// paper's quoted 1.3×10⁶ (n=1) → 2.4×10⁶ (n=60): `60^0.15 ≈ 1.85`.
pub const FLOW_GROWTH_EXPONENT: f64 = 0.15;

/// Configuration of a synthetic CAIDA_n trace.
///
/// ```
/// use p4lru_traffic::caida::CaidaConfig;
///
/// // CAIDA_8: eight spliced populations, ~50k packets.
/// let trace = CaidaConfig::caida_n(8, 50_000, 42).generate();
/// assert!(trace.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
/// assert!(trace.flow_count() > 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct CaidaConfig {
    /// The `n` of CAIDA_n: number of spliced segments with fresh flow
    /// populations. Higher `n` ⇒ more concurrent flows.
    pub segments: usize,
    /// Total packet budget across all segments.
    pub packets: usize,
    /// Trace duration in nanoseconds (the paper rescales to one second for
    /// the simulation experiments).
    pub duration_ns: u64,
    /// Flow count of the `n = 1` configuration; the population for other
    /// `n` is derived via [`FLOW_GROWTH_EXPONENT`].
    pub base_flows: usize,
    /// Zipf exponent of the flow-size distribution.
    pub zipf_alpha: f64,
    /// RNG seed; equal configs with equal seeds generate identical traces.
    pub seed: u64,
}

impl Default for CaidaConfig {
    fn default() -> Self {
        Self {
            segments: 1,
            packets: 500_000,
            duration_ns: 1_000_000_000,
            base_flows: 25_000,
            zipf_alpha: 1.0,
            seed: 0xCA1DA,
        }
    }
}

impl CaidaConfig {
    /// The standard scaled-down CAIDA_n used across the figure harnesses:
    /// `packets` total packets, flow population scaled to preserve the real
    /// trace's ≈20 packets-per-flow average, concurrency knob `n`.
    pub fn caida_n(n: usize, packets: usize, seed: u64) -> Self {
        Self {
            segments: n.max(1),
            packets,
            base_flows: (packets / 20).max(1),
            seed,
            ..Self::default()
        }
    }

    /// Total flows this configuration will generate (before rounding).
    pub fn total_flows(&self) -> usize {
        let n = self.segments as f64;
        ((self.base_flows as f64) * n.powf(FLOW_GROWTH_EXPONENT)).round() as usize
    }

    /// Generates the trace: packets sorted by timestamp.
    pub fn generate(&self) -> Trace {
        assert!(self.segments > 0, "need at least one segment");
        assert!(self.packets > 0, "need a positive packet budget");
        let seg_len = self.duration_ns / self.segments as u64;
        let flows_total = self.total_flows().max(self.segments);
        let flows_per_seg = (flows_total / self.segments).max(1);
        let packets_per_seg = (self.packets / self.segments).max(1);

        let mut packets = Vec::with_capacity(self.packets + self.packets / 8);
        for seg in 0..self.segments {
            let seg_start = seg as u64 * seg_len;
            let mut rng =
                SmallRng::seed_from_u64(p4lru_core::hashing::hash_u64(self.seed, seg as u64));
            self.generate_segment(
                &mut rng,
                seg as u64,
                seg_start,
                seg_len,
                flows_per_seg,
                packets_per_seg,
                &mut packets,
            );
        }
        packets.sort_by(Packet::time_order);
        Trace {
            packets,
            duration_ns: self.duration_ns,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_segment(
        &self,
        rng: &mut SmallRng,
        seg: u64,
        seg_start: u64,
        seg_len: u64,
        flows: usize,
        packet_budget: usize,
        out: &mut Vec<Packet>,
    ) {
        // Deterministic Zipf sizes: size_i = C / i^alpha, C chosen so the
        // segment total approximates the packet budget; every flow sends at
        // least one packet so the flow count is exact.
        let zipf = Zipf::new(flows as u64, self.zipf_alpha);
        let hn = zipf.normalization();
        let c = packet_budget as f64 / hn;
        for rank in 1..=flows as u64 {
            let size = ((c * zipf.weight(rank)).round() as usize).max(1);
            let flow_id = (seg << 32) | rank;
            let flow = FiveTuple::synthetic(flow_id);
            self.emit_flow(rng, flow, size, seg_start, seg_len, out);
        }
    }

    /// Emits one flow's packets: bursts inside an active window whose length
    /// grows with flow size (big flows span the segment, mice are compact).
    fn emit_flow(
        &self,
        rng: &mut SmallRng,
        flow: FiveTuple,
        size: usize,
        seg_start: u64,
        seg_len: u64,
        out: &mut Vec<Packet>,
    ) {
        // A flow *starts* inside its segment (segments model population
        // turnover, like splicing fresh one-minute populations) but lives
        // its natural lifetime, which scales with the full trace duration:
        // 1 - e^(-size/50) ⇒ a 20-packet flow lives ~1/3 of the trace, an
        // elephant essentially all of it. With more segments, fresh
        // populations start while earlier ones are still alive, so flow
        // concurrency rises with n — the paper's CAIDA_n knob.
        let frac = 1.0 - (-(size as f64) / 50.0).exp();
        let window = ((self.duration_ns as f64) * frac).max(10_000.0) as u64; // ≥10 µs
        let start = seg_start + rng.gen_range(0..seg_len.max(1));
        let end = (start + window)
            .min(self.duration_ns.saturating_sub(1))
            .max(start + 1);
        let span = end - start;

        // Bursts: geometric burst lengths (mean 4), ~10 µs intra-burst gaps,
        // exponential inter-burst gaps sized so the flow spans its window.
        let expected_bursts = (size as f64 / 4.0).max(1.0);
        let inter_gap_mean = span as f64 / expected_bursts;
        let mut t = start as f64;
        let mut emitted = 0usize;
        while emitted < size {
            let burst = burst_len(rng).min(size - emitted);
            for _ in 0..burst {
                // A burst may run past the window end; clamp rather than
                // spill past the trace boundary.
                let ts = (t as u64).min(end - 1);
                out.push(Packet {
                    ts_ns: ts,
                    flow,
                    len: packet_len(rng),
                });
                emitted += 1;
                t += exp_sample(rng, 10_000.0); // ~10 µs between packets
            }
            t += exp_sample(rng, inter_gap_mean);
            if t >= end as f64 {
                // Wrap the remainder uniformly into the window rather than
                // spilling past the trace end.
                t = start as f64 + rng.gen::<f64>() * span as f64;
            }
        }
    }
}

/// Geometric burst length with mean 4 (p = 0.25).
fn burst_len<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let mut len = 1usize;
    while rng.gen::<f64>() > 0.25 && len < 64 {
        len += 1;
    }
    len
}

/// Exponential sample with the given mean (ns).
fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Internet-mix packet length: ~half minimum-size ACKs, a tail of MTU-size
/// data packets.
fn packet_len<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    let x: f64 = rng.gen();
    if x < 0.5 {
        rng.gen_range(40..=100)
    } else if x < 0.7 {
        rng.gen_range(101..=1000)
    } else {
        1500
    }
}

/// A generated packet trace, time-sorted.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Packets sorted by [`Packet::time_order`].
    pub packets: Vec<Packet>,
    /// Nominal duration in nanoseconds.
    pub duration_ns: u64,
}

impl Trace {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterates the packets in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Number of distinct flows.
    pub fn flow_count(&self) -> usize {
        let mut flows: Vec<FiveTuple> = self.packets.iter().map(|p| p.flow).collect();
        flows.sort_unstable();
        flows.dedup();
        flows.len()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| u64::from(p.len)).sum()
    }

    /// Adapts the trace into a key-request stream for cache-service
    /// workloads: each packet becomes a read of its flow's key, mapped into
    /// `0..items` by the flow fingerprint. Preserves the trace's Zipf flow
    /// sizes and temporal locality, which is exactly what a forwarding-tier
    /// cache sees when keyed by flow.
    ///
    /// # Panics
    /// Panics if `items == 0`.
    pub fn key_ops(&self, items: u64) -> impl Iterator<Item = crate::ycsb::Op> + '_ {
        assert!(items > 0, "key space must be non-empty");
        self.packets
            .iter()
            .map(move |p| crate::ycsb::Op::Read(u64::from(p.flow.fingerprint(0x7EA1)) % items))
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ops_maps_flows_into_range() {
        let trace = CaidaConfig::caida_n(1, 5_000, 9).generate();
        let ops: Vec<crate::ycsb::Op> = trace.key_ops(1_000).collect();
        assert_eq!(ops.len(), trace.len());
        assert!(ops.iter().all(|o| o.key() < 1_000));
        assert!(ops.iter().all(|o| matches!(o, crate::ycsb::Op::Read(_))));
        // Same flow → same key: the adapter is a pure function of the flow.
        let again: Vec<crate::ycsb::Op> = trace.key_ops(1_000).collect();
        assert_eq!(ops, again);
    }

    #[test]
    fn generates_roughly_the_packet_budget() {
        let trace = CaidaConfig::caida_n(1, 50_000, 7).generate();
        let got = trace.len() as f64;
        assert!((got - 50_000.0).abs() / 50_000.0 < 0.25, "got {got}");
    }

    #[test]
    fn packets_are_time_sorted_within_duration() {
        let cfg = CaidaConfig::caida_n(4, 20_000, 3);
        let trace = cfg.generate();
        for w in trace.packets.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        assert!(trace.packets.iter().all(|p| p.ts_ns < cfg.duration_ns));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = CaidaConfig::caida_n(2, 10_000, 11).generate();
        let b = CaidaConfig::caida_n(2, 10_000, 11).generate();
        assert_eq!(a.packets, b.packets);
        let c = CaidaConfig::caida_n(2, 10_000, 12).generate();
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn flow_count_grows_with_segments() {
        let f1 = CaidaConfig::caida_n(1, 40_000, 5).generate().flow_count();
        let f16 = CaidaConfig::caida_n(16, 40_000, 5).generate().flow_count();
        assert!(f16 > f1, "flows n=16 ({f16}) should exceed n=1 ({f1})");
        // And sublinearly: nowhere near 16×.
        assert!(f16 < f1 * 4, "flows n=16 ({f16}) grew too fast vs {f1}");
    }

    #[test]
    fn flow_sizes_are_zipf_skewed() {
        let trace = CaidaConfig::caida_n(1, 100_000, 9).generate();
        let mut counts = std::collections::HashMap::new();
        for p in &trace {
            *counts.entry(p.flow).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let top100: usize = sizes.iter().take(100).sum();
        // With Zipf(1.0) over ~5000 flows, the top 100 flows carry a
        // disproportionate share (H_100/H_5000 ≈ 0.55 of traffic).
        let share = top100 as f64 / total as f64;
        assert!(share > 0.35, "top-100 share only {share:.3}");
    }

    #[test]
    fn flows_have_temporal_locality() {
        // Median gap between consecutive packets of the same flow must be
        // far below the trace duration (bursts!).
        let trace = CaidaConfig::caida_n(1, 50_000, 13).generate();
        let mut last_seen = std::collections::HashMap::new();
        let mut gaps = Vec::new();
        for p in &trace {
            if let Some(prev) = last_seen.insert(p.flow, p.ts_ns) {
                gaps.push(p.ts_ns - prev);
            }
        }
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(
            median < trace.duration_ns / 100,
            "median same-flow gap {median} ns is not bursty"
        );
    }

    #[test]
    fn total_flows_calibration_matches_paper_ratio() {
        // Paper: 1.3e6 → 2.4e6 over n = 1 → 60 (×1.85).
        let base = CaidaConfig {
            segments: 1,
            base_flows: 1_300_000,
            ..Default::default()
        };
        let n60 = CaidaConfig {
            segments: 60,
            base_flows: 1_300_000,
            ..Default::default()
        };
        let ratio = n60.total_flows() as f64 / base.total_flows() as f64;
        assert!((ratio - 1.85).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn every_flow_sends_at_least_one_packet() {
        let cfg = CaidaConfig::caida_n(2, 5_000, 21);
        let trace = cfg.generate();
        // Flow count equals the calibrated population (each rank emits ≥1).
        let expect = (cfg.total_flows() / cfg.segments) * cfg.segments;
        let got = trace.flow_count();
        assert!(
            (got as i64 - expect as i64).unsigned_abs() <= cfg.segments as u64,
            "got {got}, expect ≈{expect}"
        );
    }
}
