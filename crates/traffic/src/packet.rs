//! Packet and flow-identifier types.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// The classic 5-tuple flow identifier: ⟨source IP, source port,
/// destination IP, destination port, protocol⟩ (paper footnote 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FiveTuple {
    /// A deterministic synthetic tuple derived from a 64-bit flow id; flow
    /// ids map to distinct tuples (the id is recoverable from the fields).
    pub fn synthetic(flow_id: u64) -> Self {
        let h = p4lru_core::hashing::mix64(flow_id);
        Self {
            src_ip: (flow_id >> 32) as u32 ^ 0x0A00_0000, // 10.x.y.z-ish
            dst_ip: flow_id as u32,
            src_port: (h >> 16) as u16,
            dst_port: h as u16,
            proto: if h & 0x100 == 0 { 6 } else { 17 },
        }
    }

    /// A compact 32-bit fingerprint of the tuple under `seed` — what LruMon
    /// stores as the cache key (§3.3).
    pub fn fingerprint(&self, seed: u64) -> u32 {
        p4lru_core::hashing::hash_of(seed, self) as u32
    }
}

impl fmt::Debug for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}→{}:{}/{}",
            Ipv4Addr::from(self.src_ip),
            self.src_port,
            Ipv4Addr::from(self.dst_ip),
            self.dst_port,
            self.proto
        )
    }
}

/// One packet of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival timestamp in nanoseconds from trace start.
    pub ts_ns: u64,
    /// Flow identifier.
    pub flow: FiveTuple,
    /// Wire length in bytes.
    pub len: u16,
}

impl Packet {
    /// Orders packets by timestamp (ties broken by flow for determinism).
    pub fn time_order(a: &Packet, b: &Packet) -> std::cmp::Ordering {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then_with(|| a.flow.cmp(&b.flow))
            .then_with(|| a.len.cmp(&b.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tuples_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(FiveTuple::synthetic(id)), "collision at {id}");
        }
    }

    #[test]
    fn fingerprint_depends_on_seed() {
        let t = FiveTuple::synthetic(7);
        assert_ne!(t.fingerprint(1), t.fingerprint(2));
        assert_eq!(t.fingerprint(1), t.fingerprint(1));
    }

    #[test]
    fn debug_format_is_readable() {
        let t = FiveTuple {
            src_ip: 0x0A000001,
            dst_ip: 0x0A000002,
            src_port: 80,
            dst_port: 443,
            proto: 6,
        };
        assert_eq!(format!("{t:?}"), "10.0.0.1:80→10.0.0.2:443/6");
    }

    #[test]
    fn time_order_sorts_by_timestamp_first() {
        let a = Packet {
            ts_ns: 5,
            flow: FiveTuple::synthetic(1),
            len: 100,
        };
        let b = Packet {
            ts_ns: 3,
            flow: FiveTuple::synthetic(2),
            len: 100,
        };
        let mut v = [a, b];
        v.sort_by(Packet::time_order);
        assert_eq!(v[0].ts_ns, 3);
    }
}
