//! Trace statistics used to calibrate the synthetic generator against the
//! paper's quoted CAIDA numbers (flow counts, peak concurrency).

use std::collections::HashMap;

use crate::caida::Trace;
use crate::packet::FiveTuple;

/// Summary statistics of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Packet count.
    pub packets: usize,
    /// Distinct flows.
    pub flows: usize,
    /// Peak number of simultaneously active flows (a flow is active from its
    /// first to its last packet).
    pub max_concurrent: usize,
    /// Mean packets per flow.
    pub mean_flow_packets: f64,
    /// Fraction of packets carried by the largest 1% of flows.
    pub top1pct_share: f64,
    /// Total bytes.
    pub bytes: u64,
}

/// Computes [`TraceStats`] in O(P + F log F).
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let mut spans: HashMap<FiveTuple, (u64, u64, usize)> = HashMap::new();
    for p in trace {
        let e = spans.entry(p.flow).or_insert((p.ts_ns, p.ts_ns, 0));
        e.0 = e.0.min(p.ts_ns);
        e.1 = e.1.max(p.ts_ns);
        e.2 += 1;
    }
    let flows = spans.len();

    // Peak concurrency: sweep over (start, +1) / (end, −1) events; ends sort
    // after starts at the same instant so a point flow still counts once.
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(flows * 2);
    for &(s, e, _) in spans.values() {
        events.push((s, 1));
        events.push((e + 1, -1));
    }
    events.sort_unstable();
    let (mut cur, mut peak) = (0i64, 0i64);
    for (_, d) in events {
        cur += i64::from(d);
        peak = peak.max(cur);
    }

    let mut sizes: Vec<usize> = spans.values().map(|&(_, _, c)| c).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top = (flows / 100).max(1);
    let top_share = if trace.is_empty() {
        0.0
    } else {
        sizes.iter().take(top).sum::<usize>() as f64 / trace.len() as f64
    };

    TraceStats {
        packets: trace.len(),
        flows,
        max_concurrent: peak as usize,
        mean_flow_packets: if flows == 0 {
            0.0
        } else {
            trace.len() as f64 / flows as f64
        },
        top1pct_share: top_share,
        bytes: trace.total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caida::CaidaConfig;
    use crate::packet::Packet;

    fn mini_trace(packets: Vec<Packet>) -> Trace {
        let mut packets = packets;
        packets.sort_by(Packet::time_order);
        Trace {
            packets,
            duration_ns: 1_000,
        }
    }

    #[test]
    fn counts_flows_and_packets() {
        let f1 = FiveTuple::synthetic(1);
        let f2 = FiveTuple::synthetic(2);
        let t = mini_trace(vec![
            Packet {
                ts_ns: 0,
                flow: f1,
                len: 100,
            },
            Packet {
                ts_ns: 10,
                flow: f2,
                len: 100,
            },
            Packet {
                ts_ns: 20,
                flow: f1,
                len: 100,
            },
        ]);
        let s = trace_stats(&t);
        assert_eq!(s.packets, 3);
        assert_eq!(s.flows, 2);
        assert_eq!(s.bytes, 300);
        assert!((s.mean_flow_packets - 1.5).abs() < 1e-12);
    }

    #[test]
    fn concurrency_counts_overlapping_spans() {
        let f = |id| FiveTuple::synthetic(id);
        // f1 spans [0,30], f2 [10,20], f3 [40,50]: peak overlap is 2.
        let t = mini_trace(vec![
            Packet {
                ts_ns: 0,
                flow: f(1),
                len: 40,
            },
            Packet {
                ts_ns: 30,
                flow: f(1),
                len: 40,
            },
            Packet {
                ts_ns: 10,
                flow: f(2),
                len: 40,
            },
            Packet {
                ts_ns: 20,
                flow: f(2),
                len: 40,
            },
            Packet {
                ts_ns: 40,
                flow: f(3),
                len: 40,
            },
            Packet {
                ts_ns: 50,
                flow: f(3),
                len: 40,
            },
        ]);
        assert_eq!(trace_stats(&t).max_concurrent, 2);
    }

    #[test]
    fn single_packet_flows_count_as_concurrent_at_their_instant() {
        let f = |id| FiveTuple::synthetic(id);
        let t = mini_trace(vec![
            Packet {
                ts_ns: 5,
                flow: f(1),
                len: 40,
            },
            Packet {
                ts_ns: 5,
                flow: f(2),
                len: 40,
            },
        ]);
        assert_eq!(trace_stats(&t).max_concurrent, 2);
    }

    #[test]
    fn concurrency_grows_with_caida_n() {
        let s1 = trace_stats(&CaidaConfig::caida_n(1, 30_000, 2).generate());
        let s8 = trace_stats(&CaidaConfig::caida_n(8, 30_000, 2).generate());
        assert!(
            s8.max_concurrent > s1.max_concurrent,
            "concurrency n=8 ({}) should exceed n=1 ({})",
            s8.max_concurrent,
            s1.max_concurrent
        );
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = trace_stats(&Trace {
            packets: vec![],
            duration_ns: 0,
        });
        assert_eq!(s.packets, 0);
        assert_eq!(s.flows, 0);
        assert_eq!(s.max_concurrent, 0);
        assert_eq!(s.top1pct_share, 0.0);
    }

    #[test]
    fn top_share_reflects_skew() {
        let s = trace_stats(&CaidaConfig::caida_n(1, 60_000, 4).generate());
        assert!(s.top1pct_share > 0.15, "top-1% share {}", s.top1pct_share);
    }
}
