//! Zipf sampling by rejection inversion.
//!
//! Flow-size skew and key popularity in the evaluation both follow Zipf
//! laws (the YCSB transactions use α = 0.9, §4.1). This is the
//! rejection-inversion sampler of Hörmann & Derflinger ("Rejection-inversion
//! to get discrete distributions", 1996): O(1) expected time per sample and
//! no O(n) cumulative table, so sweeps over 10⁷-item databases stay cheap.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^(-s)`.
///
/// ```
/// use p4lru_traffic::zipf::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = Zipf::new(1_000_000, 0.9); // the paper's YCSB skew
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl Zipf {
    /// A Zipf(s) distribution over `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(
            s > 0.0 && s.is_finite(),
            "exponent must be positive and finite"
        );
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let shift = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            shift,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.shift || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }

    /// Exact probability of rank `k` (O(n) normalization on first call is
    /// avoided by returning the *unnormalized* weight; use
    /// [`Self::normalization`] when exact probabilities are needed).
    pub fn weight(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        (k as f64).powf(-self.s)
    }

    /// The normalization constant `H_{n,s} = Σ k^(-s)` (O(n)).
    pub fn normalization(&self) -> f64 {
        (1..=self.n).map(|k| (k as f64).powf(-self.s)).sum()
    }
}

/// `H(x) = ∫₁ˣ t^(-s) dt`, extended continuously across `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(-s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard from the reference implementation.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `(log(1+x))/x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x)-1)/x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(n: u64, s: f64, samples: usize, seed: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..samples {
            let k = zipf.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[k as usize] += 1;
        }
        counts
    }

    #[test]
    fn frequencies_match_theory_alpha_1() {
        let n = 100;
        let samples = 200_000;
        let counts = histogram(n, 1.0, samples, 1);
        let hn: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        for k in [1u64, 2, 5, 10, 50] {
            let expect = (1.0 / k as f64) / hn;
            let got = counts[k as usize] as f64 / samples as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "rank {k}: got {got:.4}, expect {expect:.4}");
        }
    }

    #[test]
    fn frequencies_match_theory_alpha_09() {
        // The YCSB skew used by the paper.
        let n = 1000;
        let samples = 300_000;
        let counts = histogram(n, 0.9, samples, 2);
        let hn: f64 = (1..=n).map(|k| (k as f64).powf(-0.9)).sum();
        for k in [1u64, 3, 10, 100] {
            let expect = (k as f64).powf(-0.9) / hn;
            let got = counts[k as usize] as f64 / samples as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.1, "rank {k}: got {got:.5}, expect {expect:.5}");
        }
    }

    #[test]
    fn monotone_nonincreasing_head() {
        let counts = histogram(50, 1.2, 100_000, 3);
        for k in 1..5 {
            assert!(
                counts[k] >= counts[k + 1],
                "rank {k} ({}) < rank {} ({})",
                counts[k],
                k + 1,
                counts[k + 1]
            );
        }
    }

    #[test]
    fn single_element_always_returns_one() {
        let zipf = Zipf::new(1, 0.9);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let zipf = Zipf::new(1000, 0.9);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..100).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn huge_n_does_not_allocate_tables() {
        // 10^9 ranks: would be 8 GB as a CDF table; rejection-inversion is O(1).
        let zipf = Zipf::new(1_000_000_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000_000_000).contains(&k));
        }
    }

    #[test]
    fn weight_and_normalization() {
        let zipf = Zipf::new(10, 1.0);
        assert!((zipf.weight(1) - 1.0).abs() < 1e-12);
        assert!((zipf.weight(2) - 0.5).abs() < 1e-12);
        let hn: f64 = (1..=10).map(|k| 1.0 / k as f64).sum();
        assert!((zipf.normalization() - hn).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_n_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_exponent_rejected() {
        let _ = Zipf::new(10, 0.0);
    }
}
