//! The LruTable system driver: data-plane cache + control-plane table +
//! pending-completion machinery, measured over a packet trace.

use std::collections::VecDeque;

use p4lru_core::array::MemoryModel;
use p4lru_core::metrics::{MissStats, SimilarityTracker};
use p4lru_core::policies::{build_cache, merge_keep, merge_replace, Access, Cache, PolicyKind};
use p4lru_netsim::stats::OnlineStats;
use p4lru_traffic::caida::Trace;

use crate::nat::NatTable;

/// The placeholder written on a miss while the control plane resolves the
/// address (the paper suggests 0x00000000 or 0xFFFFFFFF).
pub const PLACEHOLDER: u32 = u32::MAX;

/// Configuration of one LruTable run.
#[derive(Clone, Debug)]
pub struct LruTableConfig {
    /// Replacement policy of the data-plane cache.
    pub policy: PolicyKind,
    /// Data-plane memory budget in bytes.
    pub memory_bytes: usize,
    /// Slow-path (control-plane) latency ΔT in nanoseconds.
    pub slow_path_ns: u64,
    /// Base forwarding latency (both paths pay it).
    pub base_forward_ns: u64,
    /// Seed for hashing and the NAT table.
    pub seed: u64,
    /// Also compute LRU similarity (adds shadow-tracking cost).
    pub track_similarity: bool,
}

impl Default for LruTableConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::P4Lru3,
            memory_bytes: 64 * 1024,
            slow_path_ns: 50_000, // 50 µs control-plane round trip
            base_forward_ns: 1_000,
            seed: 0x7AB1E,
            track_similarity: false,
        }
    }
}

/// Measured results of a run.
#[derive(Clone, Debug)]
pub struct LruTableReport {
    /// Policy label.
    pub policy: &'static str,
    /// Cache hit/miss bookkeeping (client packets only).
    pub stats: MissStats,
    /// Packets translated on the fast path.
    pub fast_path: u64,
    /// Packets that needed the control plane (miss or placeholder hit).
    pub slow_path: u64,
    /// Fraction of packets taking the slow path — the paper's "miss rate".
    pub slow_rate: f64,
    /// Mean per-packet latency added over direct forwarding, ns (Fig. 9b).
    pub mean_added_latency_ns: f64,
    /// LRU similarity, if tracked (Fig. 15b/15d).
    pub similarity: Option<f64>,
    /// Cache entry capacity actually built.
    pub cache_entries: usize,
}

/// The LruTable system.
pub struct LruTable {
    config: LruTableConfig,
    cache: Box<dyn Cache<u32, u32>>,
    nat: NatTable,
    /// In-flight control-plane resolutions: (ready_time, va).
    pending: VecDeque<(u64, u32)>,
    tracker: Option<SimilarityTracker<u32>>,
}

impl LruTable {
    /// Builds the system per `config`.
    pub fn new(config: LruTableConfig) -> Self {
        let cache = build_cache(
            config.policy,
            config.memory_bytes,
            MemoryModel::fp32_len32(),
            config.seed,
        );
        let tracker = config
            .track_similarity
            .then(|| SimilarityTracker::new(cache.capacity()));
        Self {
            nat: NatTable::new(config.seed ^ 0xA7),
            pending: VecDeque::new(),
            cache,
            config,
            tracker,
        }
    }

    /// Virtual address of a packet: a stable nonzero 32-bit id of its flow.
    fn virtual_address(&self, flow: &p4lru_traffic::packet::FiveTuple) -> u32 {
        match flow.fingerprint(self.config.seed ^ 0x7A) {
            0 => 1,
            PLACEHOLDER => PLACEHOLDER - 1,
            va => va,
        }
    }

    /// Applies control-plane completions that are ready by `now`.
    fn drain_pending(&mut self, now: u64) {
        while let Some(&(ready, va)) = self.pending.front() {
            if ready > now {
                break;
            }
            self.pending.pop_front();
            let ra = self.nat.lookup(va);
            // The completion packet re-traverses the data plane: a full
            // cache access replacing the placeholder (and refreshing
            // recency). If the entry was evicted meanwhile it is
            // re-admitted, as on hardware.
            let out = self.cache.access(va, ra, now, merge_replace);
            if let Some(t) = &mut self.tracker {
                t.observe(&va, &out);
            }
        }
    }

    /// Processes one packet; returns `(fast_path, latency_ns)`.
    pub fn process(&mut self, va: u32, now: u64) -> (bool, u64) {
        self.drain_pending(now);
        // Client packets carry no value: on a hit the cached value is kept,
        // on a miss a placeholder is admitted.
        let out = self.cache.access(va, PLACEHOLDER, now, merge_keep);
        if let Some(t) = &mut self.tracker {
            t.observe(&va, &out);
        }
        let (fast, schedule) = match &out {
            Access::Hit => {
                let fast = self.cache.peek(&va) != Some(&PLACEHOLDER);
                // A placeholder hit still needs the control plane but does
                // NOT re-update the cache (§3.1: "it won't process through
                // the data plane cache again").
                (fast, false)
            }
            Access::Miss { inserted, .. } => (false, *inserted),
        };
        if schedule {
            self.pending.push_back((now + self.config.slow_path_ns, va));
        }
        let latency = self.config.base_forward_ns + if fast { 0 } else { self.config.slow_path_ns };
        (fast, latency)
    }

    /// Replays a trace and reports the paper's metrics; `stats` counts only
    /// client packets.
    pub fn run_trace(mut self, trace: &Trace) -> LruTableReport {
        let mut stats = MissStats::default();
        let mut latency = OnlineStats::new();
        let (mut fast_path, mut slow_path) = (0u64, 0u64);
        for pkt in trace {
            let va = self.virtual_address(&pkt.flow);
            // Count hit/miss from the cache's perspective: a placeholder hit
            // is a cache hit structurally but a *fast-path miss*
            // functionally; both views are reported.
            let before_pending = self.pending.len();
            let (fast, lat) = self.process(va, pkt.ts_ns);
            let inserted_pending = self.pending.len() > before_pending;
            if fast {
                fast_path += 1;
                stats.record::<u32, u32>(&Access::Hit);
            } else {
                slow_path += 1;
                stats.record::<u32, u32>(&Access::Miss {
                    evicted: None,
                    inserted: inserted_pending,
                });
            }
            latency.push(lat as f64 - self.config.base_forward_ns as f64);
        }
        let total = fast_path + slow_path;
        LruTableReport {
            policy: self.config.policy.label(),
            stats,
            fast_path,
            slow_path,
            slow_rate: if total == 0 {
                0.0
            } else {
                slow_path as f64 / total as f64
            },
            mean_added_latency_ns: latency.mean(),
            similarity: self.tracker.as_ref().map(|t| t.similarity()),
            cache_entries: self.cache.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4lru_traffic::caida::CaidaConfig;

    fn small_trace(n: usize, seed: u64) -> Trace {
        CaidaConfig::caida_n(1, n, seed).generate()
    }

    #[test]
    fn repeated_address_becomes_fast_after_resolution() {
        let mut sys = LruTable::new(LruTableConfig {
            slow_path_ns: 1_000,
            ..Default::default()
        });
        // First packet: slow (miss), schedules resolution.
        let (fast, lat) = sys.process(42, 0);
        assert!(!fast);
        assert_eq!(lat, 1_000 + 1_000);
        // Second packet before resolution: placeholder hit → still slow,
        // but does not schedule again.
        let (fast, _) = sys.process(42, 500);
        assert!(!fast);
        assert_eq!(sys.pending.len(), 1);
        // After ΔT the completion lands: fast path.
        let (fast, lat) = sys.process(42, 2_000);
        assert!(fast);
        assert_eq!(lat, 1_000);
    }

    #[test]
    fn distinct_addresses_all_slow_initially() {
        let mut sys = LruTable::new(LruTableConfig::default());
        for va in 1..50u32 {
            let (fast, _) = sys.process(va, u64::from(va) * 10);
            assert!(!fast, "va {va} unexpectedly fast");
        }
    }

    #[test]
    fn p4lru3_beats_baseline_on_miss_rate() {
        let trace = small_trace(60_000, 11);
        let run = |policy| {
            LruTable::new(LruTableConfig {
                policy,
                memory_bytes: 6_000,
                ..Default::default()
            })
            .run_trace(&trace)
        };
        let p3 = run(PolicyKind::P4Lru3);
        let p1 = run(PolicyKind::P4Lru1);
        assert!(
            p3.slow_rate < p1.slow_rate,
            "P4LRU3 {:.4} should beat baseline {:.4} (Figure 9a)",
            p3.slow_rate,
            p1.slow_rate
        );
    }

    #[test]
    fn miss_rate_rises_with_concurrency() {
        // Figure 9a's x-axis: CAIDA_n concurrency.
        let run = |n| {
            let trace = CaidaConfig::caida_n(n, 40_000, 5).generate();
            LruTable::new(LruTableConfig {
                memory_bytes: 4_000,
                ..Default::default()
            })
            .run_trace(&trace)
            .slow_rate
        };
        let low = run(1);
        let high = run(16);
        assert!(
            high > low,
            "miss rate {low:.4} → {high:.4} should rise with n"
        );
    }

    #[test]
    fn added_latency_tracks_slow_rate_times_delta_t() {
        let trace = small_trace(20_000, 3);
        let report = LruTable::new(LruTableConfig {
            slow_path_ns: 10_000,
            ..Default::default()
        })
        .run_trace(&trace);
        let predicted = report.slow_rate * 10_000.0;
        let got = report.mean_added_latency_ns;
        assert!(
            (got - predicted).abs() < 1.0,
            "mean added latency {got} vs slow_rate·ΔT {predicted}"
        );
    }

    #[test]
    fn longer_delta_t_increases_miss_rate() {
        // Figure 12b: pending placeholders linger longer.
        let trace = small_trace(40_000, 7);
        let run = |dt| {
            LruTable::new(LruTableConfig {
                slow_path_ns: dt,
                memory_bytes: 8_000,
                ..Default::default()
            })
            .run_trace(&trace)
            .slow_rate
        };
        let short = run(1_000);
        let long = run(20_000_000); // 20 ms
        assert!(
            long > short,
            "slow rate {short:.4} → {long:.4} should rise with ΔT"
        );
    }

    #[test]
    fn similarity_tracked_when_requested() {
        let trace = small_trace(20_000, 9);
        let report = LruTable::new(LruTableConfig {
            track_similarity: true,
            memory_bytes: 4_000,
            ..Default::default()
        })
        .run_trace(&trace);
        let sim = report.similarity.expect("similarity requested");
        assert!(sim > 0.0 && sim <= 1.0, "similarity {sim}");
    }

    #[test]
    fn ideal_policy_has_lowest_miss_rate() {
        let trace = small_trace(40_000, 13);
        let run = |policy| {
            LruTable::new(LruTableConfig {
                policy,
                memory_bytes: 6_000,
                ..Default::default()
            })
            .run_trace(&trace)
            .slow_rate
        };
        let ideal = run(PolicyKind::Ideal);
        for p in [PolicyKind::P4Lru1, PolicyKind::P4Lru3, PolicyKind::Coco] {
            let r = run(p);
            assert!(
                ideal <= r + 0.01,
                "{}: {:.4} beat ideal {:.4}",
                p.label(),
                r,
                ideal
            );
        }
    }
}
