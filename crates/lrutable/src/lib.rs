//! # p4lru-lrutable
//!
//! **LruTable** (paper §3.1): a data-plane NAT system. The full
//! virtual-to-real address table lives in control-plane memory; the data
//! plane caches hot translations in an array of P4LRU3 units.
//!
//! Per packet with virtual address `va`:
//!
//! * **fast path** — cache hit with a real address: translate inline;
//! * **slow path** — miss (or a hit on a placeholder): the cache state is
//!   updated, a placeholder is written, and the packet consults the control
//!   plane (latency ΔT). The answer re-traverses the data plane, replacing
//!   the placeholder with the real address — *if* the entry survived that
//!   long.
//!
//! The in-flight window is what makes the slow-path latency ΔT affect the
//! miss rate (Figures 12b/15c): while a translation is pending, packets of
//! the same flow keep hitting the placeholder and paying ΔT.
//!
//! The replacement policy is pluggable ([`PolicyKind`]) so the same driver
//! produces the comparative (Fig. 12) and parameter (Fig. 15) sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nat;
pub mod system;

pub use nat::NatTable;
pub use p4lru_core::policies::PolicyKind;
pub use system::{LruTable, LruTableConfig, LruTableReport};
