//! The control-plane NAT table: the authoritative virtual → real mapping.

use std::collections::HashMap;

/// Authoritative address translations, held in control-plane memory.
///
/// Mappings are materialized deterministically on first use (the testbed
/// preloads its table; the exact real addresses are irrelevant to the
/// experiments as long as they are stable and nonzero).
#[derive(Clone, Debug)]
pub struct NatTable {
    map: HashMap<u32, u32>,
    seed: u64,
    lookups: u64,
}

impl NatTable {
    /// An empty table deriving mappings from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            map: HashMap::new(),
            seed,
            lookups: 0,
        }
    }

    /// Full-table lookup (the slow path). Deterministic per (seed, va);
    /// never returns 0 or the placeholder.
    pub fn lookup(&mut self, va: u32) -> u32 {
        self.lookups += 1;
        let seed = self.seed;
        *self.map.entry(va).or_insert_with(|| {
            let h = p4lru_core::hashing::hash_u64(seed, u64::from(va)) as u32;
            match h {
                0 => 1,
                u32::MAX => u32::MAX - 1,
                v => v,
            }
        })
    }

    /// Read-only lookup of an already-materialized mapping.
    pub fn peek(&self, va: u32) -> Option<u32> {
        self.map.get(&va).copied()
    }

    /// Number of slow-path lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of materialized entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_stable_and_nonzero() {
        let mut t = NatTable::new(7);
        let a = t.lookup(100);
        assert_eq!(t.lookup(100), a);
        assert_ne!(a, 0);
        assert_ne!(a, u32::MAX);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookups(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NatTable::new(1);
        let mut b = NatTable::new(2);
        let same = (0..100u32)
            .filter(|&va| a.lookup(va) == b.lookup(va))
            .count();
        assert!(same < 3);
    }

    #[test]
    fn peek_does_not_materialize() {
        let mut t = NatTable::new(3);
        assert_eq!(t.peek(5), None);
        let ra = t.lookup(5);
        assert_eq!(t.peek(5), Some(ra));
    }
}
