//! Property tests for the LruTable system: conservation, determinism and
//! protocol safety for arbitrary traces and configurations.

use proptest::prelude::*;

use p4lru_core::policies::PolicyKind;
use p4lru_lrutable::{LruTable, LruTableConfig, NatTable};
use p4lru_traffic::caida::CaidaConfig;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Ideal),
        Just(PolicyKind::P4Lru1),
        Just(PolicyKind::P4Lru2),
        Just(PolicyKind::P4Lru3),
        Just(PolicyKind::P4Lru4),
        (1u64..100_000_000).prop_map(|t| PolicyKind::Timeout { timeout_ns: t }),
        Just(PolicyKind::Elastic),
        Just(PolicyKind::Coco),
        Just(PolicyKind::Slru),
        Just(PolicyKind::Arc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_bounds(
        policy in any_policy(),
        memory in 2_000usize..40_000,
        dt in 1_000u64..10_000_000,
        packets in 2_000usize..20_000,
        seed in any::<u64>(),
    ) {
        let trace = CaidaConfig::caida_n(2, packets, seed).generate();
        let report = LruTable::new(LruTableConfig {
            policy,
            memory_bytes: memory,
            slow_path_ns: dt,
            track_similarity: true,
            ..Default::default()
        })
        .run_trace(&trace);
        // Every packet goes exactly one way.
        prop_assert_eq!(report.fast_path + report.slow_path, trace.len() as u64);
        prop_assert!(report.slow_rate >= 0.0 && report.slow_rate <= 1.0);
        // Added latency is bounded by ΔT (it is slow_rate · ΔT).
        prop_assert!(report.mean_added_latency_ns <= dt as f64 + 1e-9);
        let sim = report.similarity.unwrap();
        prop_assert!(sim > 0.0 && sim <= 1.0, "similarity {}", sim);
    }

    #[test]
    fn deterministic_for_any_config(
        policy in any_policy(),
        seed in any::<u64>(),
    ) {
        let trace = CaidaConfig::caida_n(2, 5_000, seed).generate();
        let run = || {
            let r = LruTable::new(LruTableConfig {
                policy,
                memory_bytes: 4_000,
                seed,
                ..Default::default()
            })
            .run_trace(&trace);
            (r.fast_path, r.slow_path, r.stats.evictions)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn nat_lookup_is_a_pure_function(seed in any::<u64>(), vas in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut a = NatTable::new(seed);
        let mut b = NatTable::new(seed);
        for &va in &vas {
            prop_assert_eq!(a.lookup(va), b.lookup(va));
        }
        // Re-lookup returns the materialized value.
        for &va in &vas {
            let want = a.peek(va).unwrap();
            prop_assert_eq!(a.lookup(va), want);
        }
    }

    #[test]
    fn first_packet_of_every_flow_is_slow(seed in any::<u64>()) {
        let trace = CaidaConfig::caida_n(1, 4_000, seed).generate();
        let mut sys = LruTable::new(LruTableConfig {
            memory_bytes: 100_000, // ample: no capacity evictions
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for pkt in &trace {
            let va = pkt.flow.fingerprint(7) | 1;
            let (fast, _) = sys.process(va, pkt.ts_ns);
            if seen.insert(va) {
                prop_assert!(!fast, "first access of {va} cannot be fast");
            }
        }
    }
}
