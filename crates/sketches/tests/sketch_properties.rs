//! Property tests: the one invariant every LruMon filter must uphold is
//! *no under-estimation within a reset interval* — otherwise elephants
//! would be mis-filtered and the telemetry would silently lose bytes.

use proptest::prelude::*;
use std::collections::HashMap;

use p4lru_sketches::{CocoSketch, CountMin, CuSketch, ElasticSketch, FlowFilter, TowerSketch};

fn packets_strategy() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..200, 40u32..1500), 1..800)
}

fn assert_no_underestimate(
    filter: &mut dyn FlowFilter,
    packets: &[(u64, u32)],
    saturation_cap: u64,
) -> Result<(), TestCaseError> {
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for &(flow, len) in packets {
        *truth.entry(flow).or_insert(0) += u64::from(len);
        filter.add(flow, len, 0);
    }
    for (&flow, &want) in &truth {
        let est = filter.estimate(flow, 0);
        prop_assert!(
            est >= want.min(saturation_cap),
            "{}: flow {} estimated {} < true {}",
            filter.name(),
            flow,
            est,
            want
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tower_never_underestimates(packets in packets_strategy(), seed in any::<u64>()) {
        let mut t = TowerSketch::new(vec![(256, 8), (128, 16)], 1_000_000_000, seed);
        // The widest row saturates at 65535.
        assert_no_underestimate(&mut t, &packets, 65_535)?;
    }

    #[test]
    fn cm_and_cu_never_underestimate(packets in packets_strategy(), seed in any::<u64>()) {
        let mut cm = CountMin::new(2, 128, 32, 1_000_000_000, seed);
        assert_no_underestimate(&mut cm, &packets, u64::from(u32::MAX))?;
        let mut cu = CuSketch::new(2, 128, 32, 1_000_000_000, seed);
        assert_no_underestimate(&mut cu, &packets, u64::from(u32::MAX))?;
    }

    #[test]
    fn elastic_never_underestimates(packets in packets_strategy(), seed in any::<u64>()) {
        let mut e = ElasticSketch::new(64, 256, 1_000_000_000, seed);
        assert_no_underestimate(&mut e, &packets, u64::from(u32::MAX))?;
    }

    #[test]
    fn cu_dominated_by_cm(packets in packets_strategy(), seed in any::<u64>()) {
        // Conservative update can only lower over-estimation.
        let mut cm = CountMin::new(2, 64, 32, 1_000_000_000, seed);
        let mut cu = CuSketch::new(2, 64, 32, 1_000_000_000, seed);
        for &(flow, len) in &packets {
            cm.add(flow, len, 0);
            cu.add(flow, len, 0);
        }
        for &(flow, _) in &packets {
            prop_assert!(cu.estimate(flow, 0) <= cm.estimate(flow, 0));
        }
    }

    #[test]
    fn resets_clear_every_filter(seed in any::<u64>(), flow in any::<u64>()) {
        let reset = 1_000_000u64;
        let mut filters: Vec<Box<dyn FlowFilter>> = vec![
            Box::new(TowerSketch::new(vec![(64, 8), (32, 16)], reset, seed)),
            Box::new(CountMin::new(2, 64, 32, reset, seed)),
            Box::new(CuSketch::new(2, 64, 32, reset, seed)),
            Box::new(ElasticSketch::new(16, 64, reset, seed)),
            Box::new(CocoSketch::new(32, reset, seed)),
        ];
        for f in &mut filters {
            f.add(flow, 1_000, 0);
            prop_assert!(f.estimate(flow, 0) >= 1_000, "{} lost bytes", f.name());
            prop_assert_eq!(f.estimate(flow, reset + 1), 0, "{} kept stale bytes", f.name());
        }
    }
}
