//! The flow-filter interface LruMon plugs sketches into.

/// A byte-count estimator over flows with periodic per-counter resets.
///
/// Flows are identified by a 64-bit hash (the caller hashes its 5-tuple);
/// implementations derive per-row indices from it with independent seeds.
pub trait FlowFilter {
    /// Credits `len` bytes to `flow` at absolute time `now_ns` and returns
    /// the *estimated* byte count of the flow in the current reset interval
    /// (including this packet). Estimates never under-count within an
    /// interval.
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64;

    /// Read-only estimate at `now_ns` (counters whose epoch expired read 0).
    fn estimate(&self, flow: u64, now_ns: u64) -> u64;

    /// Memory footprint in bytes (counters + epoch stamps), for
    /// equal-memory comparisons.
    fn memory_bytes(&self) -> usize;

    /// Label used in figure output.
    fn name(&self) -> &'static str;
}

/// Epoch number of `now_ns` under a reset period (8-bit wrap, like the
/// paper's 8-bit timestamps).
#[inline]
pub fn epoch_of(now_ns: u64, reset_ns: u64) -> u8 {
    ((now_ns / reset_ns) & 0xFF) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances_per_period_and_wraps() {
        assert_eq!(epoch_of(0, 1000), 0);
        assert_eq!(epoch_of(999, 1000), 0);
        assert_eq!(epoch_of(1000, 1000), 1);
        assert_eq!(epoch_of(256_000, 1000), 0); // 8-bit wrap
    }
}
