//! CocoSketch: unbiased key/count replacement in a single array.
//!
//! Each bucket holds one `(key, count)` pair. Every packet adds its bytes to
//! the bucket count; a colliding key takes the bucket over with probability
//! `len / count`, which makes the per-key estimate *unbiased* (CocoSketch's
//! core property). The cache-policy form lives in
//! `p4lru_core::policies::CocoCache`; this is the measuring sketch.

use crate::filter::{epoch_of, FlowFilter};

#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    key: u64,
    count: u64,
    occupied: bool,
    epoch: u8,
}

/// Single-array CocoSketch with periodic resets.
#[derive(Clone, Debug)]
pub struct CocoSketch {
    buckets: Vec<Bucket>,
    seed: u64,
    reset_ns: u64,
    /// Deterministic coin-flip state (splitmix walk).
    rng_state: u64,
}

impl CocoSketch {
    /// `buckets` buckets, reset every `reset_ns`.
    ///
    /// # Panics
    /// Panics on zero sizes or period.
    pub fn new(buckets: usize, reset_ns: u64, seed: u64) -> Self {
        assert!(buckets > 0, "needs buckets");
        assert!(reset_ns > 0, "reset period must be positive");
        Self {
            buckets: vec![Bucket::default(); buckets],
            seed,
            reset_ns,
            rng_state: p4lru_core::hashing::mix64(seed ^ 0xC0C0_5EED),
        }
    }

    fn index(&self, flow: u64) -> usize {
        let h = p4lru_core::hashing::hash_u64(self.seed, flow);
        (((u128::from(h)) * (self.buckets.len() as u128)) >> 64) as usize
    }

    fn coin(&mut self, num: u64, den: u64) -> bool {
        self.rng_state = p4lru_core::hashing::mix64(self.rng_state);
        den > 0 && (self.rng_state % den) < num
    }
}

impl FlowFilter for CocoSketch {
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64 {
        let i = self.index(flow);
        let e = epoch_of(now_ns, self.reset_ns);
        if self.buckets[i].epoch != e {
            self.buckets[i] = Bucket {
                epoch: e,
                ..Bucket::default()
            };
        }
        let len64 = u64::from(len);
        if !self.buckets[i].occupied {
            self.buckets[i] = Bucket {
                key: flow,
                count: len64,
                occupied: true,
                epoch: e,
            };
            return len64;
        }
        self.buckets[i].count += len64;
        let count = self.buckets[i].count;
        if self.buckets[i].key == flow {
            count
        } else if self.coin(len64, count) {
            self.buckets[i].key = flow;
            count
        } else {
            0
        }
    }

    fn estimate(&self, flow: u64, now_ns: u64) -> u64 {
        let i = self.index(flow);
        let b = &self.buckets[i];
        if b.epoch == epoch_of(now_ns, self.reset_ns) && b.occupied && b.key == flow {
            b.count
        } else {
            0
        }
    }

    fn memory_bytes(&self) -> usize {
        self.buckets.len() * 17 // 8B key + 8B count + 1B epoch
    }

    fn name(&self) -> &'static str {
        "Coco"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_flow_exact() {
        let mut c = CocoSketch::new(16, 10_000_000, 1);
        for _ in 0..4 {
            c.add(9, 250, 0);
        }
        assert_eq!(c.estimate(9, 0), 1000);
    }

    #[test]
    fn estimates_are_unbiased_over_seeds() {
        // Two colliding flows, A with 900 bytes and B with 100: the expected
        // estimate of each equals its true size when averaged over runs.
        let trials = 2000;
        let (mut sum_a, mut sum_b) = (0u64, 0u64);
        for seed in 0..trials {
            let mut c = CocoSketch::new(1, 10_000_000, seed);
            let mut x = seed;
            for _ in 0..100 {
                x = p4lru_core::hashing::mix64(x);
                let flow = if x % 10 == 0 { 2 } else { 1 };
                c.add(flow, 10, 0);
            }
            sum_a += c.estimate(1, 0);
            sum_b += c.estimate(2, 0);
        }
        let mean_a = sum_a as f64 / trials as f64;
        let mean_b = sum_b as f64 / trials as f64;
        assert!((mean_a - 900.0).abs() < 60.0, "E[A] = {mean_a}");
        assert!((mean_b - 100.0).abs() < 40.0, "E[B] = {mean_b}");
    }

    #[test]
    fn reset_clears() {
        let mut c = CocoSketch::new(8, 1_000_000, 2);
        c.add(5, 400, 0);
        assert_eq!(c.estimate(5, 1_000_001), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut c = CocoSketch::new(4, 10_000_000, seed);
            let mut out = Vec::new();
            let mut x = 7u64;
            for _ in 0..500 {
                x = p4lru_core::hashing::mix64(x);
                out.push(c.add(x % 20, 100, 0));
            }
            out
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
