//! # p4lru-sketches
//!
//! Data-plane sketches used by LruMon (paper §3.3) and the comparison
//! baselines.
//!
//! LruMon's front stage is a *mouse-flow filter*: a sketch of periodically
//! reset counters estimates each flow's bytes in the current interval, and
//! only flows crossing a threshold `L` proceed to the P4LRU cache. The
//! paper deploys the TowerSketch and notes CM and approximate-CU filters as
//! drop-in alternatives — all three live here behind the
//! [`filter::FlowFilter`] trait:
//!
//! * [`tower::TowerSketch`] — rows of different counter widths (8-bit and
//!   16-bit by default); saturated counters are treated as ∞ in the min;
//! * [`cm::CountMin`] — classic d×w Count-Min;
//! * [`cm::CuSketch`] — conservative update: only minimal counters grow;
//! * [`elastic::ElasticSketch`] — heavy part (per-bucket incumbent with
//!   votes) backed by a CM light part;
//! * [`coco::CocoSketch`] — single-array unbiased key/count replacement.
//!
//! Every counter carries an 8-bit epoch stamp for the millisecond-scale
//! periodic resets the paper describes, implemented lazily (a counter is
//! zeroed when first touched in a new epoch), which is exactly how the
//! switch implements it without a scanning thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cm;
pub mod coco;
pub mod elastic;
pub mod filter;
pub mod row;
pub mod tower;

pub use cm::{CountMin, CuSketch};
pub use coco::CocoSketch;
pub use elastic::ElasticSketch;
pub use filter::FlowFilter;
pub use tower::TowerSketch;
