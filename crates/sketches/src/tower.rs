//! TowerSketch: counter rows of increasing width and decreasing count.
//!
//! The paper's LruMon configuration (§3.3): `C₁` has 2²⁰ 8-bit counters,
//! `C₂` has 2¹⁹ 16-bit counters; the estimate is the minimum over
//! *non-saturated* counters (a saturated narrow counter reads as ∞ — the
//! tower property that lets 8-bit counters coexist with elephant flows).

use crate::filter::FlowFilter;
use crate::row::ResettableRow;

/// A TowerSketch over periodically-reset rows.
///
/// ```
/// use p4lru_sketches::{FlowFilter, TowerSketch};
///
/// let mut tower = TowerSketch::paper_shape(4, 10_000_000, 1); // 10 ms resets
/// let est = tower.add(0xF10, 1500, 0);
/// assert!(est >= 1500);          // never under-counts in an interval
/// assert_eq!(tower.estimate(0xF10, 10_000_001), 0); // next interval: reset
/// ```
#[derive(Clone, Debug)]
pub struct TowerSketch {
    rows: Vec<ResettableRow>,
}

impl TowerSketch {
    /// The paper's LruMon shape scaled by `scale` (1 = 2²⁰ + 2¹⁹ counters):
    /// row 1 is 8-bit, row 2 is 16-bit, half the length.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn paper_shape(scale: usize, reset_ns: u64, seed: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        let r1 = (scale << 10).max(8); // scale × 1024 8-bit counters
        let r2 = (r1 / 2).max(4); // half as many 16-bit counters
        Self::new(vec![(r1, 8), (r2, 16)], reset_ns, seed)
    }

    /// A tower with explicit `(len, width_bits)` rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty.
    pub fn new(rows: Vec<(usize, u8)>, reset_ns: u64, seed: u64) -> Self {
        assert!(!rows.is_empty(), "tower needs at least one row");
        Self {
            rows: rows
                .into_iter()
                .enumerate()
                .map(|(i, (len, bits))| {
                    ResettableRow::new(
                        len,
                        bits,
                        reset_ns,
                        p4lru_core::hashing::hash_u64(seed, i as u64),
                    )
                })
                .collect(),
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl FlowFilter for TowerSketch {
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64 {
        let mut est = u64::MAX;
        for row in &mut self.rows {
            let v = row.add(flow, len, now_ns);
            if v < row.saturation() {
                est = est.min(u64::from(v));
            }
        }
        if est == u64::MAX {
            // Every row saturated: report the widest row's saturation value
            // (the best lower bound available).
            self.rows
                .iter()
                .map(|r| u64::from(r.saturation()))
                .max()
                .expect("tower has rows")
        } else {
            est
        }
    }

    fn estimate(&self, flow: u64, now_ns: u64) -> u64 {
        let mut est = u64::MAX;
        for row in &self.rows {
            let v = row.read(flow, now_ns);
            if v < row.saturation() {
                est = est.min(u64::from(v));
            }
        }
        if est == u64::MAX {
            self.rows
                .iter()
                .map(|r| u64::from(r.saturation()))
                .max()
                .unwrap_or(0)
        } else {
            est
        }
    }

    fn memory_bytes(&self) -> usize {
        self.rows.iter().map(ResettableRow::memory_bytes).sum()
    }

    fn name(&self) -> &'static str {
        "Tower"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tower() -> TowerSketch {
        TowerSketch::new(vec![(1024, 8), (512, 16)], 10_000_000, 1)
    }

    #[test]
    fn never_underestimates_within_epoch() {
        let mut t = small_tower();
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..5000 {
            x = p4lru_core::hashing::mix64(x);
            let flow = x % 300;
            let len = (x >> 8) as u32 % 200 + 40;
            *truth.entry(flow).or_insert(0u64) += u64::from(len);
            let est = t.add(flow, len, 0);
            let want = truth[&flow];
            // Tower estimates: ≥ truth unless clamped by full saturation.
            assert!(
                est >= want.min(65_535),
                "flow {flow}: est {est} < truth {want}"
            );
        }
    }

    #[test]
    fn narrow_row_saturation_defers_to_wide_row() {
        let mut t = TowerSketch::new(vec![(4, 8), (4, 16)], 10_000_000, 2);
        // Single flow: drive past the 8-bit cap; the 16-bit row answers.
        let mut last = 0;
        for _ in 0..10 {
            last = t.add(9, 100, 0);
        }
        assert_eq!(last, 1000);
        assert!(last > 255, "estimate stuck at the 8-bit cap");
    }

    #[test]
    fn reset_period_clears_estimates() {
        let mut t = small_tower();
        t.add(5, 1000, 0);
        assert!(t.estimate(5, 0) >= 1000);
        // Next epoch (reset 10 ms): estimate reads 0.
        assert_eq!(t.estimate(5, 10_000_001), 0);
        assert_eq!(t.add(5, 100, 10_000_001), 100);
    }

    #[test]
    fn paper_shape_has_two_rows_with_expected_memory() {
        let t = TowerSketch::paper_shape(4, 10_000_000, 3);
        assert_eq!(t.row_count(), 2);
        // 4096×(1+1) + 2048×(2+1) = 8192 + 6144.
        assert_eq!(t.memory_bytes(), 8192 + 6144);
    }

    #[test]
    fn estimate_is_read_only() {
        let mut t = small_tower();
        t.add(1, 50, 0);
        let a = t.estimate(1, 0);
        let b = t.estimate(1, 0);
        assert_eq!(a, b);
        assert_eq!(a, 50);
    }

    #[test]
    fn collision_inflates_but_min_helps() {
        // With 2 rows, a flow colliding in one row is usually clean in the
        // other, keeping the estimate tight.
        // 200 flows over 1024-counter rows: a row is clean for a flow with
        // prob ≈0.82, and the min over two rows is tight with prob ≈0.97.
        let mut t = TowerSketch::new(vec![(1024, 32), (1024, 32)], 10_000_000, 7);
        for f in 0..200u64 {
            t.add(f, 10, 0);
        }
        let tight = (0..200u64).filter(|&f| t.estimate(f, 0) == 10).count();
        assert!(tight > 150, "only {tight} tight estimates");
    }
}
