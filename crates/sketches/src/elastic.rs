//! Elastic sketch: vote-based heavy part backed by a Count-Min light part.
//!
//! The comparison baseline "Elastic" of §4.2 uses this sketch's replacement
//! rule (see `p4lru_core::policies::ElasticCache` for the cache-policy
//! form); the full sketch here also *measures* flow sizes, which the
//! sketch-ops benchmarks and the filter ablation exercise.

use crate::cm::CountMin;
use crate::filter::{epoch_of, FlowFilter};

/// Vote threshold λ of the original Elastic sketch.
pub const LAMBDA: u32 = 8;

#[derive(Clone, Copy, Debug, Default)]
struct Bucket {
    key: u64,
    vote_pos: u32,
    vote_neg: u32,
    /// Did this incumbent ever shed bytes to the light part?
    flag: bool,
    occupied: bool,
    epoch: u8,
}

/// Elastic sketch with periodic resets.
#[derive(Clone, Debug)]
pub struct ElasticSketch {
    heavy: Vec<Bucket>,
    light: CountMin,
    seed: u64,
    reset_ns: u64,
}

impl ElasticSketch {
    /// `buckets` heavy buckets over a `light_width` Count-Min light part.
    ///
    /// # Panics
    /// Panics on zero sizes or period.
    pub fn new(buckets: usize, light_width: usize, reset_ns: u64, seed: u64) -> Self {
        assert!(buckets > 0, "heavy part needs buckets");
        Self {
            heavy: vec![Bucket::default(); buckets],
            light: CountMin::new(1, light_width, 32, reset_ns, seed ^ 0xE1A5),
            seed,
            reset_ns,
        }
    }

    fn index(&self, flow: u64) -> usize {
        let h = p4lru_core::hashing::hash_u64(self.seed, flow);
        (((u128::from(h)) * (self.heavy.len() as u128)) >> 64) as usize
    }

    fn refresh(&mut self, i: usize, now_ns: u64) {
        let e = epoch_of(now_ns, self.reset_ns);
        if self.heavy[i].epoch != e {
            self.heavy[i] = Bucket {
                epoch: e,
                ..Bucket::default()
            };
        }
    }
}

impl FlowFilter for ElasticSketch {
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64 {
        let i = self.index(flow);
        self.refresh(i, now_ns);
        let b = &mut self.heavy[i];
        if !b.occupied {
            *b = Bucket {
                key: flow,
                vote_pos: len,
                vote_neg: 0,
                flag: false,
                occupied: true,
                epoch: b.epoch,
            };
            return u64::from(len);
        }
        if b.key == flow {
            b.vote_pos = b.vote_pos.saturating_add(len);
            let flagged = b.flag;
            let pos = u64::from(b.vote_pos);
            return if flagged {
                pos + self.light.estimate(flow, now_ns)
            } else {
                pos
            };
        }
        b.vote_neg = b.vote_neg.saturating_add(len);
        if b.vote_neg >= b.vote_pos.saturating_mul(LAMBDA) {
            // Evict incumbent into the light part; newcomer takes over
            // flagged (its earlier bytes live in the light part).
            let old_key = b.key;
            let old_pos = b.vote_pos;
            *b = Bucket {
                key: flow,
                vote_pos: len,
                vote_neg: 0,
                flag: true,
                occupied: true,
                epoch: b.epoch,
            };
            self.light.add(old_key, old_pos, now_ns);
            let prior = self.light.estimate(flow, now_ns);
            u64::from(len) + prior
        } else {
            self.light.add(flow, len, now_ns)
        }
    }

    fn estimate(&self, flow: u64, now_ns: u64) -> u64 {
        let i = self.index(flow);
        let b = &self.heavy[i];
        let fresh = b.epoch == epoch_of(now_ns, self.reset_ns);
        if fresh && b.occupied && b.key == flow {
            let pos = u64::from(b.vote_pos);
            if b.flag {
                pos + self.light.estimate(flow, now_ns)
            } else {
                pos
            }
        } else {
            self.light.estimate(flow, now_ns)
        }
    }

    fn memory_bytes(&self) -> usize {
        // key 8B + votes 8B + flag/epoch 2B per bucket.
        self.heavy.len() * 18 + self.light.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "Elastic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_flow_is_exact() {
        let mut e = ElasticSketch::new(16, 64, 10_000_000, 1);
        for _ in 0..5 {
            e.add(7, 100, 0);
        }
        assert_eq!(e.estimate(7, 0), 500);
    }

    #[test]
    fn heavy_incumbent_resists_light_traffic() {
        let mut e = ElasticSketch::new(1, 64, 10_000_000, 2);
        e.add(1, 1000, 0);
        // A smattering of other flows votes negative but loses.
        for f in 2..9u64 {
            e.add(f, 100, 0);
        }
        assert_eq!(e.estimate(1, 0), 1000);
        // The losers were counted in the light part — never lost.
        for f in 2..9u64 {
            assert!(e.estimate(f, 0) >= 100, "flow {f} undercounted");
        }
    }

    #[test]
    fn takeover_moves_incumbent_to_light_part() {
        let mut e = ElasticSketch::new(1, 64, 10_000_000, 3);
        e.add(1, 10, 0);
        // 8×10 = 80 negative bytes trigger the λ = 8 takeover.
        e.add(2, 80, 0);
        assert!(
            e.estimate(2, 0) >= 80,
            "newcomer undercounted after takeover"
        );
        assert!(e.estimate(1, 0) >= 10, "evicted incumbent lost its bytes");
    }

    #[test]
    fn never_underestimates() {
        let mut e = ElasticSketch::new(32, 256, 10_000_000, 4);
        let mut truth = std::collections::HashMap::new();
        let mut x = 9u64;
        for _ in 0..5000 {
            x = p4lru_core::hashing::mix64(x);
            let flow = x % 200;
            *truth.entry(flow).or_insert(0u64) += 100;
            e.add(flow, 100, 0);
        }
        for (&flow, &want) in &truth {
            let est = e.estimate(flow, 0);
            assert!(est >= want, "flow {flow}: {est} < {want}");
        }
    }

    #[test]
    fn reset_clears_estimates() {
        let mut e = ElasticSketch::new(8, 64, 1_000_000, 5);
        e.add(3, 700, 0);
        assert_eq!(e.estimate(3, 1_000_001), 0);
    }
}
