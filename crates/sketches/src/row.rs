//! A row of periodically-reset saturating counters.
//!
//! Each counter pairs with an 8-bit epoch stamp (the paper: "every counter
//! is paired with an 8-bit timestamp, facilitating periodic counter resets,
//! typically on a millisecond scale"). Resets happen lazily on first touch
//! in a new epoch — no scanning thread, matching the data-plane reality.

use crate::filter::epoch_of;

/// One counter row: `width_bits`-wide saturating counters with lazy reset.
#[derive(Clone, Debug)]
pub struct ResettableRow {
    counters: Vec<u32>,
    epochs: Vec<u8>,
    max: u32,
    width_bits: u8,
    seed: u64,
    reset_ns: u64,
}

impl ResettableRow {
    /// A row of `len` counters of `width_bits` bits (≤ 32), reset every
    /// `reset_ns`, indexed by a hash derived from `seed`.
    ///
    /// # Panics
    /// Panics on zero length/period or unsupported width.
    pub fn new(len: usize, width_bits: u8, reset_ns: u64, seed: u64) -> Self {
        assert!(len > 0, "row needs counters");
        assert!(
            (1..=32).contains(&width_bits),
            "width {width_bits} out of range"
        );
        assert!(reset_ns > 0, "reset period must be positive");
        let max = if width_bits == 32 {
            u32::MAX
        } else {
            (1u32 << width_bits) - 1
        };
        Self {
            counters: vec![0; len],
            epochs: vec![0; len],
            max,
            width_bits,
            seed,
            reset_ns,
        }
    }

    /// Counter count.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Is the row empty? (Never true by construction; present for API
    /// completeness.)
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The saturation value.
    pub fn saturation(&self) -> u32 {
        self.max
    }

    /// Counter width in bits.
    pub fn width_bits(&self) -> u8 {
        self.width_bits
    }

    /// Bytes of state: counters (rounded up to whole bytes) + 1-byte epochs.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * ((self.width_bits as usize).div_ceil(8) + 1)
    }

    #[inline]
    fn index(&self, flow: u64) -> usize {
        let h = p4lru_core::hashing::hash_u64(self.seed, flow);
        (((u128::from(h)) * (self.counters.len() as u128)) >> 64) as usize
    }

    /// Adds `len` to the flow's counter (resetting first if the epoch
    /// turned) and returns the post-add value.
    pub fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u32 {
        let i = self.index(flow);
        let e = epoch_of(now_ns, self.reset_ns);
        if self.epochs[i] != e {
            self.epochs[i] = e;
            self.counters[i] = 0;
        }
        self.counters[i] = self.counters[i].saturating_add(len).min(self.max);
        self.counters[i]
    }

    /// Read-only counter value at `now_ns` (0 if the epoch expired).
    pub fn read(&self, flow: u64, now_ns: u64) -> u32 {
        let i = self.index(flow);
        if self.epochs[i] != epoch_of(now_ns, self.reset_ns) {
            0
        } else {
            self.counters[i]
        }
    }

    /// Conservative-update write: raises the counter to `target` if below
    /// (after epoch reset), returns the resulting value.
    pub fn raise_to(&mut self, flow: u64, target: u32, now_ns: u64) -> u32 {
        let i = self.index(flow);
        let e = epoch_of(now_ns, self.reset_ns);
        if self.epochs[i] != e {
            self.epochs[i] = e;
            self.counters[i] = 0;
        }
        self.counters[i] = self.counters[i].max(target.min(self.max));
        self.counters[i]
    }

    /// Is the flow's counter saturated (treated as ∞ in Tower's min)?
    pub fn is_saturated(&self, flow: u64, now_ns: u64) -> bool {
        self.read(flow, now_ns) >= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_within_epoch() {
        let mut r = ResettableRow::new(64, 16, 1_000_000, 1);
        assert_eq!(r.add(7, 100, 0), 100);
        assert_eq!(r.add(7, 50, 500_000), 150);
        assert_eq!(r.read(7, 900_000), 150);
    }

    #[test]
    fn epoch_turn_resets_lazily() {
        let mut r = ResettableRow::new(64, 16, 1_000_000, 1);
        r.add(7, 100, 0);
        // New epoch: read sees 0 even before any write.
        assert_eq!(r.read(7, 1_000_001,), 0);
        // And the next add starts fresh.
        assert_eq!(r.add(7, 30, 1_000_001), 30);
    }

    #[test]
    fn saturation_clamps() {
        let mut r = ResettableRow::new(8, 8, 1_000, 2);
        assert_eq!(r.saturation(), 255);
        r.add(1, 200, 0);
        assert_eq!(r.add(1, 200, 0), 255);
        assert!(r.is_saturated(1, 0));
    }

    #[test]
    fn raise_to_is_monotone() {
        let mut r = ResettableRow::new(8, 16, 1_000, 3);
        assert_eq!(r.raise_to(5, 100, 0), 100);
        assert_eq!(r.raise_to(5, 50, 0), 100); // no lowering
        assert_eq!(r.raise_to(5, 300, 0), 300);
    }

    #[test]
    fn memory_accounting() {
        let r8 = ResettableRow::new(100, 8, 1_000, 0);
        assert_eq!(r8.memory_bytes(), 200); // 1B counter + 1B epoch
        let r16 = ResettableRow::new(100, 16, 1_000, 0);
        assert_eq!(r16.memory_bytes(), 300);
    }

    #[test]
    fn different_flows_mostly_different_counters() {
        let mut r = ResettableRow::new(1024, 32, 1_000_000, 4);
        for f in 0..100u64 {
            r.add(f, 1, 0);
        }
        // With 100 flows over 1024 counters, ≈(1−1/1024)⁹⁹ ≈ 91% stay clean.
        let loaded = (0..100u64).filter(|&f| r.read(f, 0) == 1).count();
        assert!(loaded > 80, "only {loaded} flows kept clean counters");
    }
}
