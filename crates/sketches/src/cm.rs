//! Count-Min and conservative-update (CU) sketches as LruMon filters.
//!
//! The paper's testbed uses the CM sketch as the LruMon filter (§4.1) and
//! names the "approximate CU sketch" as a further alternative. Both reuse
//! the resettable rows of [`crate::row`].

use crate::filter::FlowFilter;
use crate::row::ResettableRow;

/// Classic d×w Count-Min with periodic resets.
#[derive(Clone, Debug)]
pub struct CountMin {
    rows: Vec<ResettableRow>,
}

impl CountMin {
    /// `depth` rows of `width` counters of `width_bits` bits.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize, width: usize, width_bits: u8, reset_ns: u64, seed: u64) -> Self {
        assert!(depth > 0, "CM needs at least one row");
        Self {
            rows: (0..depth)
                .map(|i| {
                    ResettableRow::new(
                        width,
                        width_bits,
                        reset_ns,
                        p4lru_core::hashing::hash_u64(seed, i as u64),
                    )
                })
                .collect(),
        }
    }

    /// Two 32-bit rows — the shape used by the LruMon testbed harness.
    pub fn lrumon_shape(width: usize, reset_ns: u64, seed: u64) -> Self {
        Self::new(2, width, 32, reset_ns, seed)
    }
}

impl FlowFilter for CountMin {
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64 {
        self.rows
            .iter_mut()
            .map(|r| u64::from(r.add(flow, len, now_ns)))
            .min()
            .expect("CM has rows")
    }

    fn estimate(&self, flow: u64, now_ns: u64) -> u64 {
        self.rows
            .iter()
            .map(|r| u64::from(r.read(flow, now_ns)))
            .min()
            .expect("CM has rows")
    }

    fn memory_bytes(&self) -> usize {
        self.rows.iter().map(ResettableRow::memory_bytes).sum()
    }

    fn name(&self) -> &'static str {
        "CM"
    }
}

/// Conservative-update sketch: each packet raises only the counters that
/// would otherwise fall below the new estimate, halving over-estimation in
/// practice at identical memory.
#[derive(Clone, Debug)]
pub struct CuSketch {
    rows: Vec<ResettableRow>,
}

impl CuSketch {
    /// `depth` rows of `width` counters of `width_bits` bits.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize, width: usize, width_bits: u8, reset_ns: u64, seed: u64) -> Self {
        assert!(depth > 0, "CU needs at least one row");
        Self {
            rows: (0..depth)
                .map(|i| {
                    // Same row-seed derivation as CountMin so that a CU and
                    // a CM built from one seed share hash functions — this
                    // makes per-counter dominance (CU ≤ CM) hold exactly.
                    ResettableRow::new(
                        width,
                        width_bits,
                        reset_ns,
                        p4lru_core::hashing::hash_u64(seed, i as u64),
                    )
                })
                .collect(),
        }
    }
}

impl FlowFilter for CuSketch {
    fn add(&mut self, flow: u64, len: u32, now_ns: u64) -> u64 {
        // Current min (after epoch resets are applied via read-with-reset,
        // which `raise_to` performs), then raise all rows to min + len.
        let current = self
            .rows
            .iter()
            .map(|r| u64::from(r.read(flow, now_ns)))
            .min()
            .expect("CU has rows");
        let target = current
            .saturating_add(u64::from(len))
            .min(u64::from(u32::MAX)) as u32;
        self.rows
            .iter_mut()
            .map(|r| u64::from(r.raise_to(flow, target, now_ns)))
            .min()
            .expect("CU has rows")
    }

    fn estimate(&self, flow: u64, now_ns: u64) -> u64 {
        self.rows
            .iter()
            .map(|r| u64::from(r.read(flow, now_ns)))
            .min()
            .expect("CU has rows")
    }

    fn memory_bytes(&self) -> usize {
        self.rows.iter().map(ResettableRow::memory_bytes).sum()
    }

    fn name(&self) -> &'static str {
        "CU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(filter: &mut dyn FlowFilter, flows: u64, packets: usize, seed: u64) -> Vec<u64> {
        let mut truth = vec![0u64; flows as usize];
        let mut x = seed;
        for _ in 0..packets {
            x = p4lru_core::hashing::mix64(x);
            let flow = x % flows;
            let len = 100;
            truth[flow as usize] += 100;
            filter.add(flow, len, 0);
        }
        truth
    }

    #[test]
    fn cm_never_underestimates() {
        let mut cm = CountMin::new(2, 256, 32, 10_000_000, 1);
        let truth = drive(&mut cm, 500, 10_000, 3);
        for (flow, &want) in truth.iter().enumerate() {
            let est = cm.estimate(flow as u64, 0);
            assert!(est >= want, "flow {flow}: {est} < {want}");
        }
    }

    #[test]
    fn cu_never_underestimates_and_beats_cm() {
        let mut cm = CountMin::new(2, 256, 32, 10_000_000, 1);
        let mut cu = CuSketch::new(2, 256, 32, 10_000_000, 1);
        let truth_cm = drive(&mut cm, 500, 10_000, 3);
        let truth_cu = drive(&mut cu, 500, 10_000, 3);
        assert_eq!(truth_cm, truth_cu);
        let (mut err_cm, mut err_cu) = (0u64, 0u64);
        for (flow, &want) in truth_cu.iter().enumerate() {
            let est = cu.estimate(flow as u64, 0);
            assert!(est >= want, "flow {flow}: {est} < {want}");
            err_cu += est - want;
            err_cm += cm.estimate(flow as u64, 0) - want;
        }
        assert!(err_cu <= err_cm, "CU error {err_cu} > CM error {err_cm}");
    }

    #[test]
    fn single_flow_is_exact() {
        let mut cm = CountMin::new(2, 64, 32, 10_000_000, 2);
        for _ in 0..10 {
            cm.add(42, 150, 0);
        }
        assert_eq!(cm.estimate(42, 0), 1500);
    }

    #[test]
    fn reset_clears_both_sketches() {
        let mut cm = CountMin::new(2, 64, 32, 1_000_000, 2);
        let mut cu = CuSketch::new(2, 64, 32, 1_000_000, 2);
        cm.add(1, 500, 0);
        cu.add(1, 500, 0);
        assert_eq!(cm.estimate(1, 1_000_001), 0);
        assert_eq!(cu.estimate(1, 1_000_001), 0);
    }

    #[test]
    fn memory_accounting() {
        let cm = CountMin::new(2, 100, 32, 1_000, 0);
        assert_eq!(cm.memory_bytes(), 2 * 100 * 5); // 4B counter + 1B epoch
    }

    #[test]
    fn names() {
        assert_eq!(CountMin::lrumon_shape(8, 1_000, 0).name(), "CM");
        assert_eq!(CuSketch::new(1, 8, 32, 1_000, 0).name(), "CU");
    }
}
