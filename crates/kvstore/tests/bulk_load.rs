//! Bulk-load equivalence: a database built by `populate`/`from_entries`/
//! `from_sorted_entries` (bottom-up index construction) must be
//! observationally identical to one built by an insert loop — same
//! contents, same lookups, same behavior under further mutation. This is
//! the gate on wiring `BPlusTree::from_sorted` into the population and
//! snapshot-recovery paths.

use p4lru_kvstore::db::{record_for, Database};

/// Inserts the same entries one at a time (the seed-era construction).
fn insert_built(entries: &[(u64, [u8; 64])]) -> Database {
    let mut db = Database::default();
    for &(k, r) in entries {
        db.insert(k, r);
    }
    db
}

fn assert_same(a: &Database, b: &Database) {
    assert_eq!(a.len(), b.len());
    let ia: Vec<(u64, [u8; 64])> = a.iter().map(|(k, r)| (k, *r)).collect();
    let ib: Vec<(u64, [u8; 64])> = b.iter().map(|(k, r)| (k, *r)).collect();
    assert_eq!(ia, ib);
}

#[test]
fn populate_equals_insert_loop() {
    for items in [0u64, 1, 2, 63, 64, 65, 1000, 5000] {
        let entries: Vec<(u64, [u8; 64])> = (0..items).map(|k| (k, record_for(k))).collect();
        let bulk = Database::populate(items);
        let built = insert_built(&entries);
        assert_same(&bulk, &built);
        assert!(
            bulk.index_height() <= built.index_height(),
            "items={items}: bulk-loaded index is at least as shallow \
             ({} vs {})",
            bulk.index_height(),
            built.index_height()
        );
        if items > 0 {
            let l = bulk.lookup_by_key(items / 2).expect("key exists");
            assert_eq!(l.record, &record_for(items / 2));
            assert_eq!(bulk.lookup_by_addr(l.addr), &record_for(items / 2));
        }
        assert!(bulk.lookup_by_key(items + 7).is_none());
    }
}

#[test]
fn from_sorted_entries_equals_insert_loop_on_sparse_keys() {
    let entries: Vec<(u64, [u8; 64])> = (0..2000u64).map(|i| (i * 17 + 3, record_for(i))).collect();
    let bulk = Database::from_sorted_entries(entries.clone());
    let built = insert_built(&entries);
    assert_same(&bulk, &built);
    // Probes between keys miss in both.
    assert!(bulk.lookup_by_key(4).is_none());
    assert_eq!(
        bulk.lookup_by_key(3).unwrap().record,
        built.lookup_by_key(3).unwrap().record
    );
}

#[test]
fn from_entries_equals_insert_loop_with_duplicates() {
    // Unsorted with duplicates: the insert loop's last-write-wins semantics
    // must survive the sort + dedup + bulk-load path.
    let mut entries: Vec<(u64, [u8; 64])> = Vec::new();
    let mut x = 9u64;
    for i in 0..1500u64 {
        x = p4lru_core::hashing::mix64(x);
        entries.push((x % 400, record_for(i)));
    }
    let bulk = Database::from_entries(entries.clone());
    let built = insert_built(&entries);
    assert_same(&bulk, &built);
}

#[test]
fn bulk_built_database_mutates_like_an_insert_built_one() {
    let entries: Vec<(u64, [u8; 64])> = (0..1000u64).map(|k| (k * 2, record_for(k))).collect();
    let mut bulk = Database::from_sorted_entries(entries.clone());
    let mut built = insert_built(&entries);
    for k in 0..500u64 {
        assert_eq!(
            bulk.insert(k * 2 + 1, record_for(k)).is_some(),
            built.insert(k * 2 + 1, record_for(k)).is_some()
        );
    }
    for k in (0..2000u64).step_by(3) {
        assert_eq!(bulk.remove(k), built.remove(k));
    }
    assert_same(&bulk, &built);
}
