//! Property tests: the B+Tree must be observationally a `BTreeMap` under
//! arbitrary operation sequences, with structural invariants intact.

use proptest::prelude::*;
use std::collections::BTreeMap;

use p4lru_kvstore::btree::BPlusTree;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 500, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 500)),
        any::<u16>().prop_map(|k| Op::Get(k % 500)),
    ]
}

proptest! {
    #[test]
    fn btree_matches_btreemap(max_keys in 3usize..12, ops in proptest::collection::vec(op_strategy(), 0..800)) {
        let mut tree = BPlusTree::new(max_keys);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k)),
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lookup_cost_is_height(keys in proptest::collection::vec(any::<u32>(), 1..2000)) {
        let mut tree = BPlusTree::new(8);
        for &k in &keys {
            tree.insert(k, ());
        }
        for &k in keys.iter().take(50) {
            let (v, visits) = tree.lookup(&k);
            prop_assert!(v.is_some());
            prop_assert_eq!(visits, tree.height());
        }
    }

    #[test]
    fn deletion_shrinks_back_to_empty(count in 1usize..600) {
        let mut tree = BPlusTree::new(5);
        for k in 0..count {
            tree.insert(k, k);
        }
        for k in 0..count {
            prop_assert_eq!(tree.remove(&k), Some(k));
            prop_assert!(tree.check_invariants().is_ok());
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 1);
    }
}
