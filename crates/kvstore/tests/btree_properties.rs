//! Property tests: the B+Tree must be observationally a `BTreeMap` under
//! arbitrary operation sequences, with structural invariants intact.

#![recursion_limit = "256"]

use proptest::prelude::*;
use std::collections::BTreeMap;

use p4lru_kvstore::btree::BPlusTree;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 500, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 500)),
        any::<u16>().prop_map(|k| Op::Get(k % 500)),
    ]
}

proptest! {
    #[test]
    fn btree_matches_btreemap(max_keys in 3usize..12, ops in proptest::collection::vec(op_strategy(), 0..800)) {
        let mut tree = BPlusTree::new(max_keys);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k)),
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lookup_cost_is_height(keys in proptest::collection::vec(any::<u32>(), 1..2000)) {
        let mut tree = BPlusTree::new(8);
        for &k in &keys {
            tree.insert(k, ());
        }
        for &k in keys.iter().take(50) {
            let (v, visits) = tree.lookup(&k);
            prop_assert!(v.is_some());
            prop_assert_eq!(visits, tree.height());
        }
    }

    #[test]
    fn deletion_shrinks_back_to_empty(count in 1usize..600) {
        let mut tree = BPlusTree::new(5);
        for k in 0..count {
            tree.insert(k, k);
        }
        for k in 0..count {
            prop_assert_eq!(tree.remove(&k), Some(k));
            prop_assert!(tree.check_invariants().is_ok());
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 1);
    }
}

proptest! {
    // The slot-layout rewrite adds three kinds of hidden state — hash-mode
    // sidecars, the descent cache, and per-node head/prefix metadata — all
    // of which must be observationally invisible. This interleaving drives
    // every transition: hot bursts push leaves toward hash mode, scans
    // flag them back, removals trigger the rebalances that invalidate the
    // descent cache, and every answer is checked against a `BTreeMap`.
    #[test]
    fn mixed_ops_with_hot_bursts_and_scans_match_btreemap(
        max_keys in 3usize..12,
        ops in proptest::collection::vec(mixed_op_strategy(), 0..400),
    ) {
        let mut tree = BPlusTree::new(max_keys);
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                MixedOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                MixedOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                MixedOp::HotGet(k) => {
                    prop_assert_eq!(tree.lookup_hot(&k).0, model.get(&k));
                }
                MixedOp::HotBurst(k) => {
                    // Long enough to cross the leaf's hash-flip streak and
                    // to exercise repeated descent-cache hits on one leaf.
                    for _ in 0..20 {
                        prop_assert_eq!(tree.lookup_hot(&k).0, model.get(&k));
                    }
                }
                MixedOp::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(u16, u32)> =
                        tree.range(&lo, &hi).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(u16, u32)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
                MixedOp::Optimize => tree.apply_adaptation(),
            }
            if step % 64 == 0 {
                prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
            }
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    // Bulk load must be observationally identical to an insert loop over
    // the same (sorted, deduplicated) entries — and must stay correct as a
    // starting point for further mutation.
    #[test]
    fn bulk_load_matches_insert_built(
        max_keys in 3usize..80,
        keys in proptest::collection::vec(any::<u32>(), 0..500),
        extra in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 0xABCD)).collect();
        let mut bulk = BPlusTree::from_sorted(max_keys, entries.clone());
        prop_assert!(bulk.check_invariants().is_ok(), "{:?}", bulk.check_invariants());
        let mut built = BPlusTree::new(max_keys);
        for &(k, v) in &entries {
            built.insert(k, v);
        }
        prop_assert!(bulk.height() <= built.height());
        {
            let a: Vec<(u32, u32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
            let b: Vec<(u32, u32)> = built.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(a, b);
        }
        // The bulk-built tree accepts further mutation like any other.
        for &k in &extra {
            let v = k.wrapping_mul(3);
            prop_assert_eq!(bulk.insert(k, v), built.insert(k, v));
        }
        for &k in extra.iter().rev().take(extra.len() / 2) {
            prop_assert_eq!(bulk.remove(&k), built.remove(&k));
        }
        prop_assert!(bulk.check_invariants().is_ok(), "{:?}", bulk.check_invariants());
        let a: Vec<(u32, u32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u32)> = built.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
    }
}

#[derive(Clone, Debug)]
enum MixedOp {
    Insert(u16, u32),
    Remove(u16),
    HotGet(u16),
    HotBurst(u16),
    Range(u16, u16),
    Optimize,
}

fn mixed_op_strategy() -> impl Strategy<Value = MixedOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MixedOp::Insert(k % 300, v)),
        any::<u16>().prop_map(|k| MixedOp::Remove(k % 300)),
        any::<u16>().prop_map(|k| MixedOp::HotGet(k % 300)),
        any::<u16>().prop_map(|k| MixedOp::HotBurst(k % 300)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| MixedOp::Range(a % 300, b % 300)),
        Just(MixedOp::Optimize),
    ]
}
