//! Order-preserving key projections for the slot-layout B+Tree.
//!
//! The rewritten [`crate::btree::BPlusTree`] never compares full keys on the
//! hot path. Instead every node stores a contiguous array of 4-byte *heads*
//! derived from each key's big-endian encoding (the `head()` trick from the
//! btree-techniques thesis): an order-preserving `u32` that a binary search
//! can scan without touching the key storage at all. Full-key comparisons
//! only happen inside a run of equal heads.
//!
//! For that to discriminate anything on dense integer keys (the workspace
//! reality: `u64` record ids counting up from zero, whose top four
//! big-endian bytes are all zero), heads are combined with per-node *prefix
//! truncation*: a node whose keys share their first `skip` big-endian bytes
//! derives heads from bytes `[skip, skip + 4)` instead. A node covering 64
//! consecutive dense keys shares at least six prefix bytes, so its heads
//! become the low key bytes — fully discriminating.
//!
//! [`IndexKey`] is the one hook a key type provides: [`IndexKey::rank64`],
//! an order-preserving projection onto `u64`. Everything else (prefixes,
//! heads, hashes for hash-mode leaves) derives from the rank. Ties in
//! `rank64` are allowed — tied keys get equal heads and fall back to full
//! `Ord` comparison, which is always correct, just slower.

/// A key usable by the slot-layout B+Tree.
///
/// Implementations must make [`rank64`](IndexKey::rank64) *order
/// preserving*: `a <= b` implies `a.rank64() <= b.rank64()`. Ties are
/// permitted (they only cost full-key comparisons), so any type can project
/// lossily — e.g. a string type could rank by its first eight bytes.
pub trait IndexKey: Ord + Clone {
    /// An order-preserving projection of this key onto `u64`.
    fn rank64(&self) -> u64;

    /// The hash used by hash-mode leaves. The default is a single
    /// multiplicative (Fibonacci) hash — one multiply on the critical path
    /// before the bucket load, where a full finalizing mix costs a serial
    /// chain of them. Only the low 32 bits carry entropy (the mixed high
    /// half is shifted down, because bucket masks use the low bits); that
    /// is plenty for per-leaf directories of at most a few hundred slots.
    /// Override if `rank64` is lossy for this type.
    fn hash64(&self) -> u64 {
        self.rank64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
    }
}

macro_rules! unsigned_index_key {
    ($($t:ty),*) => {$(
        impl IndexKey for $t {
            #[inline]
            fn rank64(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}

macro_rules! signed_index_key {
    ($($t:ty),*) => {$(
        impl IndexKey for $t {
            #[inline]
            fn rank64(&self) -> u64 {
                // Sign-flip the two's-complement encoding so negative keys
                // rank below positive ones.
                (*self as i64 as u64) ^ (1 << 63)
            }
        }
    )*};
}

unsigned_index_key!(u8, u16, u32, u64, usize);
signed_index_key!(i8, i16, i32, i64, isize);

/// The first `skip` big-endian bytes of a rank, right-aligned.
///
/// Two keys live in the same prefix class iff their `be_prefix` values are
/// equal for the node's `skip`. `skip` must be in `0..=8`; `skip == 0`
/// means "no shared prefix" and every key trivially matches.
#[inline]
pub(crate) fn be_prefix(rank: u64, skip: u8) -> u64 {
    if skip == 0 {
        0
    } else {
        rank >> (64 - 8 * u32::from(skip.min(8)))
    }
}

/// Big-endian bytes `[skip, skip + 4)` of a rank as an order-preserving
/// `u32` head (zero-padded past the end; all-tie zero when `skip >= 8`).
#[inline]
pub(crate) fn head_at(rank: u64, skip: u8) -> u32 {
    if skip >= 8 {
        0
    } else {
        ((rank << (8 * u32::from(skip))) >> 32) as u32
    }
}

/// How many leading big-endian bytes two ranks share (0..=8).
#[inline]
pub(crate) fn shared_prefix_bytes(lo: u64, hi: u64) -> u8 {
    let x = lo ^ hi;
    if x == 0 {
        8
    } else {
        (x.leading_zeros() / 8) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_preserves_order_unsigned() {
        let keys: Vec<u16> = vec![0, 1, 9, 255, 256, 65535];
        for w in keys.windows(2) {
            assert!(w[0].rank64() < w[1].rank64());
        }
    }

    #[test]
    fn rank_preserves_order_signed() {
        let keys: Vec<i32> = vec![i32::MIN, -5, -1, 0, 1, 7, i32::MAX];
        for w in keys.windows(2) {
            assert!(w[0].rank64() < w[1].rank64());
        }
    }

    #[test]
    fn dense_keys_get_discriminating_heads_after_truncation() {
        // The motivating case: 64 consecutive u64 keys. Without truncation
        // every head is zero; with it they are fully distinct.
        let base = 123_456u64;
        let ranks: Vec<u64> = (base..base + 64).map(|k| k.rank64()).collect();
        assert_eq!(head_at(ranks[0], 0), 0, "untruncated heads are useless");
        let skip = shared_prefix_bytes(ranks[0], ranks[63]);
        assert!(skip >= 4);
        let heads: Vec<u32> = ranks.iter().map(|&r| head_at(r, skip)).collect();
        for w in heads.windows(2) {
            assert!(w[0] < w[1], "heads must discriminate and stay ordered");
        }
    }

    #[test]
    fn heads_are_order_preserving_within_a_prefix_class() {
        for skip in 0..=8u8 {
            let a = 0x1122_3344_5566_7788u64;
            let b = a + 0x10;
            if be_prefix(a, skip) == be_prefix(b, skip) {
                assert!(head_at(a, skip) <= head_at(b, skip));
            }
        }
    }

    #[test]
    fn prefix_and_head_edges() {
        assert_eq!(be_prefix(u64::MAX, 0), 0);
        assert_eq!(be_prefix(u64::MAX, 8), u64::MAX);
        assert_eq!(head_at(u64::MAX, 8), 0);
        assert_eq!(head_at(0xAABB_CCDD_0000_0000, 0), 0xAABB_CCDD);
        assert_eq!(head_at(0x0000_0000_AABB_CCDD, 4), 0xAABB_CCDD);
        assert_eq!(shared_prefix_bytes(7, 7), 8);
        assert_eq!(shared_prefix_bytes(0, u64::MAX), 0);
        assert_eq!(shared_prefix_bytes(0x0100, 0x01FF), 7);
    }
}
