//! An arena-allocated B+Tree with a slot layout built for raw lookup speed.
//!
//! Values live only in leaves; internal nodes hold separator keys. The tree
//! reports the number of nodes visited per lookup, which is the cost the
//! LruIndex cache lets the database skip ("the server invokes built-in
//! indexing, like the B+ Tree, to pinpoint key k's index" — §3.2).
//!
//! The seed-era layout (a `Vec<K>` per node, full-key binary search) paid a
//! full key comparison per probe. This rewrite applies the slot-layout
//! techniques from the btree-techniques thesis (see DESIGN.md §13):
//!
//! - **Key heads with prefix truncation.** Every node stores a contiguous
//!   `u32` array of order-preserving *heads* — big-endian key bytes
//!   `[skip, skip+4)` where `skip` counts the prefix bytes all keys in the
//!   node share. Binary search runs over the flat head array; full keys are
//!   only compared inside a run of equal heads. See [`crate::key`].
//! - **Hash leaves.** A leaf whose recent access mix is point-lookup-heavy
//!   arms a hash-bucket directory (open addressing over
//!   [`IndexKey::hash64`]) so point probes skip the binary search entirely.
//!   The directory is a fixed-size array *inline in the node* with a
//!   compile-time mask, so the bucket byte's address is computable before
//!   the node's own cache line arrives — the bucket load and the node
//!   metadata load overlap instead of chaining, cutting a serial cache
//!   miss off every probe. Entries stay physically sorted, so scans and
//!   bulk snapshots never notice; the first range/scan touch flags the
//!   leaf and the next mutation disarms the directory.
//! - **A descent cache.** The tree remembers the last leaf a lookup landed
//!   in (packed with a structural epoch). A hot lookup re-checks that
//!   leaf's fence keys and, on a hit, answers in ~1 node visit instead of a
//!   root-to-leaf walk. [`BPlusTree::lookup`] remains the uncached descent
//!   (its visit count *is* the tree height — the cost model the LruIndex
//!   figures are built on); [`BPlusTree::lookup_hot`] is the cached entry
//!   point the database layer uses.
//! - **Sorted bulk load.** [`BPlusTree::from_sorted`] builds the tree
//!   bottom-up from ascending entries with full leaves — no root-to-leaf
//!   descent per key.
//!
//! Deletion rebalances by borrowing from or merging with siblings; the root
//! collapses when it loses its last separator.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};

use crate::key::{be_prefix, head_at, shared_prefix_bytes, IndexKey};

/// Point-lookup streak after which a leaf flips to hash mode.
const FLIP_STREAK: u8 = 16;
/// Slots in a leaf's inline hash directory. A fixed power of two keeps the
/// probe mask a compile-time constant, which is what lets the bucket load
/// issue before the node's metadata line arrives.
const INLINE_BUCKETS: usize = 128;
/// Most entries a leaf may hold and still run in hash mode (load factor
/// ≤ 0.5 over [`INLINE_BUCKETS`], so linear probes always terminate).
/// Larger fan-outs simply stay in sorted mode.
const INLINE_BUCKET_CAP: usize = INLINE_BUCKETS / 2;
/// Access-mix bit marking a range/scan touch (drops hash mode on the next
/// mutation of the leaf).
const SCAN_FLAG: u8 = 0x80;

/// Bits of the structural epoch packed into the descent-cache word; the
/// remaining bits hold `leaf + 1` (0 = empty cache).
const EPOCH_BITS: u32 = 40;
const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;
/// Largest leaf index the cache can remember (`leaf + 1` must fit the word).
const MAX_CACHED_LEAF: u64 = (1 << (64 - EPOCH_BITS)) - 2;

/// A leaf: sorted `(key, value)` entries plus the head array and the
/// optional hash-bucket sidecar. Keys and values interleave in one
/// allocation on purpose: the full-key verify and the value read land on
/// the same cache line, where parallel `Vec<K>`/`Vec<V>` arrays cost a
/// second miss per lookup.
#[derive(Debug)]
struct Leaf<K, V> {
    /// Order-preserving 4-byte heads, parallel to `entries`.
    heads: Vec<u32>,
    entries: Vec<(K, V)>,
    /// Big-endian key bytes shared by every key in this node (count).
    skip: u8,
    /// The shared prefix itself, right-aligned ([`be_prefix`]).
    prefix: u64,
    /// Hash-mode directory: open-addressed buckets of `slot + 1` (0
    /// empty), inline in the node so a probe's bucket address needs no
    /// pointer chase. Only meaningful while `hash` is set; entries stay
    /// physically sorted either way.
    buckets: [u8; INLINE_BUCKETS],
    /// Whether the bucket directory is armed (hash mode).
    hash: bool,
    /// Access mix: bit 7 = scanned since last mutation, bits 0..7 = point
    /// lookup streak. Updated with relaxed atomics so `&self` readers can
    /// vote; acted on by the next `&mut self` mutation.
    mix: AtomicU8,
}

impl<K: Clone, V: Clone> Clone for Leaf<K, V> {
    fn clone(&self) -> Self {
        Self {
            heads: self.heads.clone(),
            entries: self.entries.clone(),
            skip: self.skip,
            prefix: self.prefix,
            buckets: self.buckets,
            hash: self.hash,
            mix: AtomicU8::new(self.mix.load(Relaxed)),
        }
    }
}

/// An internal node: separator keys with their head array, plus children.
#[derive(Clone, Debug)]
struct Inner<K> {
    heads: Vec<u32>,
    keys: Vec<K>,
    children: Vec<u32>,
    skip: u8,
    prefix: u64,
}

#[derive(Clone, Debug)]
enum Node<K, V> {
    Inner(Inner<K>),
    Leaf(Leaf<K, V>),
}

/// Head-first search of a sorted entry array: scan the flat `u32` heads,
/// then compare full keys only within the run of equal heads. `key_of`
/// projects an entry to its key (`&K` for inner nodes, `&(K, V)` for
/// leaves). `Ok(i)` = exact match at `i`; `Err(i)` = insertion point.
fn slot_search<K: IndexKey, T>(
    heads: &[u32],
    entries: &[T],
    key_of: impl Fn(&T) -> &K,
    skip: u8,
    prefix: u64,
    key: &K,
    rank: u64,
) -> Result<usize, usize> {
    // Prefix gate: a key outside the node's shared-prefix class sorts
    // entirely before or after every key in the node (ranks are
    // order-preserving), so the heads don't even need consulting.
    let kp = be_prefix(rank, skip);
    if kp < prefix {
        return Err(0);
    }
    if kp > prefix {
        return Err(entries.len());
    }
    let h = head_at(rank, skip);
    // Lower bound by counting `< h` over the flat `u32` array. The `u32`
    // accumulator lets the loop auto-vectorize (4-wide compare+subtract
    // at baseline SSE2), and the sequential independent loads stream
    // through the prefetcher — unlike a binary search, whose
    // data-dependent probes serialize on L2 latency and mispredict
    // ~log2(len) times per node. Nodes are fanout-bounded so the scan is
    // a few cache lines; oversized arrays (no current caller) fall back.
    let lo = if heads.len() <= 1024 {
        let mut n: u32 = 0;
        for &x in heads {
            n += u32::from(x < h);
        }
        n as usize
    } else {
        heads.partition_point(|&x| x < h)
    };
    // Full keys only within the run of equal heads (usually 0–1 long).
    let mut hi = lo;
    while hi < heads.len() && heads[hi] == h {
        hi += 1;
    }
    match entries[lo..hi].binary_search_by(|e| key_of(e).cmp(key)) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

impl<K: IndexKey, V> Leaf<K, V> {
    fn empty() -> Self {
        Self {
            heads: Vec::new(),
            entries: Vec::new(),
            skip: 0,
            prefix: 0,
            buckets: [0; INLINE_BUCKETS],
            hash: false,
            mix: AtomicU8::new(0),
        }
    }

    /// A leaf over already-sorted entries; computes heads, starts
    /// sorted-mode.
    fn from_sorted_parts(entries: Vec<(K, V)>) -> Self {
        let mut leaf = Self {
            heads: Vec::new(),
            entries,
            skip: 0,
            prefix: 0,
            buckets: [0; INLINE_BUCKETS],
            hash: false,
            mix: AtomicU8::new(0),
        };
        leaf.rebuild_meta();
        leaf
    }

    fn key(&self, i: usize) -> &K {
        &self.entries[i].0
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Recomputes `skip`/`prefix`/`heads` from the current keys.
    fn rebuild_meta(&mut self) {
        if self.entries.is_empty() {
            self.skip = 0;
            self.prefix = 0;
            self.heads.clear();
            return;
        }
        let lo = self.entries[0].0.rank64();
        let hi = self.entries[self.entries.len() - 1].0.rank64();
        self.skip = shared_prefix_bytes(lo, hi);
        self.prefix = be_prefix(lo, self.skip);
        self.heads.clear();
        let skip = self.skip;
        self.heads
            .extend(self.entries.iter().map(|(k, _)| head_at(k.rank64(), skip)));
    }

    fn search(&self, key: &K, rank: u64) -> Result<usize, usize> {
        slot_search(
            &self.heads,
            &self.entries,
            |e| &e.0,
            self.skip,
            self.prefix,
            key,
            rank,
        )
    }

    /// Point lookup: hash probe in hash mode, head search otherwise.
    fn find(&self, key: &K, rank: u64) -> Option<usize> {
        if self.hash {
            self.hash_find(key)
        } else {
            self.search(key, rank).ok()
        }
    }

    fn hash_find(&self, key: &K) -> Option<usize> {
        let mut i = (key.hash64() as usize) & (INLINE_BUCKETS - 1);
        loop {
            match self.buckets[i] {
                0 => return None,
                s => {
                    let slot = usize::from(s) - 1;
                    if self.entries[slot].0 == *key {
                        return Some(slot);
                    }
                }
            }
            i = (i + 1) & (INLINE_BUCKETS - 1);
        }
    }

    /// Rebuilds and arms the inline bucket directory. The caller ensures
    /// `entries.len() <= INLINE_BUCKET_CAP`, which keeps the load factor
    /// ≤ 0.5 (so linear probes always terminate) and `slot + 1` in a byte.
    fn rebuild_buckets(&mut self) {
        self.buckets = [0; INLINE_BUCKETS];
        for (slot, (k, _)) in self.entries.iter().enumerate() {
            let mut i = (k.hash64() as usize) & (INLINE_BUCKETS - 1);
            while self.buckets[i] != 0 {
                i = (i + 1) & (INLINE_BUCKETS - 1);
            }
            self.buckets[i] = (slot + 1) as u8;
        }
        self.hash = true;
    }

    /// Votes "point lookup" into the access mix (relaxed; losing a vote to
    /// a concurrent racer is harmless — it only delays a mode flip).
    fn note_point(&self) {
        // Saturate at the flip threshold: once a leaf has earned its hash
        // sidecar the streak stops moving, so steady-state point lookups
        // never dirty the node's cache line.
        let m = self.mix.load(Relaxed);
        if m & SCAN_FLAG == 0 && m < FLIP_STREAK {
            self.mix.store(m + 1, Relaxed);
        }
    }

    /// Votes "scanned": the next mutation reverts the leaf to sorted mode.
    fn note_scan(&self) {
        self.mix.store(SCAN_FLAG, Relaxed);
    }

    /// Applies the pending mode decision after a mutation: disarm the hash
    /// directory if a scan touched the leaf, otherwise keep it fresh (or
    /// arm it once the point streak crosses [`FLIP_STREAK`]).
    fn adapt(&mut self) {
        let m = *self.mix.get_mut();
        if m & SCAN_FLAG != 0 {
            self.hash = false;
            *self.mix.get_mut() = 0;
        } else if (self.hash || m >= FLIP_STREAK)
            && !self.entries.is_empty()
            && self.entries.len() <= INLINE_BUCKET_CAP
        {
            self.rebuild_buckets();
        } else {
            // Empty, or grown past the directory's capacity: stay sorted.
            self.hash = false;
        }
    }

    /// Inserts at position `i`, extending the head array incrementally when
    /// the new key shares the node prefix (the common case).
    fn insert_entry(&mut self, i: usize, key: K, value: V) {
        let r = key.rank64();
        if !self.entries.is_empty() && be_prefix(r, self.skip) == self.prefix {
            self.heads.insert(i, head_at(r, self.skip));
            self.entries.insert(i, (key, value));
        } else {
            self.entries.insert(i, (key, value));
            self.rebuild_meta();
        }
    }
}

impl<K: IndexKey> Inner<K> {
    fn from_parts(keys: Vec<K>, children: Vec<u32>) -> Self {
        let mut inner = Self {
            heads: Vec::new(),
            keys,
            children,
            skip: 0,
            prefix: 0,
        };
        inner.rebuild_meta();
        inner
    }

    fn rebuild_meta(&mut self) {
        if self.keys.is_empty() {
            self.skip = 0;
            self.prefix = 0;
            self.heads.clear();
            return;
        }
        let lo = self.keys[0].rank64();
        let hi = self.keys[self.keys.len() - 1].rank64();
        self.skip = shared_prefix_bytes(lo, hi);
        self.prefix = be_prefix(lo, self.skip);
        self.heads.clear();
        let skip = self.skip;
        self.heads
            .extend(self.keys.iter().map(|k| head_at(k.rank64(), skip)));
    }

    /// Child index to descend into for `key`: the first separator greater
    /// than `key` bounds the child on the right.
    fn child_for(&self, key: &K, rank: u64) -> usize {
        match slot_search(
            &self.heads,
            &self.keys,
            |k| k,
            self.skip,
            self.prefix,
            key,
            rank,
        ) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Inserts a promoted separator and its right child after a child split.
    fn insert_sep(&mut self, i: usize, sep: K, right: u32) {
        let r = sep.rank64();
        if !self.keys.is_empty() && be_prefix(r, self.skip) == self.prefix {
            self.heads.insert(i, head_at(r, self.skip));
            self.keys.insert(i, sep);
        } else {
            self.keys.insert(i, sep);
            self.rebuild_meta();
        }
        self.children.insert(i + 1, right);
    }
}

/// A mutable handle to the slot a key occupies after an upsert descent.
///
/// Returned by [`BPlusTree::get_or_insert_with`]: one root-to-leaf walk
/// resolves both "was it there?" and "where does the value live?".
pub struct SlotRef<'a, V> {
    /// The value now stored under the key (the old one if `existed`).
    pub value: &'a mut V,
    /// Whether the key already existed (the factory was not called).
    pub existed: bool,
    /// Nodes visited by the descent (the tree height).
    pub visits: usize,
}

/// A B+Tree with configurable fan-out.
///
/// ```
/// use p4lru_kvstore::btree::BPlusTree;
///
/// let mut index = BPlusTree::new(32);
/// for k in 0..1000u64 {
///     index.insert(k, k * 2);
/// }
/// let (value, node_visits) = index.lookup(&500);
/// assert_eq!(value, Some(&1000));
/// assert_eq!(node_visits, index.height());
/// assert_eq!(index.range(&10, &13).count(), 3);
/// ```
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    max_keys: usize,
    height: usize,
    /// Bumped on any structural change (alloc/free/rebalance/root move);
    /// stale descent-cache entries die on mismatch.
    epoch: u64,
    /// Descent cache: `(leaf + 1) << EPOCH_BITS | epoch`, 0 = empty.
    /// Written with relaxed stores from `&self` lookups.
    cache: AtomicU64,
    /// Lookups answered from the descent cache (~1 visit instead of a
    /// full walk).
    descent_hits: AtomicU64,
}

impl<K: Clone, V: Clone> Clone for BPlusTree<K, V> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            len: self.len,
            max_keys: self.max_keys,
            height: self.height,
            epoch: self.epoch,
            cache: AtomicU64::new(self.cache.load(Relaxed)),
            descent_hits: AtomicU64::new(self.descent_hits.load(Relaxed)),
        }
    }
}

impl<K: IndexKey, V> BPlusTree<K, V> {
    /// A tree whose nodes hold at most `max_keys` keys (fan-out
    /// `max_keys + 1`). Databases use fan-outs in the tens to hundreds;
    /// the default elsewhere in this workspace is 64.
    ///
    /// # Panics
    /// Panics if `max_keys < 3`.
    pub fn new(max_keys: usize) -> Self {
        assert!(max_keys >= 3, "max_keys must be at least 3");
        Self {
            nodes: vec![Node::Leaf(Leaf::empty())],
            free: Vec::new(),
            root: 0,
            len: 0,
            max_keys,
            height: 1,
            epoch: 0,
            cache: AtomicU64::new(0),
            descent_hits: AtomicU64::new(0),
        }
    }

    /// Builds the tree bottom-up from strictly ascending `(key, value)`
    /// entries: full leaves, no per-key descent. `Database::populate`,
    /// `from_entries`, and snapshot recovery use this.
    ///
    /// # Panics
    /// Panics if `max_keys < 3` or the keys are not strictly ascending.
    pub fn from_sorted<I>(max_keys: usize, entries: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(max_keys >= 3, "max_keys must be at least 3");
        let min_keys = max_keys / 2;

        // Chunk into full leaves.
        let mut leaf_entries: Vec<Vec<(K, V)>> = Vec::new();
        let mut cur: Vec<(K, V)> = Vec::with_capacity(max_keys);
        let mut len = 0usize;
        for (k, v) in entries {
            let prev = cur.last().or_else(|| {
                leaf_entries
                    .last()
                    .map(|l| l.last().expect("flushed leaves are non-empty"))
            });
            if let Some((p, _)) = prev {
                assert!(*p < k, "from_sorted requires strictly ascending keys");
            }
            cur.push((k, v));
            len += 1;
            if cur.len() == max_keys {
                leaf_entries.push(std::mem::take(&mut cur));
                cur.reserve(max_keys);
            }
        }
        if !cur.is_empty() {
            leaf_entries.push(cur);
        }

        let mut tree = Self {
            nodes: Vec::with_capacity(leaf_entries.len().max(1) * 2),
            free: Vec::new(),
            root: 0,
            len,
            max_keys,
            height: 1,
            epoch: 0,
            cache: AtomicU64::new(0),
            descent_hits: AtomicU64::new(0),
        };
        if leaf_entries.is_empty() {
            tree.nodes.push(Node::Leaf(Leaf::empty()));
            return tree;
        }

        // Fix an underfull tail leaf by rebalancing the last two.
        let tail = leaf_entries.len() - 1;
        if leaf_entries.len() > 1 && leaf_entries[tail].len() < min_keys {
            let take = (max_keys + leaf_entries[tail].len()).div_ceil(2);
            let moved = leaf_entries[tail - 1].split_off(take);
            let old = std::mem::replace(&mut leaf_entries[tail], moved);
            leaf_entries[tail].extend(old);
        }

        // Allocate leaves, remembering each node's lowest key as the
        // separator material for the level above.
        let mut level: Vec<(K, u32)> = leaf_entries
            .into_iter()
            .map(|es| {
                let low = es[0].0.clone();
                let idx = tree.nodes.len() as u32;
                tree.nodes.push(Node::Leaf(Leaf::from_sorted_parts(es)));
                (low, idx)
            })
            .collect();

        // Build inner levels until one node remains.
        let fanout = max_keys + 1;
        while level.len() > 1 {
            let mut sizes: Vec<usize> = Vec::new();
            let mut remaining = level.len();
            while remaining > 0 {
                let s = remaining.min(fanout);
                sizes.push(s);
                remaining -= s;
            }
            // An underfull tail group steals children from its left
            // neighbour (non-root inner nodes need ≥ min_keys separators).
            let t = sizes.len() - 1;
            if sizes.len() > 1 && sizes[t] < min_keys + 1 {
                let total = sizes[t - 1] + sizes[t];
                sizes[t - 1] = total.div_ceil(2);
                sizes[t] = total - sizes[t - 1];
            }
            let mut next: Vec<(K, u32)> = Vec::with_capacity(sizes.len());
            let mut it = level.into_iter();
            for s in sizes {
                let group: Vec<(K, u32)> = it.by_ref().take(s).collect();
                let low = group[0].0.clone();
                let keys: Vec<K> = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let children: Vec<u32> = group.iter().map(|&(_, c)| c).collect();
                let idx = tree.nodes.len() as u32;
                tree.nodes
                    .push(Node::Inner(Inner::from_parts(keys, children)));
                next.push((low, idx));
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 for a lone leaf). Uncached lookup cost is exactly
    /// `height` node visits.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Lookups answered by the descent cache since the tree was built.
    pub fn descent_hits(&self) -> u64 {
        self.descent_hits.load(Relaxed)
    }

    fn min_keys(&self) -> usize {
        self.max_keys / 2
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        self.epoch += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn free_node(&mut self, idx: u32) {
        self.epoch += 1;
        self.nodes[idx as usize] = Node::Leaf(Leaf::empty());
        self.free.push(idx);
    }

    /// Remembers `leaf` (with the current epoch) as the next lookup's
    /// first guess. Callable from `&self`: a lost race only loses a hint.
    fn cache_store(&self, leaf: u32) {
        if u64::from(leaf) <= MAX_CACHED_LEAF {
            self.cache.store(
                ((u64::from(leaf) + 1) << EPOCH_BITS) | (self.epoch & EPOCH_MASK),
                Relaxed,
            );
        }
    }

    fn cached_leaf(&self) -> Option<u32> {
        let packed = self.cache.load(Relaxed);
        let leaf = packed >> EPOCH_BITS;
        if leaf == 0 || (packed & EPOCH_MASK) != (self.epoch & EPOCH_MASK) {
            None
        } else {
            Some((leaf - 1) as u32)
        }
    }

    /// Looks up `key` with a full root-to-leaf descent, returning the value
    /// and the number of nodes visited (always the tree height). This is
    /// the cost-model entry point; hot paths use [`Self::lookup_hot`].
    pub fn lookup(&self, key: &K) -> (Option<&V>, usize) {
        self.lookup_cold(key, key.rank64())
    }

    fn lookup_cold(&self, key: &K, rank: u64) -> (Option<&V>, usize) {
        let mut cur = self.root;
        let mut visits = 0usize;
        loop {
            visits += 1;
            match &self.nodes[cur as usize] {
                Node::Inner(inner) => {
                    cur = inner.children[inner.child_for(key, rank)];
                }
                Node::Leaf(leaf) => {
                    leaf.note_point();
                    self.cache_store(cur);
                    return (leaf.find(key, rank).map(|i| &leaf.entries[i].1), visits);
                }
            }
        }
    }

    /// Looks up `key` through the descent cache: if the last-touched leaf's
    /// fence keys still cover `key`, the answer costs ~1 node visit;
    /// otherwise this falls back to a full descent (which re-arms the
    /// cache).
    pub fn lookup_hot(&self, key: &K) -> (Option<&V>, usize) {
        let rank = key.rank64();
        if let Some(idx) = self.cached_leaf() {
            if let Node::Leaf(leaf) = &self.nodes[idx as usize] {
                // Conservative fence check: only keys within the leaf's
                // [first, last] span are decidable here. Leaves hold
                // disjoint key ranges, so a key inside this span cannot
                // live in any other leaf — a miss within the span is a
                // true miss.
                if !leaf.entries.is_empty()
                    && *key >= *leaf.key(0)
                    && *key <= *leaf.key(leaf.len() - 1)
                {
                    self.descent_hits.fetch_add(1, Relaxed);
                    leaf.note_point();
                    return (leaf.find(key, rank).map(|i| &leaf.entries[i].1), 1);
                }
            }
        }
        self.lookup_cold(key, rank)
    }

    /// Plain lookup (descent-cache-aware).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.lookup_hot(key).0
    }

    /// Inserts `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut carry = Some(value);
        let slot = self.get_or_insert_with(key, || carry.take().expect("fresh key consumes value"));
        match carry.take() {
            // The factory ran: the value is already in the tree.
            None => None,
            Some(v) => Some(std::mem::replace(slot.value, v)),
        }
    }

    /// Resolves `key` to its value slot in **one** root-to-leaf walk,
    /// inserting `make()` if absent. This is the single-walk upsert the
    /// database layer uses instead of a `get` + `insert` pair.
    pub fn get_or_insert_with<F>(&mut self, key: K, make: F) -> SlotRef<'_, V>
    where
        F: FnOnce() -> V,
    {
        let rank = key.rank64();
        let (leaf, slot, existed, split) = self.upsert_rec(self.root, key, rank, make);
        if let Some((sep, right)) = split {
            let old_root = self.root;
            let new_root = self.alloc(Node::Inner(Inner::from_parts(
                vec![sep],
                vec![old_root, right],
            )));
            self.root = new_root;
            self.height += 1;
        }
        if !existed {
            self.len += 1;
        }
        self.cache_store(leaf);
        let visits = self.height;
        match &mut self.nodes[leaf as usize] {
            Node::Leaf(l) => SlotRef {
                value: &mut l.entries[slot].1,
                existed,
                visits,
            },
            Node::Inner(_) => unreachable!("upsert landed on an inner node"),
        }
    }

    #[allow(clippy::type_complexity)]
    fn upsert_rec<F>(
        &mut self,
        node: u32,
        key: K,
        rank: u64,
        make: F,
    ) -> (u32, usize, bool, Option<(K, u32)>)
    where
        F: FnOnce() -> V,
    {
        let child = match &self.nodes[node as usize] {
            Node::Inner(inner) => Some(inner.child_for(&key, rank)),
            Node::Leaf(_) => None,
        };
        match child {
            None => {
                let max_keys = self.max_keys;
                let leaf = match &mut self.nodes[node as usize] {
                    Node::Leaf(l) => l,
                    Node::Inner(_) => unreachable!(),
                };
                match leaf.search(&key, rank) {
                    Ok(i) => {
                        leaf.adapt();
                        (node, i, true, None)
                    }
                    Err(i) => {
                        leaf.insert_entry(i, key, make());
                        if leaf.len() <= max_keys {
                            leaf.adapt();
                            return (node, i, false, None);
                        }
                        // Split: right half to a fresh node; separator =
                        // first key of the right half (it stays in the
                        // leaf — B+ style).
                        let mid = leaf.len() / 2;
                        let r_entries = leaf.entries.split_off(mid);
                        leaf.heads.truncate(mid);
                        leaf.rebuild_meta();
                        leaf.hash = false;
                        *leaf.mix.get_mut() = 0;
                        let sep = r_entries[0].0.clone();
                        let in_right = i >= mid;
                        let slot = if in_right { i - mid } else { i };
                        let right = self.alloc(Node::Leaf(Leaf::from_sorted_parts(r_entries)));
                        let home = if in_right { right } else { node };
                        (home, slot, false, Some((sep, right)))
                    }
                }
            }
            Some(ci) => {
                let child_idx = match &self.nodes[node as usize] {
                    Node::Inner(inner) => inner.children[ci],
                    Node::Leaf(_) => unreachable!(),
                };
                let (leaf, slot, existed, split) = self.upsert_rec(child_idx, key, rank, make);
                let Some((sep, right)) = split else {
                    return (leaf, slot, existed, None);
                };
                let max_keys = self.max_keys;
                let inner = match &mut self.nodes[node as usize] {
                    Node::Inner(x) => x,
                    Node::Leaf(_) => unreachable!(),
                };
                inner.insert_sep(ci, sep, right);
                if inner.keys.len() <= max_keys {
                    return (leaf, slot, existed, None);
                }
                // Split internal: the middle key moves *up*.
                let mid = inner.keys.len() / 2;
                let r_keys = inner.keys.split_off(mid + 1);
                let sep_up = inner.keys.pop().expect("mid key exists");
                let r_children = inner.children.split_off(mid + 1);
                inner.rebuild_meta();
                let right_idx = self.alloc(Node::Inner(Inner::from_parts(r_keys, r_children)));
                (leaf, slot, existed, Some((sep_up, right_idx)))
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let rank = key.rank64();
        let (old, _) = self.remove_rec(self.root, key, rank);
        if old.is_some() {
            self.len -= 1;
        }
        // Collapse an empty internal root.
        if let Node::Inner(inner) = &self.nodes[self.root as usize] {
            if inner.keys.is_empty() {
                let only = inner.children[0];
                let old_root = self.root;
                self.root = only;
                self.height -= 1;
                self.free_node(old_root);
            }
        }
        old
    }

    fn remove_rec(&mut self, node: u32, key: &K, rank: u64) -> (Option<V>, bool) {
        let child = match &self.nodes[node as usize] {
            Node::Inner(inner) => Some(inner.child_for(key, rank)),
            Node::Leaf(_) => None,
        };
        match child {
            None => {
                let min = self.min_keys();
                match &mut self.nodes[node as usize] {
                    Node::Leaf(leaf) => match leaf.search(key, rank) {
                        Ok(i) => {
                            // A non-maximal shared prefix stays valid, so
                            // no head rebuild on remove.
                            leaf.heads.remove(i);
                            let (_, v) = leaf.entries.remove(i);
                            leaf.adapt();
                            (Some(v), leaf.len() < min)
                        }
                        Err(_) => (None, false),
                    },
                    Node::Inner(_) => unreachable!(),
                }
            }
            Some(i) => {
                let child_idx = match &self.nodes[node as usize] {
                    Node::Inner(inner) => inner.children[i],
                    Node::Leaf(_) => unreachable!(),
                };
                let (old, underflow) = self.remove_rec(child_idx, key, rank);
                if old.is_none() || !underflow {
                    return (old, false);
                }
                self.fix_underflow(node, i);
                let min = self.min_keys();
                let me_underflow = match &self.nodes[node as usize] {
                    Node::Inner(inner) => inner.keys.len() < min,
                    Node::Leaf(_) => unreachable!(),
                };
                (old, me_underflow)
            }
        }
    }

    /// Repairs child `i` of internal `node` after an underflow, by borrowing
    /// from an adjacent sibling or merging with it.
    fn fix_underflow(&mut self, node: u32, i: usize) {
        self.epoch += 1;
        let (child_idx, left_idx, right_idx) = match &self.nodes[node as usize] {
            Node::Inner(inner) => (
                inner.children[i],
                i.checked_sub(1).map(|j| inner.children[j]),
                inner.children.get(i + 1).copied(),
            ),
            Node::Leaf(_) => unreachable!(),
        };
        let min = self.min_keys();

        // Try borrowing from the left sibling.
        if let Some(l) = left_idx {
            if self.node_keys(l) > min {
                self.borrow_from_left(node, i, l, child_idx);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if let Some(r) = right_idx {
            if self.node_keys(r) > min {
                self.borrow_from_right(node, i, child_idx, r);
                return;
            }
        }
        // Merge with a sibling (left preferred).
        if let Some(l) = left_idx {
            self.merge_children(node, i - 1, l, child_idx);
        } else if let Some(r) = right_idx {
            self.merge_children(node, i, child_idx, r);
        }
    }

    fn node_keys(&self, idx: u32) -> usize {
        match &self.nodes[idx as usize] {
            Node::Inner(inner) => inner.keys.len(),
            Node::Leaf(leaf) => leaf.len(),
        }
    }

    /// Recomputes a node's head metadata (and hash sidecar) after a
    /// rebalance rearranged its keys.
    fn refresh_meta(&mut self, idx: u32) {
        match &mut self.nodes[idx as usize] {
            Node::Leaf(leaf) => {
                leaf.rebuild_meta();
                leaf.adapt();
            }
            Node::Inner(inner) => inner.rebuild_meta(),
        }
    }

    fn borrow_from_left(&mut self, parent: u32, sep_pos: usize, left: u32, child: u32) {
        // sep_pos is the index of `child` in parent.children; the separator
        // between left and child is parent.keys[sep_pos - 1].
        let sep_idx = sep_pos - 1;
        let is_leaf = matches!(self.nodes[child as usize], Node::Leaf(_));
        if is_leaf {
            let (k, v) = match &mut self.nodes[left as usize] {
                Node::Leaf(leaf) => {
                    leaf.heads.pop();
                    leaf.entries.pop().expect("donor non-empty")
                }
                Node::Inner(_) => unreachable!(),
            };
            let new_sep = k.clone();
            match &mut self.nodes[child as usize] {
                Node::Leaf(leaf) => leaf.entries.insert(0, (k, v)),
                Node::Inner(_) => unreachable!(),
            }
            match &mut self.nodes[parent as usize] {
                Node::Inner(inner) => inner.keys[sep_idx] = new_sep,
                Node::Leaf(_) => unreachable!(),
            }
        } else {
            // Rotate through the parent separator.
            let (donor_key, donor_child) = match &mut self.nodes[left as usize] {
                Node::Inner(inner) => {
                    inner.heads.pop();
                    (
                        inner.keys.pop().expect("donor"),
                        inner.children.pop().expect("donor"),
                    )
                }
                Node::Leaf(_) => unreachable!(),
            };
            let sep = match &mut self.nodes[parent as usize] {
                Node::Inner(inner) => std::mem::replace(&mut inner.keys[sep_idx], donor_key),
                Node::Leaf(_) => unreachable!(),
            };
            match &mut self.nodes[child as usize] {
                Node::Inner(inner) => {
                    inner.keys.insert(0, sep);
                    inner.children.insert(0, donor_child);
                }
                Node::Leaf(_) => unreachable!(),
            }
        }
        self.refresh_meta(left);
        self.refresh_meta(child);
        self.refresh_meta(parent);
    }

    fn borrow_from_right(&mut self, parent: u32, sep_pos: usize, child: u32, right: u32) {
        // Separator between child and right is parent.keys[sep_pos].
        let is_leaf = matches!(self.nodes[child as usize], Node::Leaf(_));
        if is_leaf {
            let (k, v) = match &mut self.nodes[right as usize] {
                Node::Leaf(leaf) => {
                    leaf.heads.remove(0);
                    leaf.entries.remove(0)
                }
                Node::Inner(_) => unreachable!(),
            };
            let new_sep = match &self.nodes[right as usize] {
                Node::Leaf(leaf) => leaf.key(0).clone(),
                Node::Inner(_) => unreachable!(),
            };
            match &mut self.nodes[child as usize] {
                Node::Leaf(leaf) => leaf.entries.push((k, v)),
                Node::Inner(_) => unreachable!(),
            }
            match &mut self.nodes[parent as usize] {
                Node::Inner(inner) => inner.keys[sep_pos] = new_sep,
                Node::Leaf(_) => unreachable!(),
            }
        } else {
            let (donor_key, donor_child) = match &mut self.nodes[right as usize] {
                Node::Inner(inner) => {
                    inner.heads.remove(0);
                    (inner.keys.remove(0), inner.children.remove(0))
                }
                Node::Leaf(_) => unreachable!(),
            };
            let sep = match &mut self.nodes[parent as usize] {
                Node::Inner(inner) => std::mem::replace(&mut inner.keys[sep_pos], donor_key),
                Node::Leaf(_) => unreachable!(),
            };
            match &mut self.nodes[child as usize] {
                Node::Inner(inner) => {
                    inner.keys.push(sep);
                    inner.children.push(donor_child);
                }
                Node::Leaf(_) => unreachable!(),
            }
        }
        self.refresh_meta(right);
        self.refresh_meta(child);
        self.refresh_meta(parent);
    }

    /// Merges children `left` and `right` (adjacent, separator at
    /// `parent.keys[sep_idx]`) into `left`.
    fn merge_children(&mut self, parent: u32, sep_idx: usize, left: u32, right: u32) {
        let sep = match &mut self.nodes[parent as usize] {
            Node::Inner(inner) => {
                inner.heads.remove(sep_idx);
                let sep = inner.keys.remove(sep_idx);
                inner.children.remove(sep_idx + 1);
                sep
            }
            Node::Leaf(_) => unreachable!(),
        };
        let right_node =
            std::mem::replace(&mut self.nodes[right as usize], Node::Leaf(Leaf::empty()));
        self.epoch += 1;
        self.free.push(right);
        match (&mut self.nodes[left as usize], right_node) {
            (Node::Leaf(leaf), Node::Leaf(r)) => {
                leaf.entries.extend(r.entries);
            }
            (Node::Inner(inner), Node::Inner(r)) => {
                inner.keys.push(sep);
                inner.keys.extend(r.keys);
                inner.children.extend(r.children);
            }
            _ => unreachable!("siblings are at the same level"),
        }
        self.refresh_meta(left);
        self.refresh_meta(parent);
    }

    /// In-order iteration over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            tree: self,
            stack: vec![(self.root, 0)],
        }
    }

    /// In-order iteration starting at the first key `>= start` — the range
    /// scan a database layer issues for `SELECT … WHERE k >= ?`.
    pub fn iter_from(&self, start: &K) -> Iter<'_, K, V> {
        let rank = start.rank64();
        // Build the descent stack: at each internal node, record the child
        // position we took; at the leaf, the first in-range entry index.
        let mut stack = Vec::new();
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Inner(inner) => {
                    let pos = inner.child_for(start, rank);
                    // Resume *after* child `pos` once it is exhausted.
                    stack.push((cur, pos + 1));
                    cur = inner.children[pos];
                }
                Node::Leaf(leaf) => {
                    let pos = match leaf.search(start, rank) {
                        Ok(i) | Err(i) => i,
                    };
                    stack.push((cur, pos));
                    break;
                }
            }
        }
        Iter { tree: self, stack }
    }

    /// All `(key, value)` pairs with `start <= key < end`.
    pub fn range<'a>(&'a self, start: &K, end: &'a K) -> impl Iterator<Item = (&'a K, &'a V)> {
        self.iter_from(start).take_while(move |(k, _)| *k < end)
    }

    /// Re-evaluates every leaf's hash-mode decision now instead of waiting
    /// for each leaf's next mutation — a maintenance sweep for quiescent
    /// moments (e.g. right after a snapshot scan flagged every leaf).
    pub fn apply_adaptation(&mut self) {
        for node in &mut self.nodes {
            if let Node::Leaf(leaf) = node {
                leaf.adapt();
            }
        }
    }

    /// Structural invariants for property tests: uniform depth, sorted keys,
    /// separator bounds, occupancy ≥ min for non-root nodes, `len`
    /// consistency — plus the slot-layout extras: head arrays matching the
    /// keys' prefix-truncated encodings, and hash sidecars resolving every
    /// resident key.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        let depth = self.check_rec(self.root, None, None, true, &mut count)?;
        if depth != self.height {
            return Err(format!("height {} but measured depth {depth}", self.height));
        }
        if count != self.len {
            return Err(format!("len {} but counted {count}", self.len));
        }
        Ok(())
    }

    fn check_heads(
        node: u32,
        heads: &[u32],
        keys: &[K],
        skip: u8,
        prefix: u64,
    ) -> Result<(), String> {
        if heads.len() != keys.len() {
            return Err(format!("node {node}: head/key arity mismatch"));
        }
        if skip > 8 {
            return Err(format!("node {node}: skip {skip} out of range"));
        }
        for (i, k) in keys.iter().enumerate() {
            let r = k.rank64();
            if be_prefix(r, skip) != prefix {
                return Err(format!("node {node}: key {i} outside stored prefix"));
            }
            if heads[i] != head_at(r, skip) {
                return Err(format!("node {node}: stale head at {i}"));
            }
        }
        Ok(())
    }

    fn check_rec(
        &self,
        node: u32,
        lo: Option<&K>,
        hi: Option<&K>,
        is_root: bool,
        count: &mut usize,
    ) -> Result<usize, String> {
        let in_bounds = |k: &K| lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k < h);
        match &self.nodes[node as usize] {
            Node::Leaf(leaf) => {
                if !is_root && leaf.len() < self.min_keys() {
                    return Err(format!("leaf {node}: underfull ({} keys)", leaf.len()));
                }
                if leaf.len() > self.max_keys {
                    return Err(format!("leaf {node}: overfull"));
                }
                if !leaf.entries.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(format!("leaf {node}: keys unsorted"));
                }
                if !leaf.entries.iter().all(|(k, _)| in_bounds(k)) {
                    return Err(format!("leaf {node}: key out of separator bounds"));
                }
                let keys: Vec<K> = leaf.entries.iter().map(|(k, _)| k.clone()).collect();
                Self::check_heads(node, &leaf.heads, &keys, leaf.skip, leaf.prefix)?;
                if leaf.hash {
                    if leaf.len() > INLINE_BUCKET_CAP {
                        return Err(format!(
                            "leaf {node}: hash mode past directory capacity ({} keys)",
                            leaf.len()
                        ));
                    }
                    for (i, (k, _)) in leaf.entries.iter().enumerate() {
                        if leaf.hash_find(k) != Some(i) {
                            return Err(format!("leaf {node}: hash directory misses key {i}"));
                        }
                    }
                }
                *count += leaf.len();
                Ok(1)
            }
            Node::Inner(inner) => {
                if inner.children.len() != inner.keys.len() + 1 {
                    return Err(format!("internal {node}: arity mismatch"));
                }
                if !is_root && inner.keys.len() < self.min_keys() {
                    return Err(format!("internal {node}: underfull"));
                }
                if inner.keys.len() > self.max_keys {
                    return Err(format!("internal {node}: overfull"));
                }
                if !inner.keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("internal {node}: keys unsorted"));
                }
                if !inner.keys.iter().all(in_bounds) {
                    return Err(format!("internal {node}: separator out of bounds"));
                }
                Self::check_heads(node, &inner.heads, &inner.keys, inner.skip, inner.prefix)?;
                let mut depth = None;
                for (i, &c) in inner.children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&inner.keys[i - 1]) };
                    let chi = if i == inner.keys.len() {
                        hi
                    } else {
                        Some(&inner.keys[i])
                    };
                    let d = self.check_rec(c, clo, chi, false, count)?;
                    if let Some(prev) = depth {
                        if prev != d {
                            return Err(format!("internal {node}: ragged depth"));
                        }
                    }
                    depth = Some(d);
                }
                Ok(depth.expect("internal has children") + 1)
            }
        }
    }
}

/// In-order iterator (depth-first through the arena).
///
/// Iteration counts as a scan: every leaf it yields from is flagged, so a
/// hash-mode leaf reverts to plain sorted mode at its next mutation.
pub struct Iter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    /// (node, next child/entry index) stack.
    stack: Vec<(u32, usize)>,
}

impl<'a, K: IndexKey, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, pos) = *self.stack.last()?;
            match &self.tree.nodes[node as usize] {
                Node::Leaf(leaf) => {
                    if pos < leaf.len() {
                        leaf.note_scan();
                        self.stack.last_mut().expect("non-empty").1 += 1;
                        let (k, v) = &leaf.entries[pos];
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Node::Inner(inner) => {
                    if pos < inner.children.len() {
                        self.stack.last_mut().expect("non-empty").1 += 1;
                        self.stack.push((inner.children[pos], 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_lookup_misses() {
        let t = BPlusTree::<u64, u32>::new(4);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_roundtrip_ascending() {
        let mut t = BPlusTree::new(4);
        for k in 0..1000u64 {
            assert_eq!(t.insert(k, k * 2), None);
        }
        for k in 0..1000u64 {
            assert_eq!(t.get(&k), Some(&(k * 2)));
        }
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_roundtrip_random_order() {
        let mut t = BPlusTree::new(5);
        let mut keys: Vec<u64> = (0..2000).collect();
        // Deterministic shuffle.
        let mut x = 3u64;
        for i in (1..keys.len()).rev() {
            x = p4lru_core_hash(x);
            keys.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for &k in &keys {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        for &k in &keys {
            assert_eq!(t.get(&k), Some(&k));
        }
        // In-order iteration is sorted.
        let collected: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..2000).collect::<Vec<_>>());
    }

    /// Local mix to avoid a dev-dependency cycle.
    fn p4lru_core_hash(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z ^ (z >> 31)
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut t = BPlusTree::new(4);
        assert_eq!(t.insert(7, 1), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&2));
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::new(4);
        for k in 0..10_000u64 {
            t.insert(k, ());
        }
        // Fan-out ≥ 3 after splits ⇒ height ≤ log3(10000)+2 ≈ 10.
        assert!(t.height() >= 4, "height {}", t.height());
        assert!(t.height() <= 12, "height {}", t.height());
        let (v, visits) = t.lookup(&5000);
        assert!(v.is_some());
        assert_eq!(visits, t.height());
    }

    #[test]
    fn remove_returns_value_and_shrinks() {
        let mut t = BPlusTree::new(4);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        for k in (0..500u64).step_by(2) {
            assert_eq!(t.remove(&k), Some(k));
            assert_eq!(t.remove(&k), None);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 250);
        for k in 0..500u64 {
            assert_eq!(t.get(&k).is_some(), k % 2 == 1);
        }
    }

    #[test]
    fn remove_everything_collapses_to_empty_root() {
        let mut t = BPlusTree::new(4);
        for k in 0..300u64 {
            t.insert(k, k);
        }
        for k in 0..300u64 {
            assert_eq!(t.remove(&k), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
        // And the tree is still usable.
        t.insert(42, 42);
        assert_eq!(t.get(&42), Some(&42));
        t.check_invariants().unwrap();
    }

    #[test]
    fn mixed_workload_keeps_invariants() {
        let mut t = BPlusTree::new(6);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 11u64;
        for step in 0..20_000u64 {
            x = p4lru_core_hash(x);
            let key = x % 700;
            if x & 3 == 0 {
                assert_eq!(t.remove(&key), model.remove(&key), "step {step}");
            } else {
                assert_eq!(t.insert(key, step), model.insert(key, step), "step {step}");
            }
            if step % 2500 == 0 {
                t.check_invariants().unwrap();
                assert_eq!(t.len(), model.len());
            }
        }
        t.check_invariants().unwrap();
        let got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn iter_from_resumes_mid_tree() {
        let mut t = BPlusTree::new(4);
        for k in (0..1000u64).step_by(2) {
            t.insert(k, k);
        }
        // Start at a present key.
        let got: Vec<u64> = t.iter_from(&100).take(5).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![100, 102, 104, 106, 108]);
        // Start between keys.
        let got: Vec<u64> = t.iter_from(&101).take(3).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![102, 104, 106]);
        // Start past the end.
        assert_eq!(t.iter_from(&10_000).count(), 0);
        // Start before the beginning covers everything.
        assert_eq!(t.iter_from(&0).count(), 500);
    }

    #[test]
    fn range_is_half_open() {
        let mut t = BPlusTree::new(5);
        for k in 0..100u64 {
            t.insert(k, k * 2);
        }
        let got: Vec<(u64, u64)> = t.range(&10, &15).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, vec![(10, 20), (11, 22), (12, 24), (13, 26), (14, 28)]);
        assert_eq!(t.range(&50, &50).count(), 0);
        assert_eq!(t.range(&95, &1000).count(), 5);
    }

    #[test]
    fn iter_from_matches_btreemap_on_random_data() {
        let mut t = BPlusTree::new(6);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 77u64;
        for i in 0..3000u64 {
            x = p4lru_core_hash(x);
            let k = x % 5000;
            t.insert(k, i);
            model.insert(k, i);
        }
        for probe in [0u64, 17, 999, 2500, 4999, 6000] {
            let got: Vec<u64> = t.iter_from(&probe).map(|(k, _)| *k).collect();
            let want: Vec<u64> = model.range(probe..).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "probe {probe}");
        }
    }

    #[test]
    fn large_fanout_lowers_height() {
        let build = |max_keys| {
            let mut t = BPlusTree::new(max_keys);
            for k in 0..50_000u64 {
                t.insert(k, ());
            }
            t.check_invariants().unwrap();
            t.height()
        };
        assert!(build(64) < build(4));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_fanout_rejected() {
        let _ = BPlusTree::<u64, ()>::new(2);
    }

    // ——— slot-layout additions ———

    #[test]
    fn from_sorted_matches_insert_built_tree() {
        for n in [0usize, 1, 3, 63, 64, 65, 1000, 4097] {
            let entries: Vec<(u64, u64)> = (0..n as u64).map(|k| (k * 3, k)).collect();
            let bulk = BPlusTree::from_sorted(64, entries.clone());
            bulk.check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            let mut built = BPlusTree::new(64);
            for &(k, v) in &entries {
                built.insert(k, v);
            }
            assert_eq!(bulk.len(), built.len(), "n={n}");
            let a: Vec<(u64, u64)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
            let b: Vec<(u64, u64)> = built.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(a, b, "n={n}");
            assert!(bulk.height() <= built.height(), "n={n}: bulk is denser");
        }
    }

    #[test]
    fn from_sorted_tail_rebalance_keeps_occupancy() {
        // n = k * max_keys + 1 leaves a 1-entry tail without the fix.
        for max_keys in [4usize, 5, 7, 64] {
            for tail in 1..=2usize {
                let n = 10 * max_keys + tail;
                let t = BPlusTree::from_sorted(max_keys, (0..n as u64).map(|k| (k, ())));
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("max_keys={max_keys} n={n}: {e}"));
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted_input() {
        let _ = BPlusTree::from_sorted(4, [(3u64, ()), (2, ())]);
    }

    #[test]
    fn from_sorted_tree_is_mutable_afterwards() {
        let mut t = BPlusTree::from_sorted(8, (0..1000u64).map(|k| (k * 2, k)));
        for k in 0..500u64 {
            t.insert(k * 2 + 1, k);
        }
        for k in (0..2000u64).step_by(3) {
            t.remove(&k);
        }
        t.check_invariants().unwrap();
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let mut model: std::collections::BTreeSet<u64> =
            (0..2000u64).filter(|k| *k < 1000 || k % 2 == 0).collect();
        model.retain(|k| k % 3 != 0);
        assert_eq!(keys, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn get_or_insert_with_is_single_walk_upsert() {
        let mut t = BPlusTree::new(8);
        let slot = t.get_or_insert_with(10u64, || 1);
        assert!(!slot.existed);
        assert_eq!(*slot.value, 1);
        let slot = t.get_or_insert_with(10u64, || unreachable!("key exists"));
        assert!(slot.existed);
        assert_eq!(slot.visits, 1, "single-leaf tree: one visit");
        *slot.value = 5;
        assert_eq!(t.get(&10), Some(&5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_hot_hits_cost_one_visit() {
        let t = BPlusTree::from_sorted(8, (0..10_000u64).map(|k| (k, k)));
        assert!(t.height() > 2);
        let (_, cold) = t.lookup_hot(&5000);
        assert_eq!(cold, t.height(), "first touch walks the tree");
        let before = t.descent_hits();
        let (v, hot) = t.lookup_hot(&5000);
        assert_eq!(v, Some(&5000));
        assert_eq!(hot, 1, "repeat lands in the cached leaf");
        assert_eq!(t.descent_hits(), before + 1);
        // A miss inside the cached leaf's span is decidable in one visit
        // too — but only via the hot path; `lookup` still walks fully.
        let (_, visits) = t.lookup(&5000);
        assert_eq!(visits, t.height());
    }

    #[test]
    fn descent_cache_survives_rebalances_correctly() {
        let mut t = BPlusTree::new(4);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        // Warm the cache on one leaf, then force merges/borrows around it.
        assert_eq!(t.lookup_hot(&250).0, Some(&250));
        assert_eq!(t.lookup_hot(&250).0, Some(&250));
        for k in 200..300u64 {
            if k != 250 {
                t.remove(&k);
            }
        }
        t.check_invariants().unwrap();
        // The cached leaf index is stale now; answers must stay right.
        assert_eq!(t.lookup_hot(&250).0, Some(&250));
        assert_eq!(t.lookup_hot(&299).0, None);
        assert_eq!(t.lookup_hot(&199).0, Some(&199));
        t.remove(&250);
        assert_eq!(t.lookup_hot(&250).0, None);
    }

    #[test]
    fn hash_mode_flips_on_point_streak_and_reverts_on_scan() {
        let mut t = BPlusTree::from_sorted(16, (0..12u64).map(|k| (k, k)));
        let leaf_of = |t: &BPlusTree<u64, u64>| match &t.nodes[t.root as usize] {
            Node::Leaf(l) => (l.hash, l.mix.load(Relaxed)),
            Node::Inner(_) => panic!("single-leaf tree expected"),
        };
        assert!(!leaf_of(&t).0, "starts in sorted mode");
        for _ in 0..(FLIP_STREAK + 2) {
            assert_eq!(t.get(&7), Some(&7));
        }
        t.insert(100, 100); // mutation applies the pending flip
        assert!(leaf_of(&t).0, "point streak flips to hash mode");
        t.check_invariants().unwrap();
        for k in 0..12u64 {
            assert_eq!(t.get(&k), Some(&k));
        }
        assert_eq!(t.get(&100), Some(&100));
        // A scan flags the leaf; the next mutation drops the sidecar.
        assert_eq!(t.range(&0, &5).count(), 5);
        t.insert(101, 101);
        assert!(!leaf_of(&t).0, "scan touch reverts to sorted mode");
        t.check_invariants().unwrap();
    }

    #[test]
    fn apply_adaptation_flips_without_a_mutation() {
        let mut t = BPlusTree::from_sorted(16, (0..16u64).map(|k| (k, k)));
        for _ in 0..(FLIP_STREAK + 2) {
            assert_eq!(t.get(&3), Some(&3));
        }
        t.apply_adaptation();
        match &t.nodes[t.root as usize] {
            Node::Leaf(l) => assert!(l.hash),
            Node::Inner(_) => panic!("single-leaf tree expected"),
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn signed_and_narrow_keys_work() {
        let mut t = BPlusTree::new(8);
        let keys: Vec<i32> = vec![i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for &k in &keys {
            t.insert(k, i64::from(k));
        }
        t.check_invariants().unwrap();
        let got: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, keys, "signed keys iterate in order");
        for &k in &keys {
            assert_eq!(t.get(&k), Some(&i64::from(k)));
        }

        let mut t = BPlusTree::new(4);
        for k in (0..=u16::MAX).step_by(7) {
            t.insert(k, ());
        }
        t.check_invariants().unwrap();
        assert_eq!(t.get(&7), Some(&()));
        assert_eq!(t.get(&8), None);
    }

    #[test]
    fn heads_discriminate_dense_keys() {
        // The regression this layout exists for: dense u64 keys must get
        // non-degenerate heads via prefix truncation.
        let t = BPlusTree::from_sorted(64, (0..100_000u64).map(|k| (k, ())));
        t.check_invariants().unwrap();
        let mut saw_discriminating_leaf = false;
        for node in &t.nodes {
            if let Node::Leaf(leaf) = node {
                if leaf.len() > 1 {
                    let distinct: std::collections::BTreeSet<u32> =
                        leaf.heads.iter().copied().collect();
                    assert_eq!(
                        distinct.len(),
                        leaf.heads.len(),
                        "dense consecutive keys must have fully distinct heads"
                    );
                    saw_discriminating_leaf = true;
                }
            }
        }
        assert!(saw_discriminating_leaf);
    }
}
