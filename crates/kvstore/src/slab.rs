//! Slab store with 48-bit record addresses.
//!
//! LruIndex caches "the index (specifically, the 48-bit memory address) of
//! the key in the database … values of variable lengths (64 bytes in our
//! configuration)" (§3.2). [`SlabStore`] is that record heap: fixed 64-byte
//! records, addressed by [`Addr48`], O(1) reads by address.

/// Record size in bytes (the paper's configuration).
pub const VALUE_SIZE: usize = 64;

/// A 48-bit record address — what LruIndex caches on the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr48(u64);

impl Addr48 {
    /// Maximum representable address.
    pub const MAX: u64 = (1 << 48) - 1;

    /// Wraps a raw address.
    ///
    /// # Panics
    /// Panics if `raw` does not fit in 48 bits.
    pub fn new(raw: u64) -> Self {
        assert!(raw <= Self::MAX, "address {raw:#x} exceeds 48 bits");
        Self(raw)
    }

    /// The raw 48-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One fixed-size record.
pub type Record = [u8; VALUE_SIZE];

/// Append-oriented record heap with free-list reuse.
#[derive(Clone, Debug, Default)]
pub struct SlabStore {
    records: Vec<Record>,
    free: Vec<u64>,
}

impl SlabStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates space for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            records: Vec::with_capacity(n),
            free: Vec::new(),
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len() - self.free.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores a record, returning its address.
    pub fn insert(&mut self, record: Record) -> Addr48 {
        if let Some(slot) = self.free.pop() {
            self.records[slot as usize] = record;
            Addr48::new(slot)
        } else {
            self.records.push(record);
            Addr48::new(self.records.len() as u64 - 1)
        }
    }

    /// Reads the record at `addr` — the O(1) path a cached index unlocks.
    ///
    /// # Panics
    /// Panics if the address was never allocated.
    pub fn get(&self, addr: Addr48) -> &Record {
        &self.records[addr.raw() as usize]
    }

    /// Overwrites the record at `addr`.
    pub fn set(&mut self, addr: Addr48, record: Record) {
        self.records[addr.raw() as usize] = record;
    }

    /// Releases a record slot for reuse. The caller owns the invariant that
    /// no live address still points at it.
    pub fn remove(&mut self, addr: Addr48) {
        self.free.push(addr.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: u8) -> Record {
        let mut r = [0u8; VALUE_SIZE];
        r[0] = tag;
        r[VALUE_SIZE - 1] = tag ^ 0xFF;
        r
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut s = SlabStore::new();
        let a = s.insert(rec(1));
        let b = s.insert(rec(2));
        assert_ne!(a, b);
        assert_eq!(s.get(a)[0], 1);
        assert_eq!(s.get(b)[0], 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = SlabStore::new();
        let a = s.insert(rec(1));
        s.insert(rec(2));
        s.remove(a);
        assert_eq!(s.len(), 1);
        let c = s.insert(rec(3));
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(s.get(c)[0], 3);
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut s = SlabStore::new();
        let a = s.insert(rec(1));
        s.set(a, rec(9));
        assert_eq!(s.get(a)[0], 9);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn addr48_bounds() {
        assert_eq!(Addr48::new(0).raw(), 0);
        assert_eq!(Addr48::new(Addr48::MAX).raw(), Addr48::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn addr48_rejects_wide_values() {
        let _ = Addr48::new(1 << 48);
    }
}
