//! The assembled database: B+Tree index over the slab store, plus the
//! service-time model used by the LruIndex throughput experiments.

use crate::btree::BPlusTree;
use crate::slab::{Addr48, Record, SlabStore, VALUE_SIZE};

/// Default B+Tree fan-out used across the workspace. 64 keys per node keeps
/// a 1M-key index at height 4 (vs 6 at the old 32) while a node's head
/// array still spans only four cache lines.
pub const DEFAULT_MAX_KEYS: usize = 64;

/// Per-node-visit cost of an index walk, in nanoseconds. A cache-missing
/// pointer chase in DRAM is ≈100 ns; binary search within a node adds a
/// little.
pub const NODE_VISIT_NS: u64 = 120;

/// Cost of reading a 64-byte record by direct address, in nanoseconds.
pub const RECORD_READ_NS: u64 = 100;

/// Fixed per-request server overhead (parsing, syscalls, reply build), ns.
pub const REQUEST_OVERHEAD_NS: u64 = 1_000;

/// A key-value database: `u64` keys → 64-byte records, indexed by a B+Tree
/// whose leaves hold [`Addr48`] record addresses.
///
/// ```
/// use p4lru_kvstore::db::Database;
///
/// let db = Database::populate(10_000);
/// let slow = db.lookup_by_key(77).unwrap();   // walks the index
/// let fast = db.lookup_by_addr(slow.addr);    // what a cached index unlocks
/// assert_eq!(slow.record, fast);
/// assert!(db.service_ns_indexed() < db.service_ns_unindexed());
/// ```
#[derive(Clone, Debug)]
pub struct Database {
    index: BPlusTree<u64, Addr48>,
    store: SlabStore,
}

/// Result of a keyed lookup: the record plus the cost drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup<'a> {
    /// The record's address (what LruIndex would cache).
    pub addr: Addr48,
    /// The record contents.
    pub record: &'a Record,
    /// B+Tree nodes visited to find the address.
    pub index_visits: usize,
}

/// Result of an upsert: where the record landed and what the single index
/// walk cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Upserted {
    /// The record's address (stable across overwrites of an existing key).
    pub addr: Addr48,
    /// Whether the key already existed (the write was an in-place
    /// overwrite rather than a fresh insert).
    pub existed: bool,
    /// B+Tree nodes visited by the combined find-or-insert walk.
    pub index_visits: usize,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_KEYS)
    }
}

impl Database {
    /// An empty database with the given index fan-out.
    pub fn new(max_keys: usize) -> Self {
        Self {
            index: BPlusTree::new(max_keys),
            store: SlabStore::new(),
        }
    }

    /// Builds a database with `items` records keyed `0..items`, each record
    /// derived deterministically from its key. Keys are already sorted, so
    /// the index is bulk-loaded bottom-up with full leaves.
    pub fn populate(items: u64) -> Self {
        Self::from_sorted_entries((0..items).map(|key| (key, record_for(key))))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index height (lookup cost in node visits).
    pub fn index_height(&self) -> usize {
        self.index.height()
    }

    /// Lookups the index answered from its descent cache (~1 node visit
    /// instead of a full walk) since this database was built.
    pub fn index_descent_hits(&self) -> u64 {
        self.index.descent_hits()
    }

    /// Applies any pending leaf-mode adaptations in the index now (e.g.
    /// after a snapshot scan flagged every leaf as scanned). Cheap; meant
    /// for quiescent moments like post-snapshot seal.
    pub fn optimize_index(&mut self) {
        self.index.apply_adaptation();
    }

    /// Inserts or overwrites `key`, returning the prior address if the key
    /// existed. A thin wrapper over [`Self::upsert`].
    pub fn insert(&mut self, key: u64, record: Record) -> Option<Addr48> {
        let u = self.upsert(key, record);
        u.existed.then_some(u.addr)
    }

    /// Inserts or overwrites `key` with a **single** index walk.
    ///
    /// The seed-era `insert` walked the index twice — once to probe for the
    /// key, once to insert it. This resolves the slot with one
    /// find-or-insert descent: a fresh key allocates its record on the way
    /// down; an existing key overwrites its record in place.
    pub fn upsert(&mut self, key: u64, record: Record) -> Upserted {
        let store = &mut self.store;
        let mut carry = Some(record);
        let slot = self
            .index
            .get_or_insert_with(key, || store.insert(carry.take().expect("fresh key")));
        let addr = *slot.value;
        let existed = slot.existed;
        let index_visits = slot.visits;
        if let Some(record) = carry {
            store.set(addr, record);
        }
        Upserted {
            addr,
            existed,
            index_visits,
        }
    }

    /// Keyed lookup through the index (the slow path a cache miss takes).
    /// Uses the descent cache, so a run of lookups hitting the same leaf
    /// costs ~1 node visit each after the first.
    pub fn lookup_by_key(&self, key: u64) -> Option<Lookup<'_>> {
        let (addr, visits) = self.index.lookup_hot(&key);
        let addr = *addr?;
        Some(Lookup {
            addr,
            record: self.store.get(addr),
            index_visits: visits,
        })
    }

    /// Direct read by cached address (the fast path a cache hit takes).
    pub fn lookup_by_addr(&self, addr: Addr48) -> &Record {
        self.store.get(addr)
    }

    /// Iterates every `(key, record)` pair in ascending key order.
    ///
    /// This is the serialization hook the durability subsystem snapshots
    /// through: a full, ordered scan of the store without exposing the
    /// index or slab internals.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Record)> + '_ {
        self.index
            .iter()
            .map(|(key, addr)| (*key, self.store.get(*addr)))
    }

    /// Builds a database from `(key, record)` pairs (deserialization hook —
    /// the slab assigns fresh addresses, so only the contents round-trip,
    /// not the physical layout). Later duplicates win, matching an
    /// insert-loop replay. Sorts once, then bulk-loads the index.
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Record)>) -> Self {
        let mut entries: Vec<(u64, Record)> = entries.into_iter().collect();
        entries.sort_by_key(|&(k, _)| k);
        // Keep the *last* record per key: scan reversed so the survivor of
        // each duplicate run is the latest entry, then restore order.
        entries.reverse();
        entries.dedup_by_key(|&mut (k, _)| k);
        entries.reverse();
        Self::from_sorted_entries(entries)
    }

    /// Builds a database from `(key, record)` pairs already in strictly
    /// ascending key order — the snapshot-recovery fast path (snapshots are
    /// written from [`Self::iter`], which is ordered). The index is built
    /// bottom-up with full leaves instead of one descent per key. Falls
    /// back to [`Self::from_entries`] if the input turns out unsorted
    /// (defensive: snapshot files cross a serialization boundary).
    pub fn from_sorted_entries(entries: impl IntoIterator<Item = (u64, Record)>) -> Self {
        let entries: Vec<(u64, Record)> = entries.into_iter().collect();
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Self::from_entries(entries);
        }
        let mut store = SlabStore::new();
        let pairs: Vec<(u64, Addr48)> = entries
            .into_iter()
            .map(|(key, record)| (key, store.insert(record)))
            .collect();
        Self {
            index: BPlusTree::from_sorted(DEFAULT_MAX_KEYS, pairs),
            store,
        }
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(addr) => {
                self.store.remove(addr);
                true
            }
            None => false,
        }
    }

    /// Service time of a request whose index walk was *skipped* thanks to a
    /// cached address.
    pub fn service_ns_indexed(&self) -> u64 {
        REQUEST_OVERHEAD_NS + RECORD_READ_NS
    }

    /// Service time of a request that must walk the index.
    pub fn service_ns_unindexed(&self) -> u64 {
        REQUEST_OVERHEAD_NS + self.index_height() as u64 * NODE_VISIT_NS + RECORD_READ_NS
    }
}

/// Deterministic record contents for key `k` (checkable by tests).
pub fn record_for(k: u64) -> Record {
    let mut r = [0u8; VALUE_SIZE];
    r[..8].copy_from_slice(&k.to_le_bytes());
    r[8..16].copy_from_slice(&p4lru_core::hashing::mix64(k).to_le_bytes());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_and_lookup() {
        let db = Database::populate(10_000);
        assert_eq!(db.len(), 10_000);
        let l = db.lookup_by_key(1234).expect("key exists");
        assert_eq!(l.record, &record_for(1234));
        assert_eq!(l.index_visits, db.index_height());
        assert_eq!(db.lookup_by_key(99_999), None);
    }

    #[test]
    fn cached_address_reads_same_record() {
        let db = Database::populate(1000);
        let l = db.lookup_by_key(77).unwrap();
        assert_eq!(db.lookup_by_addr(l.addr), &record_for(77));
    }

    #[test]
    fn indexed_path_is_cheaper_and_gap_grows_with_db_size() {
        let small = Database::populate(1_000);
        let large = Database::populate(100_000);
        assert!(small.service_ns_indexed() < small.service_ns_unindexed());
        // Bigger databases have taller indexes, so caching saves more —
        // the driver of Figure 10(b)'s speedup-vs-items trend.
        let gap_small = small.service_ns_unindexed() - small.service_ns_indexed();
        let gap_large = large.service_ns_unindexed() - large.service_ns_indexed();
        assert!(gap_large > gap_small, "gap {gap_small} → {gap_large}");
    }

    #[test]
    fn insert_overwrites_in_place() {
        let mut db = Database::new(8);
        db.insert(5, record_for(5));
        let addr1 = db.lookup_by_key(5).unwrap().addr;
        let replaced = db.insert(5, record_for(6));
        assert_eq!(replaced, Some(addr1));
        assert_eq!(db.lookup_by_key(5).unwrap().record, &record_for(6));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_frees_key_and_slot() {
        let mut db = Database::new(8);
        for k in 0..100 {
            db.insert(k, record_for(k));
        }
        assert!(db.remove(50));
        assert!(!db.remove(50));
        assert_eq!(db.lookup_by_key(50), None);
        assert_eq!(db.len(), 99);
    }

    #[test]
    fn record_for_is_deterministic_and_distinct() {
        assert_eq!(record_for(1), record_for(1));
        assert_ne!(record_for(1), record_for(2));
    }

    #[test]
    fn upsert_reports_existence_and_single_walk_cost() {
        let mut db = Database::new(8);
        let first = db.upsert(9, record_for(9));
        assert!(!first.existed);
        let again = db.upsert(9, record_for(10));
        assert!(again.existed);
        assert_eq!(again.addr, first.addr, "overwrite keeps the address");
        assert_eq!(again.index_visits, db.index_height());
        assert_eq!(db.lookup_by_key(9).unwrap().record, &record_for(10));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn from_sorted_entries_falls_back_on_unsorted_input() {
        let entries = vec![
            (5u64, record_for(5)),
            (1, record_for(1)),
            (3, record_for(3)),
        ];
        let db = Database::from_sorted_entries(entries);
        assert_eq!(db.len(), 3);
        let keys: Vec<u64> = db.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(db.lookup_by_key(5).unwrap().record, &record_for(5));
    }

    #[test]
    fn from_entries_keeps_the_last_duplicate() {
        let entries = vec![
            (2u64, record_for(20)),
            (1, record_for(1)),
            (2, record_for(21)),
        ];
        let db = Database::from_entries(entries);
        assert_eq!(db.len(), 2);
        assert_eq!(db.lookup_by_key(2).unwrap().record, &record_for(21));
    }
}
