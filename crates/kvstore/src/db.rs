//! The assembled database: B+Tree index over the slab store, plus the
//! service-time model used by the LruIndex throughput experiments.

use crate::btree::BPlusTree;
use crate::slab::{Addr48, Record, SlabStore, VALUE_SIZE};

/// Default B+Tree fan-out used across the workspace.
pub const DEFAULT_MAX_KEYS: usize = 32;

/// Per-node-visit cost of an index walk, in nanoseconds. A cache-missing
/// pointer chase in DRAM is ≈100 ns; binary search within a node adds a
/// little.
pub const NODE_VISIT_NS: u64 = 120;

/// Cost of reading a 64-byte record by direct address, in nanoseconds.
pub const RECORD_READ_NS: u64 = 100;

/// Fixed per-request server overhead (parsing, syscalls, reply build), ns.
pub const REQUEST_OVERHEAD_NS: u64 = 1_000;

/// A key-value database: `u64` keys → 64-byte records, indexed by a B+Tree
/// whose leaves hold [`Addr48`] record addresses.
///
/// ```
/// use p4lru_kvstore::db::Database;
///
/// let db = Database::populate(10_000);
/// let slow = db.lookup_by_key(77).unwrap();   // walks the index
/// let fast = db.lookup_by_addr(slow.addr);    // what a cached index unlocks
/// assert_eq!(slow.record, fast);
/// assert!(db.service_ns_indexed() < db.service_ns_unindexed());
/// ```
#[derive(Clone, Debug)]
pub struct Database {
    index: BPlusTree<u64, Addr48>,
    store: SlabStore,
}

/// Result of a keyed lookup: the record plus the cost drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup<'a> {
    /// The record's address (what LruIndex would cache).
    pub addr: Addr48,
    /// The record contents.
    pub record: &'a Record,
    /// B+Tree nodes visited to find the address.
    pub index_visits: usize,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_KEYS)
    }
}

impl Database {
    /// An empty database with the given index fan-out.
    pub fn new(max_keys: usize) -> Self {
        Self {
            index: BPlusTree::new(max_keys),
            store: SlabStore::new(),
        }
    }

    /// Builds a database with `items` records keyed `0..items`, each record
    /// derived deterministically from its key.
    pub fn populate(items: u64) -> Self {
        let mut db = Self::new(DEFAULT_MAX_KEYS);
        for key in 0..items {
            db.insert(key, record_for(key));
        }
        db
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Index height (lookup cost in node visits).
    pub fn index_height(&self) -> usize {
        self.index.height()
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: u64, record: Record) -> Option<Addr48> {
        if let Some(&addr) = self.index.get(&key) {
            self.store.set(addr, record);
            return Some(addr);
        }
        let addr = self.store.insert(record);
        self.index.insert(key, addr);
        None
    }

    /// Keyed lookup through the index (the slow path a cache miss takes).
    pub fn lookup_by_key(&self, key: u64) -> Option<Lookup<'_>> {
        let (addr, visits) = self.index.lookup(&key);
        let addr = *addr?;
        Some(Lookup {
            addr,
            record: self.store.get(addr),
            index_visits: visits,
        })
    }

    /// Direct read by cached address (the fast path a cache hit takes).
    pub fn lookup_by_addr(&self, addr: Addr48) -> &Record {
        self.store.get(addr)
    }

    /// Iterates every `(key, record)` pair in ascending key order.
    ///
    /// This is the serialization hook the durability subsystem snapshots
    /// through: a full, ordered scan of the store without exposing the
    /// index or slab internals.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Record)> + '_ {
        self.index
            .iter()
            .map(|(key, addr)| (*key, self.store.get(*addr)))
    }

    /// Builds a database from `(key, record)` pairs (deserialization hook —
    /// the slab assigns fresh addresses, so only the contents round-trip,
    /// not the physical layout).
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Record)>) -> Self {
        let mut db = Self::default();
        for (key, record) in entries {
            db.insert(key, record);
        }
        db
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.remove(&key) {
            Some(addr) => {
                self.store.remove(addr);
                true
            }
            None => false,
        }
    }

    /// Service time of a request whose index walk was *skipped* thanks to a
    /// cached address.
    pub fn service_ns_indexed(&self) -> u64 {
        REQUEST_OVERHEAD_NS + RECORD_READ_NS
    }

    /// Service time of a request that must walk the index.
    pub fn service_ns_unindexed(&self) -> u64 {
        REQUEST_OVERHEAD_NS + self.index_height() as u64 * NODE_VISIT_NS + RECORD_READ_NS
    }
}

/// Deterministic record contents for key `k` (checkable by tests).
pub fn record_for(k: u64) -> Record {
    let mut r = [0u8; VALUE_SIZE];
    r[..8].copy_from_slice(&k.to_le_bytes());
    r[8..16].copy_from_slice(&p4lru_core::hashing::mix64(k).to_le_bytes());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_and_lookup() {
        let db = Database::populate(10_000);
        assert_eq!(db.len(), 10_000);
        let l = db.lookup_by_key(1234).expect("key exists");
        assert_eq!(l.record, &record_for(1234));
        assert_eq!(l.index_visits, db.index_height());
        assert_eq!(db.lookup_by_key(99_999), None);
    }

    #[test]
    fn cached_address_reads_same_record() {
        let db = Database::populate(1000);
        let l = db.lookup_by_key(77).unwrap();
        assert_eq!(db.lookup_by_addr(l.addr), &record_for(77));
    }

    #[test]
    fn indexed_path_is_cheaper_and_gap_grows_with_db_size() {
        let small = Database::populate(1_000);
        let large = Database::populate(100_000);
        assert!(small.service_ns_indexed() < small.service_ns_unindexed());
        // Bigger databases have taller indexes, so caching saves more —
        // the driver of Figure 10(b)'s speedup-vs-items trend.
        let gap_small = small.service_ns_unindexed() - small.service_ns_indexed();
        let gap_large = large.service_ns_unindexed() - large.service_ns_indexed();
        assert!(gap_large > gap_small, "gap {gap_small} → {gap_large}");
    }

    #[test]
    fn insert_overwrites_in_place() {
        let mut db = Database::new(8);
        db.insert(5, record_for(5));
        let addr1 = db.lookup_by_key(5).unwrap().addr;
        let replaced = db.insert(5, record_for(6));
        assert_eq!(replaced, Some(addr1));
        assert_eq!(db.lookup_by_key(5).unwrap().record, &record_for(6));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_frees_key_and_slot() {
        let mut db = Database::new(8);
        for k in 0..100 {
            db.insert(k, record_for(k));
        }
        assert!(db.remove(50));
        assert!(!db.remove(50));
        assert_eq!(db.lookup_by_key(50), None);
        assert_eq!(db.len(), 99);
    }

    #[test]
    fn record_for_is_deterministic_and_distinct() {
        assert_eq!(record_for(1), record_for(1));
        assert_ne!(record_for(1), record_for(2));
    }
}
