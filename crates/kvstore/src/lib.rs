//! # p4lru-kvstore
//!
//! The database substrate behind LruIndex (paper §3.2).
//!
//! LruIndex does not cache key-value pairs (that is NetCache); it caches the
//! database *index* — the 48-bit memory address of a key's record — so the
//! server can skip its index walk on a cache hit and read the record
//! directly. Reproducing that speedup therefore needs a database with a real
//! index whose traversal cost is observable:
//!
//! * [`btree`] — an arena-allocated B+Tree (insert, lookup, delete with
//!   rebalancing) that reports how many nodes each lookup visits, with a
//!   slot layout built for raw lookup speed (head arrays with per-node
//!   prefix truncation, adaptive hash leaves, a descent cache, and sorted
//!   bulk load — DESIGN.md §13);
//! * [`key`] — the [`key::IndexKey`] projection those slot layouts are
//!   derived from;
//! * [`slab`] — a slab store of fixed 64-byte records addressed by
//!   [`slab::Addr48`] (the paper's 48-bit index, 64-byte values);
//! * [`db`] — the two glued together, with the service-time model used by
//!   the throughput experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod db;
pub mod key;
pub mod slab;

pub use btree::{BPlusTree, SlotRef};
pub use db::Database;
pub use key::IndexKey;
pub use slab::{Addr48, Record, SlabStore, VALUE_SIZE};
