//! Checked wrappers over the vendored `libc` shim.
//!
//! This is the only module in the crate that uses `unsafe`. Every wrapper
//! turns the C error convention (negative return + `errno`) into
//! `io::Result`, and every pointer handed to the kernel comes from a live
//! Rust reference, so callers above this module stay entirely safe.

use std::io;
use std::os::unix::io::RawFd;

/// One raw epoll readiness record (re-exported so [`crate::poll`] can size
/// its event buffer without touching `libc` directly).
pub(crate) type RawEvent = libc::epoll_event;

fn cvt(rc: libc::c_int) -> io::Result<libc::c_int> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

/// Creates a close-on-exec epoll instance.
pub(crate) fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the kernel validates the flag.
    cvt(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })
}

/// Adds, modifies, or removes `fd` in the interest list of `epfd`.
pub(crate) fn epoll_ctl(
    epfd: RawFd,
    op: libc::c_int,
    fd: RawFd,
    events: u32,
    token: u64,
) -> io::Result<()> {
    let mut ev = libc::epoll_event { events, u64: token };
    // SAFETY: `ev` is a live stack value for the duration of the call; the
    // kernel copies it and validates the fds.
    cvt(unsafe { libc::epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness; fills `buf` and returns the number of records.
/// `timeout_ms` of -1 blocks indefinitely. `EINTR` is surfaced as `Ok(0)`
/// (an empty turn) so callers simply loop.
pub(crate) fn epoll_wait(epfd: RawFd, buf: &mut [RawEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `buf` is a live, writable slice and its length bounds the
    // kernel's writes via `maxevents`.
    let rc =
        unsafe { libc::epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as libc::c_int, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Creates a nonblocking close-on-exec eventfd with counter 0.
pub(crate) fn eventfd_new() -> io::Result<RawFd> {
    // SAFETY: no pointers involved.
    cvt(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) })
}

/// Adds 1 to the eventfd counter, waking any `epoll_wait` watching it.
/// A full counter (`EAGAIN`) already guarantees a pending wakeup, so it is
/// not an error.
pub(crate) fn eventfd_write(fd: RawFd) {
    let one: u64 = 1;
    // SAFETY: `one` is a live 8-byte value, the size eventfd requires.
    let _ = unsafe { libc::write(fd, (&one as *const u64).cast(), 8) };
}

/// Drains the eventfd counter to zero. The fd is nonblocking, so this is a
/// single read that either collects the whole counter or finds it empty.
pub(crate) fn eventfd_drain(fd: RawFd) {
    let mut buf: u64 = 0;
    // SAFETY: `buf` is a live 8-byte buffer, the size eventfd requires.
    let _ = unsafe { libc::read(fd, (&mut buf as *mut u64).cast(), 8) };
}

/// Closes a raw fd (epoll and eventfd fds are not wrapped in std types).
pub(crate) fn close_fd(fd: RawFd) {
    // SAFETY: callers only pass fds they own exactly once (Drop impls).
    let _ = unsafe { libc::close(fd) };
}

/// Returns the current `(soft, hard)` open-file-descriptor limit.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a live struct the kernel fills.
    cvt(unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) })?;
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Best-effort raise of the open-file soft limit to at least `want` fds.
///
/// Privileged processes can raise the hard limit too (needed to hold 10k+
/// connections when the inherited hard limit is low); unprivileged ones are
/// clamped to the existing hard limit. Returns the soft limit now in
/// effect — callers decide whether that is enough for their fan-out.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let raised = libc::rlimit {
        rlim_cur: want,
        rlim_max: hard.max(want),
    };
    // SAFETY: `raised` is a live struct the kernel copies.
    if cvt(unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &raised) }).is_ok() {
        return Ok(want);
    }
    // Raising the hard limit needs privilege; fall back to soft = hard.
    let clamped = libc::rlimit {
        rlim_cur: want.min(hard),
        rlim_max: hard,
    };
    // SAFETY: as above.
    cvt(unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &clamped) })?;
    Ok(clamped.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_is_sane() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
    }

    #[test]
    fn raise_nofile_is_monotone() {
        let (soft, _) = nofile_limit().unwrap();
        let now = raise_nofile_limit(soft).unwrap();
        assert!(now >= soft);
    }
}
