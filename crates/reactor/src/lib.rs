//! Event-driven connection engine for the P4LRU cache service.
//!
//! The thread-per-connection front-end in `p4lru-server` spends one pump
//! thread per client, which caps a single process at hundreds of
//! connections. This crate provides the machinery to break that wall: a
//! small pool of I/O threads, each owning one epoll instance, multiplexing
//! thousands of nonblocking connections through per-connection state
//! machines ([`Driver`]s).
//!
//! The crate is deliberately protocol-agnostic — it knows nothing about
//! frames, shards, or caches. `p4lru-server` layers its existing resumable
//! `FrameReader`/`FrameWriter` and reorder-buffer machinery on top as a
//! [`Driver`] implementation.
//!
//! Layers, bottom up:
//!
//! - [`sys`] — the only module with `unsafe`: thin checked wrappers over the
//!   vendored `libc` shim (epoll, eventfd, rlimit).
//! - [`poll`] — [`poll::Epoll`]: safe edge- or level-triggered registration
//!   and readiness harvesting.
//! - [`wake`] — [`wake::Waker`]: an eventfd that other threads write to pull
//!   an I/O thread out of `epoll_wait` (used when shard replies land).
//! - [`reactor`] — [`Reactor`]: the I/O thread pool, per-connection message
//!   mailboxes, deadline scheduling, and loop statistics.
//! - [`stream`] — [`SharedStream`]: reader/writer handles over one socket
//!   without `try_clone`'s second file descriptor.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod poll;
pub mod reactor;
pub mod stream;
pub mod sys;
pub mod wake;

pub use poll::{Epoll, Event, Events, Interest};
pub use reactor::{Ctl, Driver, LoopStats, Mailbox, Reactor, Ready, Status};
pub use stream::SharedStream;
pub use sys::{nofile_limit, raise_nofile_limit};
pub use wake::Waker;
