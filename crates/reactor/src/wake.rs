//! Cross-thread wakeup for an I/O thread parked in `epoll_wait`.

use std::io;
use std::os::unix::io::RawFd;

use crate::sys;

/// An eventfd-backed waker.
///
/// The owning I/O thread registers the fd (level-triggered) in its epoll and
/// calls [`Waker::drain`] when it fires; any other thread calls
/// [`Waker::wake`] to pull it out of `epoll_wait`. This is how shard replies
/// reach a connection owned by a sleeping I/O thread: post the message, ring
/// the eventfd.
///
/// Wakes coalesce in the kernel counter — a thousand replies landing while
/// the loop is busy cost one drain, not a thousand turns.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a new waker with an empty counter.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_new()?,
        })
    }

    /// The fd to register in the owning thread's epoll.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the waker. Never blocks; a saturated counter already implies a
    /// pending wakeup, so saturation is silently fine.
    pub fn wake(&self) {
        sys::eventfd_write(self.fd);
    }

    /// Resets the counter so the next [`Waker::wake`] fires again.
    pub fn drain(&self) {
        sys::eventfd_drain(self.fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Epoll, Events, Interest};
    use std::time::Duration;

    #[test]
    fn wake_fires_epoll_and_drain_resets() {
        let waker = Waker::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(waker.as_raw_fd(), 42, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);

        ep.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        waker.wake();
        waker.wake(); // coalesces
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token, 42);

        waker.drain();
        ep.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn wake_from_another_thread() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let ep = Epoll::new().unwrap();
        ep.add(waker.as_raw_fd(), 1, Interest::READ).unwrap();
        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || remote.wake());
        let mut events = Events::with_capacity(4);
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        t.join().unwrap();
    }
}
