//! Safe epoll wrapper: interest registration and readiness harvesting.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys::{self, RawEvent};

/// What readiness a registration subscribes to, and how it is delivered.
///
/// Level-triggered (the default) re-reports a condition on every wait while
/// it holds; edge-triggered ([`Interest::edge`]) reports only transitions,
/// which is what the reactor uses — combined with drivers that always read
/// and write to exhaustion (`WouldBlock`), edges make a full pipeline window
/// cheap: a stalled connection stops producing events instead of being
/// re-reported every turn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
    edge: bool,
}

impl Interest {
    /// Subscribe to readability.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };

    /// Subscribe to writability.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };

    /// Subscribe to both directions.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };

    /// Switches delivery to edge-triggered.
    pub fn edge(mut self) -> Interest {
        self.edge = true;
        self
    }

    fn bits(self) -> u32 {
        let mut bits = libc::EPOLLRDHUP;
        if self.readable {
            bits |= libc::EPOLLIN;
        }
        if self.writable {
            bits |= libc::EPOLLOUT;
        }
        if self.edge {
            bits |= libc::EPOLLET;
        }
        bits
    }
}

/// One harvested readiness record.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration cookie this event is for.
    pub token: u64,
    /// Data can be read (or the peer closed, which also reads as EOF).
    pub readable: bool,
    /// The socket buffer has room to write.
    pub writable: bool,
    /// Error or hangup condition (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`).
    pub hangup: bool,
}

/// Reusable buffer `epoll_wait` fills; iterate with [`Events::iter`].
pub struct Events {
    buf: Vec<RawEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can harvest up to `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![RawEvent { events: 0, u64: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Number of events harvested by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the last wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the harvested events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (packed on x86_64) raw record before use.
            let bits = raw.events;
            let token = raw.u64;
            Event {
                token,
                readable: bits & (libc::EPOLLIN | libc::EPOLLHUP | libc::EPOLLRDHUP) != 0,
                writable: bits & libc::EPOLLOUT != 0,
                hangup: bits & (libc::EPOLLERR | libc::EPOLLHUP | libc::EPOLLRDHUP) != 0,
            }
        })
    }
}

/// An epoll instance. Registrations are keyed by a caller-chosen `u64`
/// token returned verbatim with each event.
///
/// Closing a registered fd removes it from the interest list automatically
/// (the reactor relies on this: dropping a connection's `TcpStream` is the
/// whole deregistration story).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            fd: sys::epoll_create()?,
        })
    }

    /// Registers `fd` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, libc::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Changes an existing registration's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, libc::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Removes a registration explicitly (closing the fd also works).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.fd, libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one event is ready, the timeout elapses
    /// (`Some`), or forever (`None`). Returns the number harvested; an
    /// interrupted wait counts as an empty turn.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 200µs deadline does not spin at timeout 0 ms
            // before it is actually due.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        events.len = sys::epoll_wait(self.fd, &mut events.buf, timeout_ms)?;
        Ok(events.len)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn level_triggered_read_reports_until_drained() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing ready yet.
        ep.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        a.write_all(b"hi").unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        // Level-triggered: still reported until the bytes are consumed.
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token, 7);

        let mut buf = [0u8; 8];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");
        ep.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn edge_triggered_read_reports_transitions_only() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 9, Interest::READ.edge()).unwrap();
        let mut events = Events::with_capacity(8);

        a.write_all(b"x").unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().next().unwrap().readable);

        // Edge consumed; without new bytes there is no second report even
        // though the first byte is still unread.
        ep.wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // A new arrival is a new edge.
        a.write_all(b"y").unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().next().unwrap().readable);
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 3, Interest::READ_WRITE.edge())
            .unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        ep.wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.hangup && ev.readable);
    }

    #[test]
    fn closing_the_fd_deregisters() {
        let (_a, b) = pair();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(b);
        let mut events = Events::with_capacity(8);
        ep.wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }
}
