//! The I/O thread pool: connection registration, per-connection mailboxes,
//! deadline scheduling, and loop statistics.
//!
//! One [`Reactor`] owns N I/O threads. Each thread owns one [`Epoll`]
//! instance plus a [`Waker`], and multiplexes the connections assigned to it
//! (round-robin at registration). A connection is a [`Driver`] — a state
//! machine the thread invokes whenever the socket is ready, a message lands
//! in the connection's mailbox, or the driver's self-requested deadline
//! falls due. Sockets are registered edge-triggered for both directions;
//! the contract that makes that safe is that `drive` always works its
//! socket to exhaustion (`WouldBlock`) in whichever directions it has
//! pending work, on every invocation.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

#[cfg(test)]
use std::time::Duration;

use crate::poll::{Epoll, Events, Interest};
use crate::wake::Waker;

/// Token reserved for each I/O thread's own waker.
const WAKE_TOKEN: u64 = u64::MAX;

/// Events harvested per `epoll_wait`.
const EVENT_BATCH: usize = 1024;

/// Readiness snapshot handed to [`Driver::drive`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Ready {
    /// The socket (probably) has bytes to read. Also set on the driver's
    /// first invocation and when the peer hung up (reads return EOF).
    pub readable: bool,
    /// The socket (probably) has room to write. Also set on the first
    /// invocation.
    pub writable: bool,
    /// The kernel reported an error/hangup condition for the socket.
    pub hangup: bool,
}

/// What a driver wants done with its connection after a `drive` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Keep the connection registered.
    Continue,
    /// Unregister and drop the driver (closing its socket).
    Close,
}

/// Reactor-level controls available inside [`Driver::drive`].
pub struct Ctl {
    stop: bool,
}

impl Ctl {
    /// Requests shutdown of the whole reactor (all I/O threads, all
    /// connections) after this dispatch — the serverd SHUTDOWN op uses this.
    pub fn stop_reactor(&mut self) {
        self.stop = true;
    }
}

/// A per-connection state machine owned by one I/O thread.
///
/// The driver owns its socket (typically inside framing buffers). `drive`
/// is invoked with the reasons batched: fresh socket readiness, any
/// mailbox messages delivered since the last call, or a due deadline.
/// Because registration is edge-triggered, a driver must attempt reads
/// until `WouldBlock` whenever it wants more input, and retry buffered
/// writes on every call — progress never waits for a specific event kind.
pub trait Driver: Send {
    /// Message type other threads post through this connection's [`Mailbox`].
    type Msg: Send;

    /// Advances the connection. `msgs` holds newly delivered mailbox
    /// messages (drain it — undrained messages are redelivered next call).
    fn drive(&mut self, ready: Ready, msgs: &mut VecDeque<Self::Msg>, ctl: &mut Ctl) -> Status;

    /// When the driver next wants an unprompted `drive` call (open-loop
    /// pacing, timeouts). Re-queried after every dispatch; `None` means
    /// "only wake me for readiness or messages".
    fn deadline(&self) -> Option<Instant> {
        None
    }
}

/// Per-I/O-thread loop counters, snapshotted via [`Reactor::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopStats {
    /// Which I/O thread this row describes.
    pub io_thread: usize,
    /// `epoll_wait` returns (loop turns).
    pub turns: u64,
    /// Socket readiness events harvested.
    pub events: u64,
    /// Waker (eventfd) firings observed.
    pub wakeups: u64,
    /// Mailbox messages delivered to drivers.
    pub messages: u64,
    /// Connections currently owned by this thread.
    pub connections: u64,
}

#[derive(Default)]
struct LoopCounters {
    turns: AtomicU64,
    events: AtomicU64,
    wakeups: AtomicU64,
    messages: AtomicU64,
    connections: AtomicU64,
}

/// What other threads can reach of one I/O thread.
struct IoShared<M> {
    waker: Waker,
    inbox: Mutex<Inbox<M>>,
    counters: LoopCounters,
}

struct Inbox<M> {
    msgs: Vec<(u64, M)>,
    incoming: Vec<Incoming<M>>,
}

struct Incoming<M> {
    token: u64,
    fd: RawFd,
    driver: Box<dyn Driver<Msg = M>>,
}

/// Posts messages to one registered connection, waking its I/O thread.
///
/// Cheap to clone; posting to a connection that already closed silently
/// drops the message (the reply would have nowhere to go anyway).
pub struct Mailbox<M> {
    shared: Arc<IoShared<M>>,
    token: u64,
}

impl<M> Clone for Mailbox<M> {
    fn clone(&self) -> Self {
        Mailbox {
            shared: Arc::clone(&self.shared),
            token: self.token,
        }
    }
}

impl<M: Send> Mailbox<M> {
    /// Delivers `msg` to the connection's next `drive` call and wakes the
    /// owning I/O thread.
    pub fn post(&self, msg: M) {
        {
            let mut inbox = self.shared.inbox.lock().expect("reactor inbox poisoned");
            inbox.msgs.push((self.token, msg));
        }
        self.shared.waker.wake();
    }
}

struct Entry<M> {
    driver: Box<dyn Driver<Msg = M>>,
    msgs: VecDeque<M>,
    deadline: Option<Instant>,
}

/// A pool of event-loop threads multiplexing nonblocking connections.
///
/// Dropping the reactor stops and joins the pool (all remaining
/// connections close).
pub struct Reactor<M> {
    shared: Vec<Arc<IoShared<M>>>,
    stop: Arc<AtomicBool>,
    next_token: AtomicU64,
    next_thread: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: Send + 'static> Reactor<M> {
    /// Spawns `io_threads` event-loop threads (at least one), named
    /// `<name>-io-<i>`.
    pub fn spawn(io_threads: usize, name: &str) -> io::Result<Reactor<M>> {
        let n = io_threads.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let mut shared = Vec::with_capacity(n);
        let mut epolls = Vec::with_capacity(n);
        for _ in 0..n {
            let waker = Waker::new()?;
            let epoll = Epoll::new()?;
            epoll.add(waker.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
            shared.push(Arc::new(IoShared {
                waker,
                inbox: Mutex::new(Inbox {
                    msgs: Vec::new(),
                    incoming: Vec::new(),
                }),
                counters: LoopCounters::default(),
            }));
            epolls.push(epoll);
        }
        let mut handles = Vec::with_capacity(n);
        for (idx, epoll) in epolls.into_iter().enumerate() {
            let own = Arc::clone(&shared[idx]);
            // Every thread can wake its siblings, so a driver-requested
            // reactor stop propagates even to threads parked in epoll_wait.
            let siblings: Vec<Arc<IoShared<M>>> = shared
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != idx)
                .map(|(_, s)| Arc::clone(s))
                .collect();
            let stop = Arc::clone(&stop);
            handles.push(
                thread::Builder::new()
                    .name(format!("{name}-io-{idx}"))
                    .spawn(move || io_loop(epoll, own, siblings, stop))?,
            );
        }
        let reactor = Reactor {
            shared,
            stop,
            next_token: AtomicU64::new(0),
            next_thread: AtomicUsize::new(0),
            handles: Mutex::new(handles),
        };
        Ok(reactor)
    }

    /// Hands a connection to the pool. The stream is switched to
    /// nonblocking, `make` builds the driver (receiving the stream and the
    /// connection's [`Mailbox`]), and the owning thread registers the socket
    /// edge-triggered and immediately invokes the driver once with
    /// `readable + writable` so it can consume anything already buffered.
    pub fn register<F>(&self, stream: TcpStream, make: F) -> io::Result<()>
    where
        F: FnOnce(TcpStream, Mailbox<M>) -> io::Result<Box<dyn Driver<Msg = M>>>,
    {
        if self.stop.load(Ordering::SeqCst) {
            return Err(io::Error::other("reactor is shutting down"));
        }
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        let idx = self.next_thread.fetch_add(1, Ordering::Relaxed) % self.shared.len();
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let shared = &self.shared[idx];
        let mailbox = Mailbox {
            shared: Arc::clone(shared),
            token,
        };
        let driver = make(stream, mailbox)?;
        {
            let mut inbox = shared.inbox.lock().expect("reactor inbox poisoned");
            inbox.incoming.push(Incoming { token, fd, driver });
        }
        shared.waker.wake();
        Ok(())
    }

    /// Number of I/O threads in the pool.
    pub fn io_threads(&self) -> usize {
        self.shared.len()
    }

    /// Connections currently registered across all threads.
    pub fn connections(&self) -> u64 {
        self.shared
            .iter()
            .map(|s| s.counters.connections.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of every I/O thread's loop counters.
    pub fn stats(&self) -> Vec<LoopStats> {
        self.shared
            .iter()
            .enumerate()
            .map(|(io_thread, s)| LoopStats {
                io_thread,
                turns: s.counters.turns.load(Ordering::Relaxed),
                events: s.counters.events.load(Ordering::Relaxed),
                wakeups: s.counters.wakeups.load(Ordering::Relaxed),
                messages: s.counters.messages.load(Ordering::Relaxed),
                connections: s.counters.connections.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Asks every I/O thread to exit (closing its connections). Idempotent;
    /// returns without waiting — pair with [`Reactor::join`].
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in &self.shared {
            s.waker.wake();
        }
    }

    /// Waits for every I/O thread to exit. Call [`Reactor::stop`] first
    /// (or have a driver call [`Ctl::stop_reactor`]); joining a live
    /// reactor would block forever.
    pub fn join(&self) {
        let handles = std::mem::take(&mut *self.handles.lock().expect("reactor handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// `stop` + `join`.
    pub fn shutdown(&self) {
        self.stop();
        self.join();
    }
}

impl<M> Drop for Reactor<M> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in &self.shared {
            s.waker.wake();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("reactor handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One event-loop thread.
fn io_loop<M: Send>(
    epoll: Epoll,
    shared: Arc<IoShared<M>>,
    siblings: Vec<Arc<IoShared<M>>>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: HashMap<u64, Entry<M>> = HashMap::new();
    let mut events = Events::with_capacity(EVENT_BATCH);
    // Min-heap of (deadline, token); entries are lazily invalidated by
    // comparing against the connection's current deadline when popped.
    let mut deadlines: BinaryHeap<std::cmp::Reverse<(Instant, u64)>> = BinaryHeap::new();
    // Per-turn dispatch set (token -> accumulated readiness), kept across
    // turns to reuse its allocation.
    let mut pending: HashMap<u64, Ready> = HashMap::new();

    loop {
        let timeout = deadlines
            .peek()
            .map(|std::cmp::Reverse((t, _))| t.saturating_duration_since(Instant::now()));
        if epoll.wait(&mut events, timeout).is_err() {
            // epoll itself failing is unrecoverable for this thread.
            break;
        }
        shared.counters.turns.fetch_add(1, Ordering::Relaxed);

        pending.clear();
        let mut woke = false;
        for ev in events.iter() {
            if ev.token == WAKE_TOKEN {
                woke = true;
                continue;
            }
            shared.counters.events.fetch_add(1, Ordering::Relaxed);
            let slot = pending.entry(ev.token).or_default();
            slot.readable |= ev.readable;
            slot.writable |= ev.writable;
            slot.hangup |= ev.hangup;
        }

        if woke {
            shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            shared.waker.drain();
            let (msgs, incoming) = {
                let mut inbox = shared.inbox.lock().expect("reactor inbox poisoned");
                (
                    std::mem::take(&mut inbox.msgs),
                    std::mem::take(&mut inbox.incoming),
                )
            };
            for inc in incoming {
                if epoll
                    .add(inc.fd, inc.token, Interest::READ_WRITE.edge())
                    .is_err()
                {
                    continue; // dropping the driver closes the socket
                }
                conns.insert(
                    inc.token,
                    Entry {
                        driver: inc.driver,
                        msgs: VecDeque::new(),
                        deadline: None,
                    },
                );
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                // First drive: consume anything that raced ahead of the
                // registration and let the driver send greetings.
                let slot = pending.entry(inc.token).or_default();
                slot.readable = true;
                slot.writable = true;
            }
            for (token, msg) in msgs {
                if let Some(entry) = conns.get_mut(&token) {
                    entry.msgs.push_back(msg);
                    shared.counters.messages.fetch_add(1, Ordering::Relaxed);
                    pending.entry(token).or_default();
                }
                // Messages for closed connections are dropped.
            }
        }

        if stop.load(Ordering::SeqCst) {
            break;
        }

        // Due deadlines join the dispatch set.
        let now = Instant::now();
        while let Some(&std::cmp::Reverse((t, token))) = deadlines.peek() {
            if t > now {
                break;
            }
            deadlines.pop();
            if let Some(entry) = conns.get_mut(&token) {
                if entry.deadline == Some(t) {
                    entry.deadline = None;
                    pending.entry(token).or_default();
                }
            }
        }

        let mut reactor_stop = false;
        for (&token, ready) in pending.iter() {
            let Some(entry) = conns.get_mut(&token) else {
                continue;
            };
            let mut ctl = Ctl { stop: false };
            let status = entry.driver.drive(*ready, &mut entry.msgs, &mut ctl);
            if ctl.stop {
                reactor_stop = true;
            }
            match status {
                Status::Close => {
                    conns.remove(&token);
                    shared.counters.connections.fetch_sub(1, Ordering::Relaxed);
                }
                Status::Continue => {
                    let want = entry.driver.deadline();
                    if want != entry.deadline {
                        entry.deadline = want;
                        if let Some(t) = want {
                            deadlines.push(std::cmp::Reverse((t, token)));
                        }
                    }
                }
            }
        }
        if reactor_stop {
            stop.store(true, Ordering::SeqCst);
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    // Dropping the entries closes every remaining socket.
    let remaining = conns.len() as u64;
    drop(conns);
    shared
        .counters
        .connections
        .fetch_sub(remaining, Ordering::Relaxed);
    // Other threads must exit too (a driver may have requested stop).
    stop.store(true, Ordering::SeqCst);
    for s in &siblings {
        s.waker.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Echoes every byte back, via a tiny internal buffer that survives
    /// `WouldBlock` on either side.
    struct Echo {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    impl Driver for Echo {
        type Msg = ();

        fn drive(&mut self, _ready: Ready, _msgs: &mut VecDeque<()>, _ctl: &mut Ctl) -> Status {
            loop {
                // Flush pending output first.
                while !self.buf.is_empty() {
                    match self.stream.write(&self.buf) {
                        Ok(0) => return Status::Close,
                        Ok(n) => {
                            self.buf.drain(..n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Status::Continue,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return Status::Close,
                    }
                }
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk) {
                    Ok(0) => return Status::Close,
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Status::Continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Status::Close,
                }
            }
        }
    }

    #[test]
    fn echo_across_many_connections() {
        let reactor: Reactor<()> = Reactor::spawn(2, "echo-test").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let mut clients = Vec::new();
        for _ in 0..32 {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            reactor
                .register(s, |stream, _mailbox| {
                    Ok(Box::new(Echo {
                        stream,
                        buf: Vec::new(),
                    }))
                })
                .unwrap();
            clients.push(c);
        }
        assert_eq!(reactor.io_threads(), 2);

        for (i, c) in clients.iter_mut().enumerate() {
            let msg = format!("hello-{i}");
            c.write_all(msg.as_bytes()).unwrap();
            let mut back = vec![0u8; msg.len()];
            c.read_exact(&mut back).unwrap();
            assert_eq!(back, msg.as_bytes());
        }

        // Gauges: all 32 registered, spread across both threads.
        assert_eq!(reactor.connections(), 32);
        let stats = reactor.stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.connections == 16));
        assert!(stats.iter().all(|s| s.turns > 0 && s.events > 0));

        drop(clients);
        // Disconnects drain asynchronously.
        let start = Instant::now();
        while reactor.connections() > 0 && start.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(reactor.connections(), 0);
        reactor.shutdown();
    }

    /// Driver that forwards mailbox messages to the peer as bytes.
    struct MailEcho {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    impl Driver for MailEcho {
        type Msg = Vec<u8>;

        fn drive(&mut self, _ready: Ready, msgs: &mut VecDeque<Vec<u8>>, _ctl: &mut Ctl) -> Status {
            for m in msgs.drain(..) {
                self.buf.extend_from_slice(&m);
            }
            while !self.buf.is_empty() {
                match self.stream.write(&self.buf) {
                    Ok(0) => return Status::Close,
                    Ok(n) => {
                        self.buf.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Status::Continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Status::Close,
                }
            }
            Status::Continue
        }
    }

    #[test]
    fn mailbox_wakes_sleeping_io_thread() {
        let reactor: Reactor<Vec<u8>> = Reactor::spawn(1, "mail-test").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (s, _) = listener.accept().unwrap();

        let mailbox_out = std::sync::Mutex::new(None);
        reactor
            .register(s, |stream, mailbox| {
                *mailbox_out.lock().unwrap() = Some(mailbox);
                Ok(Box::new(MailEcho {
                    stream,
                    buf: Vec::new(),
                }))
            })
            .unwrap();
        let mailbox = mailbox_out.lock().unwrap().take().unwrap();

        // The io thread is idle in epoll_wait; a post must wake it.
        mailbox.post(b"ping".to_vec());
        let mut back = [0u8; 4];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");

        let stats = reactor.stats();
        assert!(stats[0].wakeups >= 1);
        assert!(stats[0].messages >= 1);
        reactor.shutdown();
        assert_eq!(reactor.connections(), 0);
    }

    /// Driver that closes after its deadline fires, recording the firing.
    struct TimerConn {
        due: Instant,
        fired: Arc<AtomicBool>,
        _stream: TcpStream,
    }

    impl Driver for TimerConn {
        type Msg = ();

        fn drive(&mut self, _ready: Ready, _msgs: &mut VecDeque<()>, _ctl: &mut Ctl) -> Status {
            if Instant::now() >= self.due {
                self.fired.store(true, Ordering::SeqCst);
                return Status::Close;
            }
            Status::Continue
        }

        fn deadline(&self) -> Option<Instant> {
            Some(self.due)
        }
    }

    #[test]
    fn deadlines_fire_without_io() {
        let reactor: Reactor<()> = Reactor::spawn(1, "timer-test").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (s, _) = listener.accept().unwrap();

        let fired = Arc::new(AtomicBool::new(false));
        let due = Instant::now() + Duration::from_millis(80);
        let fired2 = Arc::clone(&fired);
        reactor
            .register(s, move |stream, _| {
                Ok(Box::new(TimerConn {
                    due,
                    fired: fired2,
                    _stream: stream,
                }))
            })
            .unwrap();

        let start = Instant::now();
        while !fired.load(Ordering::SeqCst) && start.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(fired.load(Ordering::SeqCst), "deadline never fired");
        // Not meaningfully early either.
        assert!(Instant::now() >= due);
        reactor.shutdown();
    }

    /// Driver that asks the whole reactor to stop when it reads anything.
    struct StopOnInput {
        stream: TcpStream,
    }

    impl Driver for StopOnInput {
        type Msg = ();

        fn drive(&mut self, _ready: Ready, _msgs: &mut VecDeque<()>, ctl: &mut Ctl) -> Status {
            let mut buf = [0u8; 16];
            match self.stream.read(&mut buf) {
                Ok(n) if n > 0 => {
                    ctl.stop_reactor();
                    Status::Close
                }
                Ok(_) => Status::Close,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Status::Continue,
                Err(_) => Status::Close,
            }
        }
    }

    #[test]
    fn driver_can_stop_the_reactor() {
        let reactor: Reactor<()> = Reactor::spawn(2, "stop-test").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (s, _) = listener.accept().unwrap();
        reactor
            .register(s, |stream, _| Ok(Box::new(StopOnInput { stream })))
            .unwrap();

        client.write_all(b"stop").unwrap();
        // join returns because the driver's stop propagates to all threads.
        reactor.join();
        assert!(reactor
            .register(TcpStream::connect(addr).unwrap(), |stream, _| {
                Ok(Box::new(StopOnInput { stream }))
            })
            .is_err());
    }
}
