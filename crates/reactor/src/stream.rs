//! [`SharedStream`]: one socket, many handles, one file descriptor.
//!
//! A driver that wants separate buffered reader and writer halves around
//! the same connection would classically `try_clone` the stream — but
//! `try_clone` is `dup(2)`, and the second descriptor doubles the
//! connection's bill against `RLIMIT_NOFILE`. At the scales this crate
//! exists for (tens of thousands of connections, often client and server
//! in one benchmark process) that bill is the binding constraint, not
//! memory or CPU. `SharedStream` instead clones an [`Arc`] around the one
//! `TcpStream`: `&TcpStream` already implements `Read` and `Write` (socket
//! I/O takes no exclusive borrow), so every handle reads and writes the
//! same descriptor, and the descriptor closes when the last handle drops.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A cloneable handle to a single `TcpStream`. All clones share one file
/// descriptor (and therefore all socket flags: nonblocking, nodelay, ...).
#[derive(Clone, Debug)]
pub struct SharedStream(Arc<TcpStream>);

impl SharedStream {
    /// Wraps a stream. Further handles come from `clone()`.
    pub fn new(stream: TcpStream) -> Self {
        Self(Arc::new(stream))
    }

    /// The underlying stream, for flag twiddling (`set_nodelay`, ...).
    pub fn get_ref(&self) -> &TcpStream {
        &self.0
    }
}

impl Read for SharedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&*self.0).read(buf)
    }
}

impl Write for SharedStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&*self.0).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn handles_share_one_descriptor() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();

        let mut reader = SharedStream::new(client);
        let mut writer = reader.clone();
        writer.write_all(b"ping").unwrap();
        let mut served = SharedStream::new(served);
        let mut buf = [0u8; 4];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        served.write_all(b"pong").unwrap();
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");

        // Flags set through one handle are visible through the other —
        // same descriptor, not a dup.
        writer.get_ref().set_nonblocking(true).unwrap();
        let mut scratch = [0u8; 1];
        let err = reader.read(&mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
