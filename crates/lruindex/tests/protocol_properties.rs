//! Property tests for the LruIndex query/reply protocol under in-flight
//! delay: queries never mutate, flags stay valid, and the miss-rate driver
//! conserves operations for every policy.

use proptest::prelude::*;

use p4lru_core::policies::PolicyKind;
use p4lru_lruindex::cache::build_index_cache;
use p4lru_lruindex::system::{run_miss_rate, LruIndexConfig};

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::P4Lru1),
        Just(PolicyKind::P4Lru2),
        Just(PolicyKind::P4Lru3),
        Just(PolicyKind::P4Lru4),
        Just(PolicyKind::Ideal),
        (1u64..50_000_000).prop_map(|t| PolicyKind::Timeout { timeout_ns: t }),
        Just(PolicyKind::Elastic),
        Just(PolicyKind::Coco),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queries_are_pure_and_flags_valid(
        policy in any_policy(),
        levels in 1usize..6,
        keys in proptest::collection::vec(0u64..500, 1..300),
        seed in any::<u64>(),
    ) {
        let mut cache = build_index_cache(policy, levels, 8_000, seed);
        for (i, &key) in keys.iter().enumerate() {
            let f1 = cache.query(key);
            let f2 = cache.query(key);
            prop_assert_eq!(f1, f2, "query mutated state for key {}", key);
            prop_assert!(
                (f1 as usize) <= levels,
                "flag {} exceeds level count {}",
                f1,
                levels
            );
            let addr = key * 7 + 1;
            cache.apply_reply(key, addr, f1, i as u64 * 1000);
        }
    }

    #[test]
    fn reply_makes_key_resident_or_leaves_it_refused(
        policy in any_policy(),
        key in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let mut cache = build_index_cache(policy, 4, 8_000, seed);
        let flag = cache.query(key);
        prop_assert_eq!(flag, 0, "fresh cache cannot contain {}", key);
        let eff = cache.apply_reply(key, 42, flag, 0);
        if eff.inserted {
            prop_assert!(cache.query(key) != 0, "inserted key must be queryable");
        }
        // Refusal (timeout/elastic/coco on a fresh cache never refuses an
        // empty bucket, but this keeps the property honest for all paths).
    }

    #[test]
    fn driver_conserves_operations(
        policy in any_policy(),
        dt in 1_000u64..2_000_000,
        seed in any::<u64>(),
    ) {
        let r = run_miss_rate(&LruIndexConfig {
            policy,
            delta_t_ns: dt,
            items: 2_000,
            ops: 10_000,
            memory_bytes: 6_000,
            seed,
            track_similarity: true,
            ..Default::default()
        });
        prop_assert_eq!(r.stats.accesses, 10_000);
        prop_assert!((0.0..=1.0).contains(&r.miss_rate));
        let sim = r.similarity.unwrap();
        prop_assert!(sim > 0.0 && sim <= 1.0, "similarity {}", sim);
    }
}
