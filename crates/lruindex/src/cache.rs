//! The switch-side index cache: series-connected P4LRU arrays and
//! single-table baselines behind one interface.

use p4lru_core::array::MemoryModel;
use p4lru_core::dfa::{CacheState, Dfa2, Dfa3, Dfa4};
use p4lru_core::perm::Perm;
use p4lru_core::policies::{build_cache, merge_replace, Access, Cache, PolicyKind};
use p4lru_core::series::{QueryHit, ReplyOutcome, SeriesLru};

/// Memory layout of one index entry: 8-byte key, 6-byte (48-bit) address,
/// 1-byte unit state.
pub fn index_layout() -> MemoryModel {
    MemoryModel {
        key_bytes: 8,
        value_bytes: 6,
        state_bytes: 1,
    }
}

/// Membership change caused by a reply (drives miss stats and similarity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplyEffect {
    /// Key fully expelled from the cache, if any.
    pub evicted: Option<u64>,
    /// A previously-absent key was admitted.
    pub inserted: bool,
    /// An already-cached key had its recency refreshed.
    pub refreshed: bool,
}

impl ReplyEffect {
    /// A dropped/stale reply: the cache is unchanged.
    pub fn dropped() -> Self {
        Self {
            evicted: None,
            inserted: false,
            refreshed: false,
        }
    }
}

/// A query/reply index cache (the LruIndex protocol, §3.2).
pub trait IndexCache {
    /// Read-only query pass: the `cached_flag` (0 = miss) the switch stamps.
    fn query(&self, key: u64) -> u8;

    /// Reply pass: the single deferred write. `flag` is what the query
    /// stamped; `addr` is the index carried back by the reply.
    fn apply_reply(&mut self, key: u64, addr: u64, flag: u8, now_ns: u64) -> ReplyEffect;

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Label for figure output.
    fn label(&self) -> String;
}

/// Series-connected P4LRU arrays (the paper's design; N = 3 deployed).
pub struct SeriesIndex<const N: usize, S: CacheState<N>> {
    series: SeriesLru<u64, u64, N, S>,
    label: &'static str,
}

impl<const N: usize, S: CacheState<N>> SeriesIndex<N, S> {
    /// `levels` arrays sized to fit `memory_bytes` in total.
    pub fn new(levels: usize, memory_bytes: usize, seed: u64, label: &'static str) -> Self {
        let units_total = index_layout().units_in(memory_bytes, N);
        let units_per_level = (units_total / levels).max(1);
        Self {
            series: SeriesLru::new(levels, units_per_level, seed),
            label,
        }
    }

    /// The underlying series (tests and diagnostics).
    pub fn series(&self) -> &SeriesLru<u64, u64, N, S> {
        &self.series
    }

    /// Mutable access to the underlying series (two-tier gateway internals).
    pub fn series_mut(&mut self) -> &mut SeriesLru<u64, u64, N, S> {
        &mut self.series
    }

    /// Number of series levels.
    pub fn levels(&self) -> usize {
        self.series.level_count()
    }

    /// Per-level query hook: the read-only pass, returning *which* level
    /// holds the key plus the cached address — richer than the trait's
    /// boolean-ish `cached_flag`, for per-level hit accounting in the tier.
    pub fn query_level(&self, key: u64) -> (QueryHit, Option<u64>) {
        let (hit, addr) = self.series.query(&key);
        (hit, addr.copied())
    }

    /// Detailed reply hook: applies the deferred write and reports the full
    /// [`ReplyOutcome`], including the expelled `(key, addr)` pair so a
    /// value store paired with this index can reclaim the freed slot.
    pub fn admit(&mut self, hit: QueryHit, key: u64, addr: u64) -> ReplyOutcome<u64, u64> {
        self.series.apply_reply(hit, key, addr)
    }

    /// Invalidation hook: expels the key outright (the SET/DEL coherence
    /// path of a two-tier deployment), returning the level it occupied and
    /// the cached address.
    pub fn invalidate(&mut self, key: u64) -> Option<(usize, u64)> {
        self.series.remove(&key)
    }
}

impl<const N: usize, S: CacheState<N>> IndexCache for SeriesIndex<N, S> {
    fn query(&self, key: u64) -> u8 {
        self.series.query(&key).0.cached_flag()
    }

    fn apply_reply(&mut self, key: u64, addr: u64, flag: u8, _now_ns: u64) -> ReplyEffect {
        let hit = QueryHit::from_cached_flag(flag);
        match self.series.apply_reply(hit, key, addr) {
            ReplyOutcome::Promoted | ReplyOutcome::RefreshedFront => ReplyEffect {
                evicted: None,
                inserted: false,
                refreshed: true,
            },
            ReplyOutcome::Stale => ReplyEffect::dropped(),
            ReplyOutcome::InsertedFresh { expelled } => ReplyEffect {
                evicted: expelled.map(|(k, _)| k),
                inserted: true,
                refreshed: false,
            },
        }
    }

    fn capacity(&self) -> usize {
        self.series.capacity()
    }

    fn label(&self) -> String {
        self.label.to_owned()
    }
}

/// A single-table policy cache under the deferred protocol (query is
/// read-only; the reply performs the access).
pub struct PolicyIndex {
    cache: Box<dyn Cache<u64, u64>>,
}

impl PolicyIndex {
    /// Builds the policy cache within `memory_bytes`.
    pub fn new(kind: PolicyKind, memory_bytes: usize, seed: u64) -> Self {
        Self {
            cache: build_cache(kind, memory_bytes, index_layout(), seed),
        }
    }
}

impl IndexCache for PolicyIndex {
    fn query(&self, key: u64) -> u8 {
        u8::from(self.cache.peek(&key).is_some())
    }

    fn apply_reply(&mut self, key: u64, addr: u64, _flag: u8, now_ns: u64) -> ReplyEffect {
        match self.cache.access(key, addr, now_ns, merge_replace) {
            Access::Hit => ReplyEffect {
                evicted: None,
                inserted: false,
                refreshed: true,
            },
            Access::Miss { evicted, inserted } => ReplyEffect {
                evicted: evicted.map(|(k, _)| k),
                inserted,
                refreshed: false,
            },
        }
    }

    fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    fn label(&self) -> String {
        self.cache.name().to_owned()
    }
}

/// Builds the index cache for a policy: P4LRU flavors become
/// series-connected arrays with `levels` levels; everything else is a
/// single-table baseline.
pub fn build_index_cache(
    kind: PolicyKind,
    levels: usize,
    memory_bytes: usize,
    seed: u64,
) -> Box<dyn IndexCache> {
    match kind {
        PolicyKind::P4Lru1 => Box::new(SeriesIndex::<1, Perm<1>>::new(
            levels,
            memory_bytes,
            seed,
            "P4LRU1",
        )),
        PolicyKind::P4Lru2 => Box::new(SeriesIndex::<2, Dfa2>::new(
            levels,
            memory_bytes,
            seed,
            "P4LRU2",
        )),
        PolicyKind::P4Lru3 => Box::new(SeriesIndex::<3, Dfa3>::new(
            levels,
            memory_bytes,
            seed,
            "P4LRU3",
        )),
        PolicyKind::P4Lru4 => Box::new(SeriesIndex::<4, Dfa4>::new(
            levels,
            memory_bytes,
            seed,
            "P4LRU4",
        )),
        other => Box::new(PolicyIndex::new(other, memory_bytes, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_index_roundtrip() {
        let mut c = SeriesIndex::<3, Dfa3>::new(4, 4096, 1, "P4LRU3");
        assert_eq!(c.query(10), 0);
        c.apply_reply(10, 1234, 0, 0);
        let flag = c.query(10);
        assert_eq!(flag, 1, "fresh insert lands at level 1");
        // Promote via the protocol.
        c.apply_reply(10, 1234, flag, 0);
        assert_eq!(c.series().duplicate_count(), 0);
    }

    #[test]
    fn per_level_hooks_roundtrip() {
        let mut c = SeriesIndex::<3, Dfa3>::new(2, 4096, 9, "P4LRU3");
        let (hit, addr) = c.query_level(77);
        assert_eq!((hit, addr), (QueryHit::Miss, None));
        let out = c.admit(hit, 77, 0xBEEF);
        assert_eq!(out, ReplyOutcome::InsertedFresh { expelled: None });
        let (hit, addr) = c.query_level(77);
        assert_eq!(hit, QueryHit::Level(0));
        assert_eq!(addr, Some(0xBEEF));
        assert_eq!(c.invalidate(77), Some((0, 0xBEEF)));
        assert_eq!(c.query_level(77).0, QueryHit::Miss);
        assert_eq!(c.invalidate(77), None);
        assert_eq!(c.levels(), 2);
        c.series_mut().check_invariants().unwrap();
    }

    #[test]
    fn policy_index_roundtrip() {
        let mut c = PolicyIndex::new(PolicyKind::Ideal, 4096, 1);
        assert_eq!(c.query(5), 0);
        let eff = c.apply_reply(5, 99, 0, 0);
        assert!(eff.inserted);
        assert_eq!(c.query(5), 1);
    }

    #[test]
    fn builder_selects_series_for_p4lru() {
        let c = build_index_cache(PolicyKind::P4Lru3, 4, 8192, 2);
        assert_eq!(c.label(), "P4LRU3");
        let c = build_index_cache(PolicyKind::Timeout { timeout_ns: 10 }, 4, 8192, 2);
        assert_eq!(c.label(), "Timeout");
    }

    #[test]
    fn equal_memory_regardless_of_levels() {
        let one = build_index_cache(PolicyKind::P4Lru3, 1, 30_000, 3);
        let four = build_index_cache(PolicyKind::P4Lru3, 4, 30_000, 3);
        let ratio = one.capacity() as f64 / four.capacity() as f64;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "capacities {} vs {}",
            one.capacity(),
            four.capacity()
        );
    }

    #[test]
    fn flag_encodes_level_plus_one() {
        let mut c = SeriesIndex::<3, Dfa3>::new(2, 2048, 7, "P4LRU3");
        c.apply_reply(1, 1, 0, 0);
        assert_eq!(c.query(1), 1);
        // Push enough fresh keys through level 0 to demote key 1.
        let mut demoted = false;
        for k in 100..200u64 {
            c.apply_reply(k, k, 0, 0);
            if c.query(1) == 2 {
                demoted = true;
                break;
            }
            if c.query(1) == 0 {
                break; // fully expelled before we observed level 2 — rehash
            }
        }
        assert!(demoted, "key 1 never observed at level 2");
    }
}
