//! LruIndex drivers: miss-rate/similarity sweeps and the closed-loop
//! throughput benchmark.

use p4lru_core::metrics::{MissStats, SimilarityTracker};
use p4lru_core::policies::{Access, PolicyKind};
use p4lru_kvstore::db::Database;
use p4lru_netsim::queue::{ClosedLoop, ServerPool};
use p4lru_traffic::ycsb::YcsbConfig;

use crate::cache::build_index_cache;

/// Configuration of a miss-rate run (Figures 13, 16).
#[derive(Clone, Debug)]
pub struct LruIndexConfig {
    /// Replacement policy (P4LRU flavors become series connections).
    pub policy: PolicyKind,
    /// Series connection levels (the paper defaults to 4).
    pub levels: usize,
    /// Switch memory budget in bytes.
    pub memory_bytes: usize,
    /// Database round-trip ΔT: a reply lands this long after its query.
    pub delta_t_ns: u64,
    /// Gap between consecutive queries (closed pacing of the trace).
    pub op_interval_ns: u64,
    /// Database size (key population).
    pub items: u64,
    /// Zipf skew of the YCSB workload (paper: 0.9).
    pub alpha: f64,
    /// Number of operations to run.
    pub ops: usize,
    /// Seed.
    pub seed: u64,
    /// Also compute LRU similarity.
    pub track_similarity: bool,
}

impl Default for LruIndexConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::P4Lru3,
            levels: 4,
            memory_bytes: 64 * 1024,
            delta_t_ns: 100_000, // 100 µs database round trip
            op_interval_ns: 2_000,
            items: 100_000,
            alpha: 0.9,
            ops: 200_000,
            seed: 0x1DE0,
            track_similarity: false,
        }
    }
}

/// Results of a miss-rate run.
#[derive(Clone, Debug)]
pub struct LruIndexReport {
    /// Policy label.
    pub policy: String,
    /// Query-time hit/miss stats.
    pub stats: MissStats,
    /// Fraction of queries whose `cached_flag` was 0.
    pub miss_rate: f64,
    /// LRU similarity, if tracked.
    pub similarity: Option<f64>,
    /// Cache entries built.
    pub cache_entries: usize,
}

/// Runs the deferred query/reply protocol over a YCSB stream with in-flight
/// delay ΔT.
pub fn run_miss_rate(config: &LruIndexConfig) -> LruIndexReport {
    let mut cache = build_index_cache(
        config.policy,
        config.levels,
        config.memory_bytes,
        config.seed,
    );
    let mut tracker = config
        .track_similarity
        .then(|| SimilarityTracker::new(cache.capacity()));
    let workload = YcsbConfig {
        items: config.items,
        alpha: config.alpha,
        read_fraction: 1.0,
        seed: config.seed,
    };
    let mut stats = MissStats::default();
    // In-flight replies: (ready_time, key, flag, addr).
    let mut pending: std::collections::VecDeque<(u64, u64, u8, u64)> =
        std::collections::VecDeque::new();
    for (i, op) in workload.stream().take(config.ops).enumerate() {
        let now = i as u64 * config.op_interval_ns;
        while let Some(&(ready, key, flag, addr)) = pending.front() {
            if ready > now {
                break;
            }
            pending.pop_front();
            let effect = cache.apply_reply(key, addr, flag, ready);
            if let Some(t) = &mut tracker {
                // Feed the tracker what actually happened (stale replies
                // leave the cache untouched and are not observed).
                let access: Access<u64, ()> = if effect.refreshed {
                    Access::Hit
                } else if effect.inserted || effect.evicted.is_some() {
                    Access::Miss {
                        evicted: effect.evicted.map(|k| (k, ())),
                        inserted: effect.inserted,
                    }
                } else {
                    continue;
                };
                t.observe(&key, &access);
            }
        }
        let key = op.key();
        let flag = cache.query(key);
        let access: Access<u64, ()> = if flag != 0 {
            Access::Hit
        } else {
            Access::Miss {
                evicted: None,
                inserted: false,
            }
        };
        stats.record(&access);
        // The database's reply returns after ΔT carrying the address.
        let addr = p4lru_core::hashing::hash_u64(0xADD8, key) & ((1 << 48) - 1);
        pending.push_back((now + config.delta_t_ns, key, flag, addr));
    }
    LruIndexReport {
        policy: cache.label(),
        stats,
        miss_rate: stats.miss_rate(),
        similarity: tracker.as_ref().map(SimilarityTracker::similarity),
        cache_entries: cache.capacity(),
    }
}

// ---------------------------------------------------------------------------
// Throughput model (Figure 10).
// ---------------------------------------------------------------------------

/// Configuration of a throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Client query threads (the server pool is sized to match).
    pub threads: usize,
    /// Database size.
    pub items: u64,
    /// Switch memory budget.
    pub memory_bytes: usize,
    /// Series levels (testbed uses the two-pipeline version).
    pub levels: usize,
    /// Network round trip client↔server (through the switch).
    pub rtt_ns: u64,
    /// Wall-clock budget of the run.
    pub duration_ns: u64,
    /// Zipf skew.
    pub alpha: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            threads: 8,
            items: 1_000_000,
            memory_bytes: 256 * 1024,
            levels: 2,
            rtt_ns: 6_000,
            duration_ns: 200_000_000, // 200 ms of simulated time
            alpha: 0.9,
            seed: 0x10DB,
        }
    }
}

/// Results of a throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Kilo-transactions per second with the index cache.
    pub ktps: f64,
    /// KTPS of the naive solution (no cache, every query walks the index).
    pub naive_ktps: f64,
    /// Speedup over naive.
    pub speedup: f64,
    /// Cache hit rate observed during the run.
    pub hit_rate: f64,
}

/// How a cached/uncached query costs out at the server.
fn service_times(db: &Database) -> (u64, u64) {
    (db.service_ns_indexed(), db.service_ns_unindexed())
}

/// Runs the closed-loop throughput benchmark for a policy (use
/// [`PolicyKind::P4Lru3`] for the paper system, [`PolicyKind::P4Lru1`] for
/// its baseline). Pass `use_cache = false` for the naive solution.
pub fn run_throughput(config: &ThroughputConfig, policy: PolicyKind) -> ThroughputReport {
    let db = Database::populate(config.items);
    let (t_hit, t_miss) = service_times(&db);
    let workload = YcsbConfig {
        items: config.items,
        alpha: config.alpha,
        read_fraction: 1.0,
        seed: config.seed,
    };

    // Cached run.
    let mut cache = build_index_cache(policy, config.levels, config.memory_bytes, config.seed);
    let mut stream = workload.stream();
    let mut hits = 0u64;
    let mut total = 0u64;
    let loop_cfg = ClosedLoop {
        clients: config.threads,
        rtt: config.rtt_ns,
        duration: config.duration_ns,
    };
    let mut pool = ServerPool::new(config.threads);
    let ktps = loop_cfg.throughput(&mut pool, |_| {
        let key = stream.next().expect("infinite stream").key();
        let flag = cache.query(key);
        total += 1;
        let addr = p4lru_core::hashing::hash_u64(0xADD8, key) & ((1 << 48) - 1);
        cache.apply_reply(key, addr, flag, 0);
        if flag != 0 {
            hits += 1;
            t_hit
        } else {
            t_miss
        }
    }) / 1_000.0;

    // Naive run: same workload, every query walks the index.
    let mut pool = ServerPool::new(config.threads);
    let naive_ktps = loop_cfg.throughput(&mut pool, |_| t_miss) / 1_000.0;

    ThroughputReport {
        ktps,
        naive_ktps,
        speedup: if naive_ktps == 0.0 {
            0.0
        } else {
            ktps / naive_ktps
        },
        hit_rate: if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, levels: usize, mem: usize) -> LruIndexReport {
        run_miss_rate(&LruIndexConfig {
            policy,
            levels,
            memory_bytes: mem,
            items: 20_000,
            ops: 60_000,
            delta_t_ns: 50_000,
            ..Default::default()
        })
    }

    #[test]
    fn p4lru3_beats_p4lru1_on_miss_rate() {
        let p3 = quick(PolicyKind::P4Lru3, 4, 16_000);
        let p1 = quick(PolicyKind::P4Lru1, 4, 16_000);
        assert!(
            p3.miss_rate < p1.miss_rate,
            "P4LRU3 {:.4} should beat P4LRU1 {:.4} (Figure 16a)",
            p3.miss_rate,
            p1.miss_rate
        );
    }

    #[test]
    fn more_memory_lowers_miss_rate() {
        let small = quick(PolicyKind::P4Lru3, 4, 4_000);
        let large = quick(PolicyKind::P4Lru3, 4, 64_000);
        assert!(
            large.miss_rate < small.miss_rate,
            "{:.4} → {:.4} (Figure 13a)",
            small.miss_rate,
            large.miss_rate
        );
    }

    #[test]
    fn longer_delta_t_raises_miss_rate() {
        let run = |dt| {
            run_miss_rate(&LruIndexConfig {
                delta_t_ns: dt,
                items: 20_000,
                ops: 60_000,
                memory_bytes: 16_000,
                ..Default::default()
            })
            .miss_rate
        };
        let short = run(2_000);
        let long = run(5_000_000);
        assert!(long > short, "{short:.4} → {long:.4} (Figure 13b)");
    }

    #[test]
    fn similarity_is_tracked_and_sane() {
        let r = run_miss_rate(&LruIndexConfig {
            track_similarity: true,
            items: 10_000,
            ops: 40_000,
            memory_bytes: 8_000,
            ..Default::default()
        });
        let sim = r.similarity.unwrap();
        assert!(sim > 0.0 && sim <= 1.0, "similarity {sim}");
    }

    #[test]
    fn throughput_scales_with_threads_and_beats_naive() {
        let base = ThroughputConfig {
            items: 50_000,
            duration_ns: 50_000_000,
            ..Default::default()
        };
        let one = run_throughput(
            &ThroughputConfig {
                threads: 1,
                ..base.clone()
            },
            PolicyKind::P4Lru3,
        );
        let eight = run_throughput(&ThroughputConfig { threads: 8, ..base }, PolicyKind::P4Lru3);
        assert!(
            eight.ktps > one.ktps * 4.0,
            "1→8 threads: {} → {}",
            one.ktps,
            eight.ktps
        );
        assert!(eight.speedup > 1.0, "speedup {}", eight.speedup);
        assert!(eight.hit_rate > 0.3, "hit rate {}", eight.hit_rate);
    }

    #[test]
    fn speedup_stays_in_paper_regime_across_database_sizes() {
        // Figure 10b plots speedup vs items. Two forces compete: taller
        // indexes make each hit save more (tested in p4lru-kvstore), while
        // fixed cache memory covers a smaller key fraction. Our model
        // reproduces the *magnitude* (1.0–1.5×); see EXPERIMENTS.md for the
        // trend discussion.
        for items in [10_000u64, 100_000, 1_000_000] {
            let r = run_throughput(
                &ThroughputConfig {
                    items,
                    duration_ns: 30_000_000,
                    ..Default::default()
                },
                PolicyKind::P4Lru3,
            );
            assert!(
                r.speedup > 1.0 && r.speedup < 1.6,
                "items {items}: speedup {:.3} out of regime",
                r.speedup
            );
        }
    }

    #[test]
    fn p4lru3_throughput_at_least_matches_baseline() {
        let cfg = ThroughputConfig {
            items: 50_000,
            duration_ns: 50_000_000,
            ..Default::default()
        };
        let p3 = run_throughput(&cfg, PolicyKind::P4Lru3);
        let p1 = run_throughput(&cfg, PolicyKind::P4Lru1);
        assert!(
            p3.ktps >= p1.ktps * 0.99,
            "P4LRU3 {} KTPS vs baseline {} KTPS (Figure 10a)",
            p3.ktps,
            p1.ktps
        );
    }
}
