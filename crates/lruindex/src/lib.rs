//! # p4lru-lruindex
//!
//! **LruIndex** (paper §3.2): in-network database query acceleration.
//!
//! The switch caches the database *index* — the 48-bit record address of a
//! key — in four series-connected arrays of P4LRU3 units. Query packets
//! probe all arrays read-only and stamp `cached_flag`/`cached_index` into
//! their headers; the server skips its B+Tree walk whenever the flag is
//! set. Reply packets perform the single deferred cache write (promote on a
//! hit, cascade-insert on a miss), which is what lets the series connection
//! avoid duplicate entries.
//!
//! * [`cache`] — the [`cache::IndexCache`] interface with series-connected
//!   P4LRU implementations and single-table baselines;
//! * [`system`] — the miss-rate/similarity driver (Figures 13, 16) and the
//!   closed-loop throughput model over the B+Tree database (Figure 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod system;

pub use cache::{IndexCache, ReplyEffect, SeriesIndex};
pub use p4lru_core::policies::PolicyKind;
pub use p4lru_core::series::{QueryHit, ReplyOutcome};
pub use system::{LruIndexConfig, LruIndexReport, ThroughputConfig, ThroughputReport};
