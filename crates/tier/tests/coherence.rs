//! Two-tier coherence tests (DESIGN.md §11).
//!
//! The contract under test: once a SET or DEL has been acknowledged, no
//! later GET may observe the overwritten value — the switch copy must have
//! been expelled before the write was forwarded, and no stale in-flight
//! miss reply may sneak back in afterwards. Random interleavings of
//! GET/SET/DEL run through a [`TierGateway`] against a sequential model;
//! any stale read surfaces as a model mismatch at an exact operation index.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use p4lru_kvstore::db::record_for;
use p4lru_server::server::{Server, ServerConfig};
use p4lru_tier::{GatewayConfig, SwitchTierConfig, TierGateway};

const ITEMS: u64 = 120;

fn tiny_server() -> Server {
    Server::spawn(&ServerConfig {
        items: ITEMS,
        units_per_shard: 32,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server spawns")
}

fn tiny_gateway(server: &Server, memory_bytes: usize) -> TierGateway {
    TierGateway::connect(
        server.local_addr(),
        &GatewayConfig {
            switch: SwitchTierConfig {
                levels: 3,
                memory_bytes,
                seed: 0xC0E7,
            },
            ..GatewayConfig::default()
        },
    )
    .expect("gateway connects")
}

/// Both tiers store fixed 64-byte records: a SET pads (or truncates).
fn pad64(value: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; 64];
    let n = value.len().min(64);
    out[..n].copy_from_slice(&value[..n]);
    out
}

fn populated_model() -> HashMap<u64, Vec<u8>> {
    (0..ITEMS).map(|k| (k, record_for(k).to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two-tier deployment must be observationally identical to the
    /// bare server: in particular, a GET after a SET/DEL ack returns the
    /// new value, never the expelled switch copy.
    #[test]
    fn random_interleavings_never_serve_stale_reads(
        raw in vec((0u8..4, 0u64..200, any::<u8>(), 0usize..80), 1..300),
        memory_bytes in 600usize..6_000,
    ) {
        let server = tiny_server();
        let mut gateway = tiny_gateway(&server, memory_bytes);
        let mut model = populated_model();

        for (i, &(kind, key, fill, len)) in raw.iter().enumerate() {
            match kind {
                // GETs twice as likely as each write kind: the stale window
                // only shows up when reads follow writes closely.
                0 | 1 => {
                    let got = gateway.get(key).expect("GET io");
                    let want = model.get(&key).cloned();
                    prop_assert_eq!(
                        got, want,
                        "stale or wrong GET of key {} at op {}", key, i
                    );
                }
                2 => {
                    let value = vec![fill; len];
                    gateway.set(key, &value).expect("SET io");
                    model.insert(key, pad64(&value));
                }
                _ => {
                    let existed = gateway.del(key).expect("DEL io");
                    prop_assert_eq!(
                        existed,
                        model.remove(&key).is_some(),
                        "DEL of key {} at op {} disagreed on existence", key, i
                    );
                }
            }
        }

        // Immediately after every write, its key must read back fresh.
        for &(kind, key, ..) in raw.iter().filter(|&&(k, ..)| k >= 2) {
            let got = gateway.get(key).expect("GET io");
            let want = model.get(&key).cloned();
            prop_assert_eq!(got, want, "post-run GET of key {key} ({kind})");
        }

        gateway.switch().check_invariants().expect("tier invariants");
        let snap = gateway.counters().snapshot(3);
        prop_assert!(
            snap.forwarded >= snap.sets + snap.dels,
            "every write must reach the server (forwarded {}, writes {})",
            snap.forwarded, snap.sets + snap.dels
        );
        prop_assert_eq!(snap.gets, snap.hits + snap.misses);
        server.shutdown();
    }
}

/// A focused regression for the exact interleaving the epoch guard exists
/// for: GET misses and records the epoch, a SET invalidates (and is acked)
/// before the miss reply is admitted — the reply must be dropped and the
/// next GET must see the SET's value.
#[test]
fn write_between_miss_and_admission_wins() {
    let server = tiny_server();
    let mut gateway = tiny_gateway(&server, 4_096);
    let key = 7;

    // Reproduce the gateway's miss path by hand, with the SET in the gap.
    let epoch = gateway.switch().epoch();
    let stale = record_for(key);
    gateway.set(key, b"fresh").unwrap();
    // The "in-flight reply" carrying the pre-SET value arrives late:
    assert!(
        !gateway_admit(&mut gateway, key, stale, epoch),
        "stale reply admitted past an acknowledged SET"
    );
    assert_eq!(
        gateway.get(key).unwrap(),
        Some(pad64(b"fresh")),
        "GET after SET ack served the expelled value"
    );
    assert_eq!(gateway.counters().snapshot(3).stale_drops, 1);
    server.shutdown();
}

fn gateway_admit(
    gateway: &mut TierGateway,
    key: u64,
    record: p4lru_kvstore::Record,
    epoch: u64,
) -> bool {
    gateway.switch_mut().admit(key, record, epoch)
}
