//! End-to-end tests of `p4lru_tierd`: unmodified protocol clients against
//! the proxy, STATS with the tier section, coherence across concurrent
//! connections, and `/metrics` exposition validity (the tier-side
//! counterpart of `crates/server/tests/observability.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use p4lru_kvstore::db::record_for;
use p4lru_obs::http::http_get;
use p4lru_server::client::Client;
use p4lru_server::server::{Server, ServerConfig};
use p4lru_tier::{ProxyConfig, SwitchTierConfig, TierProxy};

const ITEMS: u64 = 2_000;

fn server() -> Server {
    Server::spawn(&ServerConfig {
        items: ITEMS,
        units_per_shard: 64,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server spawns")
}

fn proxy_for(server: &Server, metrics: bool) -> TierProxy {
    TierProxy::spawn(&ProxyConfig {
        upstream: server.local_addr().to_string(),
        switch: SwitchTierConfig {
            levels: 3,
            memory_bytes: 8_192,
            seed: 0x9E0,
        },
        metrics_addr: metrics.then(|| "127.0.0.1:0".to_owned()),
        ..ProxyConfig::default()
    })
    .expect("proxy spawns")
}

fn pad64(value: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; 64];
    let n = value.len().min(64);
    out[..n].copy_from_slice(&value[..n]);
    out
}

#[test]
fn proxy_speaks_the_server_protocol_and_counts_hits() {
    let server = server();
    let proxy = proxy_for(&server, false);
    let mut client = Client::connect(proxy.local_addr()).unwrap();

    // Cold GET misses through to the server; the repeat hits the switch.
    for _ in 0..2 {
        assert_eq!(client.get(5).unwrap(), Some(record_for(5).to_vec()));
    }
    assert_eq!(client.get(ITEMS + 9).unwrap(), None, "absent key");

    // Writes invalidate before forwarding; reads observe them immediately.
    client.set(5, b"rewritten").unwrap();
    assert_eq!(client.get(5).unwrap(), Some(pad64(b"rewritten")));
    assert!(client.del(5).unwrap());
    assert_eq!(client.get(5).unwrap(), None);
    assert!(!client.del(5).unwrap(), "second DEL finds nothing");

    let snap = proxy.counters().snapshot(3);
    assert_eq!(snap.gets, 5);
    assert_eq!(snap.hits, 1, "exactly the repeated warm GET");
    assert_eq!(snap.sets, 1);
    assert_eq!(snap.dels, 2);
    assert!(snap.invalidations >= 1, "SET expelled the cached copy");
    assert_eq!(snap.forwarded, 4 + 1 + 2, "all but the warm hit");

    // STATS through the proxy carries the tier section; the same report
    // straight from the server does not.
    let report = client.stats().unwrap();
    let tier = report.tier.expect("proxy attaches the tier section");
    assert_eq!(tier.gets, 5);
    assert_eq!(tier.level_hits.len(), 3);
    assert!(report.totals.gets >= 4, "server saw the forwarded GETs");
    let mut direct = Client::connect(server.local_addr()).unwrap();
    assert!(direct.stats().unwrap().tier.is_none());

    drop(client);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn concurrent_writer_never_exposes_stale_reads_through_the_proxy() {
    let server = server();
    let proxy = proxy_for(&server, false);
    // Past the preloaded range: a preloaded record's first 8 bytes are the
    // key, which a reader racing ahead of the first SET would mistake for
    // a (high) version and then see writes 1..key as backslides.
    let key = ITEMS + 42;
    let rounds: u64 = 300;

    // One connection rewrites `key` with an encoded version counter while
    // another keeps reading it. Acked writes are strictly ordered, the SET
    // path invalidates before forwarding, and the epoch guard drops
    // in-flight stale replies — so the versions a reader observes must be
    // non-decreasing. A backslide is a stale switch hit.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let addr = proxy.local_addr();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut last = 0u64;
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Some(value) = client.get(key).unwrap() {
                    let version = u64::from_le_bytes(value[..8].try_into().unwrap());
                    assert!(
                        version >= last,
                        "read went back in time: {version} after {last}"
                    );
                    last = version;
                    observed += 1;
                }
            }
            observed
        })
    };
    let mut writer = Client::connect(proxy.local_addr()).unwrap();
    for version in 1..=rounds {
        writer.set(key, &version.to_le_bytes()).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed = reader.join().expect("reader thread");
    assert!(observed > 0, "reader must have raced at least one write");

    let snap = proxy.counters().snapshot(3);
    assert_eq!(snap.sets, rounds);
    drop(writer);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn shutdown_opcode_stops_the_proxy_and_spares_the_server() {
    let server = server();
    let proxy = proxy_for(&server, false);
    let addr = proxy.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.get(1).unwrap().is_some());
    client.shutdown().unwrap();
    proxy.wait();
    assert!(
        Client::connect(addr).is_err() || {
            // The listener may accept a last connection while unwinding;
            // it must not serve on it.
            let mut c = Client::connect(addr).unwrap();
            c.get(1).is_err()
        },
        "proxy still serving after SHUTDOWN"
    );
    // The upstream server survived (shutdown_upstream was off).
    let mut direct = Client::connect(server.local_addr()).unwrap();
    assert!(direct.get(1).unwrap().is_some());
    server.shutdown();
}

// --- /metrics exposition validity (mirrors server/tests/observability.rs) ---

#[derive(Debug)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses (and validates) the Prometheus text format: every line must be a
/// well-formed `# HELP`/`# TYPE` comment or a `name{labels} value` sample.
fn parse_exposition(text: &str) -> (Vec<Sample>, BTreeMap<String, String>) {
    let mut samples = Vec::new();
    let mut types = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kw, rest) = rest.split_once(' ').expect("comment keyword");
            assert!(kw == "HELP" || kw == "TYPE", "unknown comment {line:?}");
            let (name, detail) = rest.split_once(' ').expect("comment body");
            assert!(valid_metric_name(name), "bad name in {line:?}");
            if kw == "TYPE" {
                assert!(
                    ["counter", "gauge", "histogram"].contains(&detail),
                    "bad type in {line:?}"
                );
                types.insert(name.to_owned(), detail.to_owned());
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("bad value {line:?}: {e}"));
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let mut labels = BTreeMap::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(valid_metric_name(k), "bad label name in {line:?}");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("quoted label value");
                    labels.insert(k.to_owned(), v.to_owned());
                }
                (name.to_owned(), labels)
            }
        };
        assert!(valid_metric_name(&name), "bad metric name in {line:?}");
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    (samples, types)
}

fn value_of(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

#[test]
fn proxy_metrics_endpoint_is_valid_exposition_and_matches_counters() {
    let server = server();
    let proxy = proxy_for(&server, true);
    let mut client = Client::connect(proxy.local_addr()).unwrap();
    for key in 0..40 {
        client.get(key % 8).unwrap();
    }
    client.set(3, b"x").unwrap();
    client.del(4).unwrap();

    let metrics = proxy.metrics_addr().expect("metrics endpoint configured");
    let (status, body) = http_get(metrics, "/metrics").expect("GET /metrics");
    assert!(status.contains("200"), "{status}");
    let (samples, types) = parse_exposition(&body);

    let snap = proxy.counters().snapshot(3);
    assert_eq!(value_of(&samples, "p4lru_tier_requests_total") as u64, 42);
    assert_eq!(
        value_of(&samples, "p4lru_tier_hits_total") as u64,
        snap.hits
    );
    assert_eq!(
        value_of(&samples, "p4lru_tier_forwarded_total") as u64,
        snap.forwarded
    );
    assert_eq!(
        value_of(&samples, "p4lru_tier_invalidations_total") as u64,
        snap.invalidations
    );
    let offload = value_of(&samples, "p4lru_tier_offload_ratio");
    assert!(
        (offload - snap.offload_ratio).abs() < 1e-9 && offload > 0.0,
        "offload gauge {offload} vs snapshot {}",
        snap.offload_ratio
    );

    // Per-level hits carry a level label per configured level and sum to
    // the hit total.
    let per_level: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "p4lru_tier_level_hits_total")
        .collect();
    assert_eq!(per_level.len(), 3);
    for s in &per_level {
        assert!(s.labels.contains_key("level"), "missing level label");
    }
    let level_sum: f64 = per_level.iter().map(|s| s.value).sum();
    assert_eq!(level_sum as u64, snap.hits);

    assert_eq!(
        types.get("p4lru_tier_hits_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("p4lru_tier_offload_ratio").map(String::as_str),
        Some("gauge")
    );

    drop(client);
    proxy.shutdown();
    server.shutdown();
}
