//! Regression test: one connection's slow upstream round-trip must not
//! block other connections' switch hits.
//!
//! The proxy's contract (crates/tier/src/proxy.rs) is that the shared
//! switch mutex is *not* held across the upstream round-trip: a GET miss
//! reads the epoch, releases the tier, forwards, and re-acquires to admit.
//! If that ever regresses — the lock held while the upstream dawdles — a
//! single slow upstream reply would serialize every other connection's hit
//! path behind it. This test pins the property with a purpose-built
//! upstream that answers one key only when told to.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;
use p4lru_server::protocol::{read_frame, write_frame, Request, Response};
use p4lru_tier::{ProxyConfig, SwitchTierConfig, TierProxy};

/// GETs of this key stall at the upstream until the gate opens.
const SLOW_KEY: u64 = 7_777;

/// A gate the slow request waits behind.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
}

impl Gate {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }

    fn wait(&self) {
        let opened = self.open.lock().unwrap();
        let (opened, timeout) = self
            .bell
            .wait_timeout_while(opened, Duration::from_secs(30), |open| !*open)
            .unwrap();
        assert!(!timeout.timed_out(), "gate never opened");
        drop(opened);
    }
}

/// A protocol-speaking upstream that serves `record_for(key)` for every
/// GET, except GETs of [`SLOW_KEY`], which wait for the gate. One thread
/// per connection — the stall only ties up the stalled connection, exactly
/// like a real (pipelined) serverd whose one shard is busy.
fn spawn_stalling_upstream(gate: Arc<Gate>) -> io::Result<(std::net::SocketAddr, TcpListener)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let accept = listener.try_clone()?;
    thread::spawn(move || {
        while let Ok((stream, _)) = accept.accept() {
            let gate = Arc::clone(&gate);
            thread::spawn(move || serve_upstream(stream, &gate));
        }
    });
    Ok((addr, listener))
}

fn serve_upstream(mut stream: TcpStream, gate: &Gate) {
    let _ = stream.set_nodelay(true);
    let mut frame = Vec::new();
    let mut out = Vec::new();
    loop {
        match read_frame(&mut stream, &mut frame) {
            Ok(true) => {}
            _ => return,
        }
        let response = match Request::decode(&frame) {
            Ok(Request::Get { key }) => {
                if key == SLOW_KEY {
                    gate.wait();
                }
                Response::Value(record_for(key).to_vec())
            }
            Ok(Request::Set { .. }) => Response::Ok,
            Ok(Request::Del { .. }) => Response::Ok,
            Ok(_) => Response::Err("unsupported in stalling upstream".to_owned()),
            Err(e) => Response::Err(e.to_string()),
        };
        out.clear();
        response.encode(&mut out);
        if write_frame(&mut stream, &out).is_err() {
            return;
        }
    }
}

#[test]
fn slow_upstream_round_trip_does_not_block_other_connections_hits() {
    let gate = Arc::new(Gate::default());
    let (upstream_addr, _listener) = spawn_stalling_upstream(Arc::clone(&gate)).unwrap();
    let proxy = TierProxy::spawn(&ProxyConfig {
        upstream: upstream_addr.to_string(),
        switch: SwitchTierConfig {
            levels: 3,
            memory_bytes: 8_192,
            seed: 0x51_0E,
        },
        ..ProxyConfig::default()
    })
    .unwrap();

    // Warm the switch on a fast key from connection B: miss, forward,
    // admit; the repeat proves it now hits.
    let warm = 42;
    let mut conn_b = Client::connect(proxy.local_addr()).unwrap();
    assert_eq!(conn_b.get(warm).unwrap(), Some(record_for(warm).to_vec()));
    assert_eq!(conn_b.get(warm).unwrap(), Some(record_for(warm).to_vec()));
    let hits_before = proxy.counters().snapshot(3).hits;
    assert!(hits_before >= 1, "warm key must hit the switch");

    // Connection A's GET parks inside the upstream round-trip.
    let slow_addr = proxy.local_addr();
    let conn_a = thread::spawn(move || {
        let mut client = Client::connect(slow_addr).unwrap();
        client.get(SLOW_KEY).unwrap()
    });
    // Make sure A reached the upstream (its forward counter ticks) before
    // measuring B.
    let forwarded_to = proxy.counters().snapshot(3).forwarded + 1;
    let reached = Instant::now();
    while proxy.counters().snapshot(3).forwarded < forwarded_to {
        assert!(
            reached.elapsed() < Duration::from_secs(10),
            "connection A never reached the upstream"
        );
        thread::sleep(Duration::from_millis(5));
    }

    // With A stalled mid-round-trip, B's switch hits must keep flowing
    // promptly — the mutex is free while A waits on the network.
    let rounds = 200;
    let burst = Instant::now();
    for _ in 0..rounds {
        assert_eq!(conn_b.get(warm).unwrap(), Some(record_for(warm).to_vec()));
    }
    let burst_elapsed = burst.elapsed();
    assert!(
        burst_elapsed < Duration::from_secs(5),
        "{rounds} switch hits took {burst_elapsed:?} while another \
         connection was stalled upstream — the tier lock is being held \
         across the round-trip"
    );
    let snap = proxy.counters().snapshot(3);
    assert!(
        snap.hits >= hits_before + rounds,
        "hits {} must have grown by the burst ({} before)",
        snap.hits,
        hits_before
    );

    // Release A; it completes with the right value, and the admission it
    // races in afterwards is the epoch guard's business, not this test's.
    gate.open();
    assert_eq!(
        conn_a.join().expect("connection A panicked"),
        Some(record_for(SLOW_KEY).to_vec())
    );
    proxy.shutdown();
}
