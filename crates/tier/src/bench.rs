//! The two-tier vs server-only comparison harness behind `tier_bench` and
//! the CI smoke: spawn a fresh in-process serverd per measured point, drive
//! the same deterministic workload through a [`TierGateway`] (two-tier) or
//! a [`DirectDriver`] (server-only), and report hit rates, offload, and
//! client tail latency.
//!
//! Both deployments charge the same modeled wire ([`SwitchHop`]) so the
//! latency columns differ only where the paper says they should: switch
//! hits skip the switch↔server leg and the server's service time.

use std::io;

use p4lru_kvstore::db::record_for;
use p4lru_netsim::SwitchHop;
use p4lru_server::{LatencyHistogram, Server, ServerConfig, StatsReport};
use p4lru_traffic::ycsb::Op;
use p4lru_traffic::{HotFlipConfig, ScanConfig};

use crate::gateway::{DirectDriver, GatewayConfig, TierGateway};
use crate::switch::SwitchTierConfig;

/// The workloads the comparison runs (ISSUE acceptance: YCSB-B, Zipf
/// hot-key-flip, sequential scan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// YCSB-B: Zipf(0.9) keys, 95% reads, static hot set.
    YcsbB,
    /// Zipf(0.9) with the hot set rotating mid-run.
    HotFlip,
    /// Sequential sweep of the key space (LRU-adversarial).
    Scan,
}

impl Workload {
    /// Every workload, in figure order.
    pub const ALL: [Workload; 3] = [Workload::YcsbB, Workload::HotFlip, Workload::Scan];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::YcsbB => "ycsb_b",
            Workload::HotFlip => "zipf_hot_flip",
            Workload::Scan => "scan",
        }
    }
}

/// One comparison's sizing. The server is configured identically in both
/// deployments; two-tier *adds* the switch in front.
#[derive(Clone, Debug)]
pub struct TierBenchConfig {
    /// Key-space size (the server pre-populates `0..items`).
    pub items: u64,
    /// Operations driven per deployment per workload.
    pub ops: usize,
    /// Hot-set rotation period for [`Workload::HotFlip`].
    pub flip_every: u64,
    /// Server shards.
    pub shards: usize,
    /// Cache units per server shard (front-cache capacity is
    /// `shards * units * 3` entries).
    pub units_per_shard: usize,
    /// Switch-tier sizing (two-tier only).
    pub switch: SwitchTierConfig,
    /// The modeled wire both deployments are charged.
    pub hop: SwitchHop,
    /// Workload and hash seed.
    pub seed: u64,
}

impl Default for TierBenchConfig {
    fn default() -> Self {
        Self {
            items: 20_000,
            ops: 60_000,
            flip_every: 15_000,
            shards: 2,
            // 2 shards × 640 units × 3 entries ≈ 3.8k server cache entries,
            // on par with the ~4k-entry switch below: the comparison adds a
            // second tier of similar size, not a bigger cache in disguise.
            units_per_shard: 640,
            // 60 kB of 15 B/entry index SRAM ≈ 4k switch entries (~20% of
            // the key space), the regime where the paper's offload story
            // plays out.
            switch: SwitchTierConfig {
                levels: 4,
                memory_bytes: 60_000,
                seed: 0x7134,
            },
            hop: SwitchHop::testbed(),
            seed: 0xBE9C,
        }
    }
}

/// One deployment's measured outcome on one workload.
#[derive(Clone, Debug)]
pub struct DeploymentResult {
    /// `two_tier` or `server_only`.
    pub deployment: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Requests driven.
    pub requests: u64,
    /// GETs among them.
    pub gets: u64,
    /// GETs answered by *any* cache tier (switch or server front cache).
    pub total_hit_rate: f64,
    /// GETs answered at the switch (0 for server-only).
    pub switch_hit_rate: f64,
    /// GETs answered by the server's front cache, out of the GETs the
    /// *server* saw.
    pub server_hit_rate: f64,
    /// Fraction of all requests the server never saw (0 for server-only).
    pub offload: f64,
    /// Client-observed p50, microseconds (modeled wire + measured server).
    pub p50_us: f64,
    /// Client-observed p95, microseconds.
    pub p95_us: f64,
    /// Client-observed p99, microseconds.
    pub p99_us: f64,
}

fn quantile_us(hist: &LatencyHistogram, q: f64) -> f64 {
    hist.quantile_ns(q).unwrap_or(0) as f64 / 1_000.0
}

fn ops_for(workload: Workload, cfg: &TierBenchConfig) -> Vec<Op> {
    match workload {
        Workload::YcsbB => p4lru_traffic::ycsb::YcsbConfig {
            items: cfg.items,
            alpha: 0.9,
            read_fraction: 0.95,
            seed: cfg.seed,
        }
        .generate(cfg.ops),
        Workload::HotFlip => HotFlipConfig {
            items: cfg.items,
            alpha: 0.9,
            read_fraction: 0.95,
            flip_every: cfg.flip_every,
            seed: cfg.seed,
        }
        .generate(cfg.ops),
        Workload::Scan => ScanConfig {
            items: cfg.items,
            read_fraction: 0.95,
            seed: cfg.seed,
        }
        .generate(cfg.ops),
    }
}

fn spawn_server(cfg: &TierBenchConfig) -> io::Result<Server> {
    Server::spawn(&ServerConfig {
        items: cfg.items,
        shards: cfg.shards,
        units_per_shard: cfg.units_per_shard,
        seed: cfg.seed,
        ..ServerConfig::default()
    })
}

fn gets_in(ops: &[Op]) -> u64 {
    ops.iter().filter(|o| matches!(o, Op::Read(_))).count() as u64
}

/// Drives `workload` through a fresh server behind a [`TierGateway`].
pub fn run_two_tier(workload: Workload, cfg: &TierBenchConfig) -> io::Result<DeploymentResult> {
    let ops = ops_for(workload, cfg);
    let server = spawn_server(cfg)?;
    let mut gateway = TierGateway::connect(
        server.local_addr(),
        &GatewayConfig {
            switch: cfg.switch.clone(),
            hop: cfg.hop.clone(),
        },
    )?;
    for op in &ops {
        match *op {
            Op::Read(key) => {
                gateway.get(key)?;
            }
            Op::Update(key) => gateway.set(key, &record_for(key))?,
        }
    }
    let report = gateway.stats()?;
    let tier = report
        .tier
        .as_ref()
        .expect("gateway stats always carry the tier section");
    let p50 = quantile_us(gateway.latency(), 0.50);
    let p95 = quantile_us(gateway.latency(), 0.95);
    let p99 = quantile_us(gateway.latency(), 0.99);
    drop(gateway);
    let _ = server.shutdown();
    let gets = gets_in(&ops);
    let total_hits = tier.hits + report.totals.hits;
    Ok(DeploymentResult {
        deployment: "two_tier",
        workload: workload.label(),
        requests: ops.len() as u64,
        gets,
        total_hit_rate: ratio(total_hits, gets),
        switch_hit_rate: tier.hit_rate,
        server_hit_rate: report.totals.hit_rate,
        offload: tier.offload_ratio,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
    })
}

/// Drives `workload` through a fresh server with no switch tier (the
/// forwarding switch still charges its wire on every request).
pub fn run_server_only(workload: Workload, cfg: &TierBenchConfig) -> io::Result<DeploymentResult> {
    let ops = ops_for(workload, cfg);
    let server = spawn_server(cfg)?;
    let mut driver = DirectDriver::connect(server.local_addr(), cfg.hop.clone())?;
    for op in &ops {
        match *op {
            Op::Read(key) => {
                driver.get(key)?;
            }
            Op::Update(key) => driver.set(key, &record_for(key))?,
        }
    }
    let report: StatsReport = driver.stats()?;
    let p50 = quantile_us(driver.latency(), 0.50);
    let p95 = quantile_us(driver.latency(), 0.95);
    let p99 = quantile_us(driver.latency(), 0.99);
    drop(driver);
    let _ = server.shutdown();
    Ok(DeploymentResult {
        deployment: "server_only",
        workload: workload.label(),
        requests: ops.len() as u64,
        gets: gets_in(&ops),
        total_hit_rate: report.totals.hit_rate,
        switch_hit_rate: 0.0,
        server_hit_rate: report.totals.hit_rate,
        offload: 0.0,
        p50_us: p50,
        p95_us: p95,
        p99_us: p99,
    })
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TierBenchConfig {
        TierBenchConfig {
            items: 2_000,
            ops: 6_000,
            flip_every: 2_000,
            shards: 1,
            units_per_shard: 64,
            switch: SwitchTierConfig {
                levels: 3,
                memory_bytes: 6_000,
                seed: 0x7134,
            },
            ..TierBenchConfig::default()
        }
    }

    #[test]
    fn two_tier_dominates_server_only_on_ycsb() {
        let cfg = small();
        let two = run_two_tier(Workload::YcsbB, &cfg).unwrap();
        let one = run_server_only(Workload::YcsbB, &cfg).unwrap();
        assert!(two.offload > 0.0, "switch absorbed nothing");
        assert!(
            two.total_hit_rate >= one.total_hit_rate - 1e-9,
            "two-tier {} < server-only {}",
            two.total_hit_rate,
            one.total_hit_rate
        );
        assert_eq!(two.requests, one.requests, "same deterministic workload");
        assert!(two.p99_us > 0.0 && one.p99_us > 0.0);
    }

    #[test]
    fn hot_flip_keeps_the_switch_busy() {
        let cfg = small();
        let two = run_two_tier(Workload::HotFlip, &cfg).unwrap();
        assert!(
            two.switch_hit_rate > 0.1,
            "switch hit rate {} too low on the flip workload",
            two.switch_hit_rate
        );
    }
}
