//! The switch tier: the LruIndex series index paired with a register-backed
//! value store.
//!
//! On a Tofino, the series-connected P4LRU arrays track *which* keys are
//! cached and *where* (a 48-bit slot address); the values themselves live
//! in a separate register file indexed by that address. [`SwitchTier`]
//! reproduces that split in software: a [`SeriesIndex`] maps keys to slot
//! addresses, and a flat `Vec<Record>` plays the register file, with a
//! free-list recycling slots as index evictions release them.
//!
//! Coherence with the server tier rests on two rules (DESIGN.md §11):
//!
//! 1. **Invalidate-before-forward** — every SET/DEL expels the switch copy
//!    *before* being forwarded, so a later GET cannot hit stale data.
//! 2. **Epoch-guarded admission** — a GET miss records the tier's epoch
//!    before its server round-trip; the fetched value is admitted only if
//!    no invalidation bumped the epoch in between. Without the guard, a
//!    concurrent writer could slip a SET between the server read and the
//!    admission, re-installing the overwritten value.

use std::sync::Arc;

use p4lru_core::dfa::Dfa3;
use p4lru_kvstore::Record;
use p4lru_lruindex::{QueryHit, ReplyOutcome, SeriesIndex};

use crate::counters::TierCounters;

/// Switch-tier sizing. Mirrors the paper's deployment: `levels` series
/// arrays sharing `memory_bytes` of index SRAM (15 B/entry — 8-byte key,
/// 6-byte address, 1-byte state), one value slot per index entry.
#[derive(Clone, Debug)]
pub struct SwitchTierConfig {
    /// Series levels (the paper deploys 4).
    pub levels: usize,
    /// Index memory across all levels, bytes.
    pub memory_bytes: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for SwitchTierConfig {
    fn default() -> Self {
        Self {
            levels: 4,
            memory_bytes: 64 * 1024,
            seed: 0x7134,
        }
    }
}

/// The in-network front cache of a two-tier deployment.
pub struct SwitchTier {
    index: SeriesIndex<3, Dfa3>,
    /// The register-file value store, one slot per index entry.
    slots: Vec<Record>,
    /// Free slot addresses (every address not currently held by the index).
    free: Vec<u64>,
    /// Bumped by every invalidation; guards miss-reply admission.
    epoch: u64,
    counters: Arc<TierCounters>,
    levels: usize,
}

impl SwitchTier {
    /// Builds the tier with a fresh counter block.
    pub fn new(config: &SwitchTierConfig) -> Self {
        Self::with_counters(config, Arc::new(TierCounters::default()))
    }

    /// Builds the tier around an existing (shared) counter block.
    pub fn with_counters(config: &SwitchTierConfig, counters: Arc<TierCounters>) -> Self {
        let index = SeriesIndex::new(config.levels, config.memory_bytes, config.seed, "P4LRU3");
        let capacity = p4lru_lruindex::IndexCache::capacity(&index);
        Self {
            index,
            slots: vec![[0u8; p4lru_kvstore::VALUE_SIZE]; capacity],
            free: (0..capacity as u64).rev().collect(),
            epoch: 0,
            counters,
            levels: config.levels,
        }
    }

    /// Entry capacity (index entries = value slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cached entries right now.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Is the tier empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Series levels configured.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The shared counter block.
    pub fn counters(&self) -> &Arc<TierCounters> {
        &self.counters
    }

    /// The current invalidation epoch. A GET records this before its server
    /// round-trip and hands it back to [`Self::admit`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The switch's data-plane GET path: query the index, and on a hit
    /// promote the entry (the reply pass) and read its slot. Counts the hit
    /// per level. Returns `None` on a miss — the caller forwards.
    pub fn lookup(&mut self, key: u64) -> Option<(usize, Record)> {
        let (hit, addr) = self.index.query_level(key);
        let QueryHit::Level(level) = hit else {
            return None;
        };
        let addr = addr.expect("a query hit always carries its address");
        let record = self.slots[addr as usize];
        match self.index.admit(hit, key, addr) {
            ReplyOutcome::Promoted => {}
            outcome => unreachable!("promotion of a just-queried key: {outcome:?}"),
        }
        self.counters.hit(level);
        Some((level, record))
    }

    /// Admits a miss reply fetched from the server, unless an invalidation
    /// happened since `epoch` was read (the guard drops the reply exactly
    /// as the switch drops a reply whose `cached_flag` went stale).
    pub fn admit(&mut self, key: u64, record: Record, epoch: u64) -> bool {
        if epoch != self.epoch {
            self.counters.stale_drop();
            return false;
        }
        // A racing reader's reply may have admitted the key already (two
        // pipelined GETs of the same cold key): refresh its slot in place
        // rather than cascade-inserting a duplicate.
        if let (QueryHit::Level(level), Some(addr)) = self.index.query_level(key) {
            self.slots[addr as usize] = record;
            match self.index.admit(QueryHit::Level(level), key, addr) {
                ReplyOutcome::Promoted => {}
                outcome => unreachable!("promotion of a just-queried key: {outcome:?}"),
            }
            return true;
        }
        let slot = self
            .free
            .pop()
            .expect("value store is sized to the index capacity");
        self.slots[slot as usize] = record;
        match self.index.admit(QueryHit::Miss, key, slot) {
            ReplyOutcome::InsertedFresh { expelled } => {
                self.counters.insert();
                if let Some((_key, freed)) = expelled {
                    self.counters.eviction();
                    self.free.push(freed);
                }
            }
            // Unreachable: the pre-check above saw a miss and `&mut self`
            // is held throughout, so level 0 cannot already hold the key.
            outcome => unreachable!("miss-path admit produced {outcome:?}"),
        }
        true
    }

    /// Expels the switch copy of a key (invalidate-before-forward) and bumps
    /// the epoch. The epoch bumps even when the key is not cached: an
    /// in-flight miss reply for that key may still be on its way back, and
    /// admitting it would resurrect the overwritten value.
    pub fn invalidate(&mut self, key: u64) -> bool {
        self.epoch += 1;
        match self.index.invalidate(key) {
            Some((_level, addr)) => {
                self.free.push(addr);
                self.counters.invalidation();
                true
            }
            None => false,
        }
    }

    /// Internal consistency: every address is either free or indexed,
    /// exactly once.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.index.series().check_invariants()?;
        let indexed = self.index.series().len();
        if indexed + self.free.len() != self.slots.len() {
            return Err(format!(
                "slot leak: {indexed} indexed + {} free != {} total",
                self.free.len(),
                self.slots.len()
            ));
        }
        let mut seen = vec![false; self.slots.len()];
        for &addr in &self.free {
            if std::mem::replace(&mut seen[addr as usize], true) {
                return Err(format!("address {addr} freed twice"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(memory_bytes: usize) -> SwitchTier {
        SwitchTier::new(&SwitchTierConfig {
            levels: 3,
            memory_bytes,
            seed: 0xABC,
        })
    }

    fn record(byte: u8) -> Record {
        [byte; p4lru_kvstore::VALUE_SIZE]
    }

    #[test]
    fn miss_admit_hit_roundtrip() {
        let mut t = tier(4096);
        assert_eq!(t.lookup(42), None);
        let epoch = t.epoch();
        assert!(t.admit(42, record(7), epoch));
        let (level, rec) = t.lookup(42).expect("admitted key hits");
        assert_eq!(level, 0);
        assert_eq!(rec, record(7));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn invalidation_expels_and_bumps_epoch() {
        let mut t = tier(4096);
        let epoch = t.epoch();
        t.admit(5, record(1), epoch);
        assert!(t.invalidate(5));
        assert_eq!(t.lookup(5), None);
        assert!(!t.invalidate(5), "second invalidate finds nothing");
        assert_eq!(t.epoch(), epoch + 2, "every invalidate bumps the epoch");
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn epoch_guard_drops_raced_admission() {
        let mut t = tier(4096);
        // GET misses and records the epoch; a SET invalidates (key absent,
        // but the epoch still moves) before the reply returns.
        let epoch = t.epoch();
        t.invalidate(9);
        assert!(!t.admit(9, record(3), epoch), "stale reply must be dropped");
        assert_eq!(t.lookup(9), None);
        assert_eq!(t.counters().snapshot(3).stale_drops, 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_admission_refreshes_in_place() {
        let mut t = tier(4096);
        let epoch = t.epoch();
        assert!(t.admit(11, record(1), epoch));
        // A second pipelined reply for the same key, same epoch.
        assert!(t.admit(11, record(2), epoch));
        assert_eq!(t.len(), 1, "no duplicate entry");
        assert_eq!(t.lookup(11).unwrap().1, record(2));
        t.check_invariants().unwrap();
    }

    #[test]
    fn slots_recycle_under_churn() {
        let mut t = tier(2048);
        let capacity = t.capacity();
        for k in 0..(capacity as u64 * 5) {
            let epoch = t.epoch();
            t.admit(k, record(k as u8), epoch);
        }
        assert!(t.len() <= capacity);
        t.check_invariants().unwrap();
        let snap = t.counters().snapshot(3);
        assert!(snap.evictions > 0, "churn must evict");
        // Interleave invalidations and keep the free-list consistent.
        for k in 0..(capacity as u64 * 5) {
            t.invalidate(k);
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn per_level_hits_accumulate() {
        let mut t = tier(2048);
        for k in 0..(t.capacity() as u64) {
            let epoch = t.epoch();
            t.admit(k, record(1), epoch);
        }
        let mut hits = 0;
        for k in 0..(t.capacity() as u64) {
            if t.lookup(k).is_some() {
                hits += 1;
            }
        }
        let snap = t.counters().snapshot(3);
        assert_eq!(snap.hits, hits);
        assert_eq!(snap.level_hits.iter().sum::<u64>(), hits);
        assert_eq!(snap.level_hits.len(), 3);
        assert!(
            snap.level_hits[1] + snap.level_hits[2] > 0,
            "deep levels hit"
        );
    }
}
