//! The two-tier gateway: a client-side driver that runs the switch tier
//! in front of a live serverd connection.
//!
//! Each GET consults the [`SwitchTier`] first. A switch hit is served
//! locally and charged the modeled hit RTT ([`SwitchHop::hit_rtt`] — wire
//! plus one pipeline traversal); a miss is forwarded over the real TCP
//! client, charged the modeled direct RTT *plus* the measured server
//! round-trip, and the fetched value is admitted under the epoch guard.
//! SET/DEL invalidate the switch copy before forwarding (DESIGN.md §11).
//!
//! The latency histogram therefore mixes a modeled wire with a measured
//! server — the comparison a server-only baseline must match by charging
//! [`SwitchHop::direct_rtt`] on every operation.

use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Instant;

use p4lru_kvstore::Record;
use p4lru_netsim::SwitchHop;
use p4lru_server::shard::record_from_bytes;
use p4lru_server::{Client, LatencyHistogram, StatsReport};

use crate::counters::TierCounters;
use crate::switch::{SwitchTier, SwitchTierConfig};

/// Modeled wire size of a request frame (opcode, key, framing).
pub const REQUEST_BYTES: u32 = 64;
/// Modeled wire size of a response frame (64-byte record plus framing).
pub const RESPONSE_BYTES: u32 = 128;

/// Gateway configuration: switch sizing plus the latency model.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Switch-tier sizing.
    pub switch: SwitchTierConfig,
    /// The client→switch→server latency model.
    pub hop: SwitchHop,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            switch: SwitchTierConfig::default(),
            hop: SwitchHop::testbed(),
        }
    }
}

/// A switch tier fronting one serverd connection.
pub struct TierGateway {
    switch: SwitchTier,
    upstream: Client,
    hop: SwitchHop,
    latency: LatencyHistogram,
}

impl TierGateway {
    /// Connects to a running serverd and builds the switch tier in front.
    pub fn connect(addr: impl ToSocketAddrs, config: &GatewayConfig) -> io::Result<Self> {
        Ok(Self {
            switch: SwitchTier::new(&config.switch),
            upstream: Client::connect(addr)?,
            hop: config.hop.clone(),
            latency: LatencyHistogram::new(),
        })
    }

    /// Reads a key: switch first, server on a miss (with admission).
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        self.switch.counters().get();
        if let Some((_level, record)) = self.switch.lookup(key) {
            self.latency
                .record_ns(self.hop.hit_rtt(REQUEST_BYTES, RESPONSE_BYTES));
            return Ok(Some(record.to_vec()));
        }
        let epoch = self.switch.epoch();
        self.switch.counters().forward();
        let started = Instant::now();
        let value = self.upstream.get(key)?;
        let server_ns = started.elapsed().as_nanos() as u64;
        if let Some(value) = &value {
            self.switch.admit(key, record_from_bytes(value), epoch);
        }
        self.latency
            .record_ns(self.hop.direct_rtt(REQUEST_BYTES, RESPONSE_BYTES) + server_ns);
        Ok(value)
    }

    /// Writes a key: invalidate the switch copy, then forward.
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        self.switch.counters().set();
        self.switch.invalidate(key);
        self.switch.counters().forward();
        let started = Instant::now();
        self.upstream.set(key, value)?;
        let server_ns = started.elapsed().as_nanos() as u64;
        self.latency
            .record_ns(self.hop.direct_rtt(REQUEST_BYTES, RESPONSE_BYTES) + server_ns);
        Ok(())
    }

    /// Deletes a key: invalidate the switch copy, then forward.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        self.switch.counters().del();
        self.switch.invalidate(key);
        self.switch.counters().forward();
        let started = Instant::now();
        let existed = self.upstream.del(key)?;
        let server_ns = started.elapsed().as_nanos() as u64;
        self.latency
            .record_ns(self.hop.direct_rtt(REQUEST_BYTES, RESPONSE_BYTES) + server_ns);
        Ok(existed)
    }

    /// Fetches the server's STATS report with this tier's section attached.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        let report = self.upstream.stats()?;
        let snapshot = self.switch.counters().snapshot(self.switch.levels());
        Ok(report.with_tier(snapshot))
    }

    /// The tier's counters.
    pub fn counters(&self) -> &Arc<TierCounters> {
        self.switch.counters()
    }

    /// The switch tier itself (tests, diagnostics).
    pub fn switch(&self) -> &SwitchTier {
        &self.switch
    }

    /// Mutable access to the switch tier — lets tests replay the miss path
    /// step by step (e.g. deliver a late reply by hand).
    pub fn switch_mut(&mut self) -> &mut SwitchTier {
        &mut self.switch
    }

    /// Client-observed latency (modeled wire + measured server time).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The underlying server connection (for SHUTDOWN and raw access).
    pub fn upstream_mut(&mut self) -> &mut Client {
        &mut self.upstream
    }
}

/// A server-only baseline driver charging the same modeled wire on every
/// operation ([`SwitchHop::direct_rtt`] — the switch forwards everything),
/// so its latency histogram is directly comparable to [`TierGateway`]'s.
pub struct DirectDriver {
    upstream: Client,
    hop: SwitchHop,
    latency: LatencyHistogram,
}

impl DirectDriver {
    /// Connects to a running serverd.
    pub fn connect(addr: impl ToSocketAddrs, hop: SwitchHop) -> io::Result<Self> {
        Ok(Self {
            upstream: Client::connect(addr)?,
            hop,
            latency: LatencyHistogram::new(),
        })
    }

    fn charge(&mut self, started: Instant) {
        let server_ns = started.elapsed().as_nanos() as u64;
        self.latency
            .record_ns(self.hop.direct_rtt(REQUEST_BYTES, RESPONSE_BYTES) + server_ns);
    }

    /// Reads a key.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let started = Instant::now();
        let value = self.upstream.get(key)?;
        self.charge(started);
        Ok(value)
    }

    /// Writes a key.
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        let started = Instant::now();
        self.upstream.set(key, value)?;
        self.charge(started);
        Ok(())
    }

    /// Deletes a key.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        let started = Instant::now();
        let existed = self.upstream.del(key)?;
        self.charge(started);
        Ok(existed)
    }

    /// Fetches the server's STATS report.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        self.upstream.stats()
    }

    /// Client-observed latency (modeled wire + measured server time).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The underlying server connection.
    pub fn upstream_mut(&mut self) -> &mut Client {
        &mut self.upstream
    }
}

/// A `Record` view of the bytes a SET through the tier would leave in both
/// tiers (the server pads/truncates to its fixed record size; the switch
/// must cache the same image or a later hit would diverge from the server).
pub fn canonical_record(value: &[u8]) -> Record {
    record_from_bytes(value)
}
