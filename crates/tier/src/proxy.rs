//! `p4lru_tierd`: a TCP proxy daemon that speaks the serverd protocol and
//! runs the switch tier in front of a live serverd.
//!
//! Clients connect to the proxy exactly as they would to serverd — same
//! frames, same opcodes — so every existing client and load generator works
//! unchanged. Per connection the proxy keeps its own upstream connection;
//! the switch tier (index + value store) is shared across connections under
//! one mutex, the way all ports of one switch share the same register file.
//!
//! The lock is *not* held across the upstream round-trip: a GET miss reads
//! the epoch, releases the tier, forwards, and re-acquires to admit — the
//! epoch guard ([`crate::switch::SwitchTier::admit`]) rejects the admission
//! if any connection invalidated in between, which is what makes the
//! multi-connection proxy obey the same coherence contract as the
//! single-threaded gateway.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use p4lru_obs::{HopKind, HopTrace, MetricsHttp, SpanContext, TraceIdGen};
use p4lru_server::shard::record_from_bytes;
use p4lru_server::{tier_families, Client, FrameReader, FrameWriter, Request, Response};

use crate::counters::TierCounters;
use crate::switch::{SwitchTier, SwitchTierConfig};

/// How often blocked reads wake to check the running flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Proxy configuration.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// Address to listen on (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Address of the upstream serverd.
    pub upstream: String,
    /// Switch-tier sizing.
    pub switch: SwitchTierConfig,
    /// Optional Prometheus endpoint serving the tier families.
    pub metrics_addr: Option<String>,
    /// Forward SHUTDOWN to the upstream serverd as well (a client's
    /// SHUTDOWN always stops the proxy itself).
    pub shutdown_upstream: bool,
    /// Originate an in-band trace context for 1 in `trace_every` data
    /// requests (0 disables origination). A client's own trace context
    /// always propagates, whatever this is set to.
    pub trace_every: u64,
    /// Print a `TIER trace=…` breakdown when a traced request's
    /// end-to-end time exceeds this many microseconds.
    pub slow_op_us: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            upstream: "127.0.0.1:4650".to_owned(),
            switch: SwitchTierConfig::default(),
            metrics_addr: None,
            shutdown_upstream: false,
            trace_every: 64,
            slow_op_us: 10_000,
        }
    }
}

struct Shared {
    switch: Mutex<SwitchTier>,
    counters: Arc<TierCounters>,
    levels: usize,
    upstream: String,
    shutdown_upstream: bool,
    running: Arc<AtomicBool>,
    local_addr: SocketAddr,
    trace_ids: TraceIdGen,
    /// Sampling clock for span origination (1 in `trace_every`).
    traced: AtomicU64,
    trace_every: u64,
    slow_ns: u64,
}

impl Shared {
    /// The span this hop works under: the client's own context advanced
    /// one hop, or (for 1 in `trace_every` untraced data requests) a
    /// freshly originated one.
    fn span_for(&self, incoming: Option<SpanContext>) -> Option<SpanContext> {
        if let Some(span) = incoming {
            return Some(span.next_hop());
        }
        if self.trace_every == 0 {
            return None;
        }
        let n = self.traced.fetch_add(1, Ordering::Relaxed);
        if self.trace_every == 1 || n.is_multiple_of(self.trace_every) {
            Some(SpanContext::originate(self.trace_ids.next_id()))
        } else {
            None
        }
    }
}

/// A running tier proxy; stop with [`TierProxy::shutdown`] or wait for a
/// client's SHUTDOWN with [`TierProxy::wait`].
pub struct TierProxy {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<Shared>,
    metrics_http: Option<MetricsHttp>,
}

impl TierProxy {
    /// Binds the listener, verifies the upstream is reachable, and spawns
    /// the accept loop.
    pub fn spawn(config: &ProxyConfig) -> io::Result<Self> {
        // Fail fast on a bad upstream instead of per connection later.
        drop(TcpStream::connect(&config.upstream)?);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let counters = Arc::new(TierCounters::default());
        let shared = Arc::new(Shared {
            switch: Mutex::new(SwitchTier::with_counters(
                &config.switch,
                Arc::clone(&counters),
            )),
            counters: Arc::clone(&counters),
            levels: config.switch.levels,
            upstream: config.upstream.clone(),
            shutdown_upstream: config.shutdown_upstream,
            running: Arc::clone(&running),
            local_addr,
            trace_ids: TraceIdGen::new(),
            traced: AtomicU64::new(0),
            trace_every: config.trace_every,
            slow_ns: config.slow_op_us.saturating_mul(1_000),
        });
        let metrics_http = match &config.metrics_addr {
            Some(addr) => {
                let counters = Arc::clone(&counters);
                let levels = config.switch.levels;
                Some(MetricsHttp::serve(addr, move || {
                    let mut e = p4lru_obs::Expo::new();
                    tier_families(&mut e, &counters.snapshot(levels));
                    e.finish()
                })?)
            }
            None => None,
        };
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            thread::Builder::new()
                .name("p4lru-tier-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        Ok(Self {
            local_addr,
            running,
            accept: Some(accept),
            handlers,
            shared,
            metrics_http,
        })
    }

    /// Where the proxy is listening (resolves a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the Prometheus endpoint is listening, if configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(MetricsHttp::local_addr)
    }

    /// The tier's counters.
    pub fn counters(&self) -> &Arc<TierCounters> {
        &self.shared.counters
    }

    /// Blocks until a client sends SHUTDOWN, then tears down.
    pub fn wait(mut self) {
        self.teardown();
    }

    /// Initiates shutdown from this process and tears down.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr); // wake the accept loop
        self.teardown();
    }

    fn teardown(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
        self.metrics_http = None;
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if !shared.running.load(Ordering::SeqCst) {
            return; // the wake-up connection, or a straggler past shutdown
        }
        let shared = Arc::clone(shared);
        if let Ok(handle) = thread::Builder::new()
            .name("p4lru-tier-conn".to_owned())
            .spawn(move || handle_connection(stream, &shared))
        {
            let mut list = handlers.lock().expect("handler list poisoned");
            list.retain(|h| !h.is_finished());
            list.push(handle);
        }
    }
}

/// Serves one downstream connection, closed-loop: read a frame, answer it,
/// repeat. (The pipelined fan-out lives in serverd; the proxy's job is the
/// tier logic, and its hit path never blocks on the upstream anyway.)
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let Ok(mut upstream) = Client::connect(&shared.upstream) else {
        return;
    };
    let mut reader = FrameReader::new(stream);
    let mut writer = FrameWriter::new(write_half);
    let mut frame = Vec::new();
    let mut out = Vec::new();
    loop {
        match reader.read_frame(&mut frame) {
            Ok(true) => {}
            Ok(false) => return, // clean disconnect
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request = match Request::decode(&frame) {
            Ok(request) => request,
            Err(e) => {
                if respond(&mut writer, &mut out, &Response::Err(e.to_string())).is_err() {
                    return;
                }
                continue;
            }
        };
        let stop = matches!(request, Request::Shutdown);
        let span = match request {
            Request::Get { .. } | Request::Set { .. } | Request::Del { .. } => {
                shared.span_for(reader.take_span())
            }
            _ => None,
        };
        let started = Instant::now();
        let response = serve(&request, span, shared, &mut upstream);
        if let Some(ctx) = span {
            let total = started.elapsed().as_nanos() as u64;
            if total >= shared.slow_ns {
                let mut hop = HopTrace::new(ctx, HopKind::Tier);
                hop.segment("serve", total);
                println!("[p4lru_tierd] slow op: {}", hop.breakdown());
            }
        }
        if respond(&mut writer, &mut out, &response).is_err() {
            return;
        }
        if stop {
            shared.running.store(false, Ordering::SeqCst);
            if shared.shutdown_upstream {
                let _ = upstream.shutdown();
            }
            let _ = TcpStream::connect(shared.local_addr); // wake the accept loop
            return;
        }
    }
}

fn respond(
    writer: &mut FrameWriter<TcpStream>,
    out: &mut Vec<u8>,
    response: &Response,
) -> io::Result<()> {
    response.encode(out);
    writer.write_frame(out)?;
    writer.flush()
}

/// The tier logic for one request. Upstream failures surface as protocol
/// `Err` responses rather than dropped connections. `span` (this hop's
/// trace context) rides upstream on forwarded requests only — a switch hit
/// never leaves the tier, which the trace shows as a missing SERVER hop.
fn serve(
    request: &Request,
    span: Option<SpanContext>,
    shared: &Shared,
    upstream: &mut Client,
) -> Response {
    match *request {
        Request::Get { key } => {
            shared.counters.get();
            let epoch = {
                let mut switch = shared.switch.lock().expect("switch poisoned");
                if let Some((_level, record)) = switch.lookup(key) {
                    return Response::Value(record.to_vec());
                }
                switch.epoch()
            };
            shared.counters.forward();
            upstream.set_next_span(span);
            match upstream.get(key) {
                Ok(Some(value)) => {
                    shared.switch.lock().expect("switch poisoned").admit(
                        key,
                        record_from_bytes(&value),
                        epoch,
                    );
                    Response::Value(value)
                }
                Ok(None) => Response::NotFound,
                Err(e) => Response::Err(format!("upstream GET failed: {e}")),
            }
        }
        Request::Set { key, ref value } => {
            shared.counters.set();
            shared
                .switch
                .lock()
                .expect("switch poisoned")
                .invalidate(key);
            shared.counters.forward();
            upstream.set_next_span(span);
            match upstream.set(key, value) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(format!("upstream SET failed: {e}")),
            }
        }
        Request::Del { key } => {
            shared.counters.del();
            shared
                .switch
                .lock()
                .expect("switch poisoned")
                .invalidate(key);
            shared.counters.forward();
            upstream.set_next_span(span);
            match upstream.del(key) {
                Ok(true) => Response::Ok,
                Ok(false) => Response::NotFound,
                Err(e) => Response::Err(format!("upstream DEL failed: {e}")),
            }
        }
        Request::Stats => match upstream.stats() {
            Ok(report) => {
                let report = report.with_tier(shared.counters.snapshot(shared.levels));
                match serde_json::to_string(&report) {
                    Ok(json) => Response::StatsJson(json),
                    Err(e) => Response::Err(format!("stats serialization failed: {e:?}")),
                }
            }
            Err(e) => Response::Err(format!("upstream STATS failed: {e}")),
        },
        Request::Shutdown => Response::Ok,
        // A PING probes the *proxy* — it answers from its own front door,
        // the way serverd answers inline without a shard dispatch.
        Request::Ping => Response::Pong,
    }
}
