//! # p4lru-tier
//!
//! The paper's deployment story, end to end: an in-network LruIndex tier in
//! front of the real TCP serverd (DESIGN.md §11).
//!
//! The pieces, bottom up:
//!
//! * [`switch`] — the switch model: a [`p4lru_lruindex::SeriesIndex`]
//!   mapping keys to 48-bit slot addresses plus a register-file value
//!   store, with the two coherence rules (invalidate-before-forward,
//!   epoch-guarded admission) that keep it consistent with the server.
//! * [`counters`] — lock-free tier counters feeding the STATS `tier`
//!   section and the `p4lru_tier_*` Prometheus families.
//! * [`gateway`] — [`TierGateway`], the single-connection driver: switch
//!   hits are served locally under a [`p4lru_netsim::SwitchHop`] latency
//!   model, misses and writes ride the real client to serverd.
//!   [`DirectDriver`] is the server-only baseline charged the same wire.
//! * [`proxy`] — `p4lru_tierd`: the same logic as a standalone TCP daemon
//!   speaking the serverd protocol, so unmodified clients get the two-tier
//!   deployment by pointing at the proxy.
//! * [`mod@bench`] — the two-tier vs server-only comparison harness behind
//!   `tier_bench` and the CI smoke.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod counters;
pub mod gateway;
pub mod proxy;
pub mod switch;

pub use bench::{DeploymentResult, TierBenchConfig, Workload};
pub use counters::TierCounters;
pub use gateway::{DirectDriver, GatewayConfig, TierGateway};
pub use proxy::{ProxyConfig, TierProxy};
pub use switch::{SwitchTier, SwitchTierConfig};
