//! The tier daemon: runs the switch tier as a TCP proxy in front of a live
//! serverd, speaking the same protocol on both sides.
//!
//! Point any existing client (`loadgen`, `p4lru-cli`, the bench drivers) at
//! the proxy instead of the server and the deployment becomes two-tier:
//! GETs that hit the switch never reach serverd, SET/DEL invalidate the
//! switch copy before being forwarded (DESIGN.md §11), and
//! `--metrics-addr` serves the `p4lru_tier_*` Prometheus families.
//!
//! Exits cleanly on a client's SHUTDOWN opcode (printing final tier
//! counters); `--shutdown-upstream` forwards the SHUTDOWN to serverd too.

use std::process::ExitCode;

use p4lru_tier::{ProxyConfig, TierProxy};

const USAGE: &str = "\
p4lru_tierd — in-network LruIndex tier in front of serverd

USAGE: p4lru_tierd [OPTIONS]

OPTIONS:
  --addr <host:port>      listen address            [default: 127.0.0.1:4250]
  --upstream <host:port>  serverd to front          [default: 127.0.0.1:4190]
  --levels <n>            series index levels       [default: 4]
  --switch-memory <bytes> index SRAM across levels  [default: 65536]
  --seed <n>              index hash seed           [default: 0x7134]
  --metrics-addr <a>      serve Prometheus text at http://<a>/metrics
  --shutdown-upstream     forward a client's SHUTDOWN to serverd as well
  --trace-every <n>       originate an in-band trace for 1 in n requests
                          (0 disables origination; forwarded client spans
                          always propagate)        [default: 64]
  --slow-op-us <n>        print a TIER trace breakdown past this
                          end-to-end time          [default: 10000]
  -h, --help              print this help
";

fn parse_args() -> Result<ProxyConfig, String> {
    let mut config = ProxyConfig {
        addr: "127.0.0.1:4250".to_owned(),
        upstream: "127.0.0.1:4190".to_owned(),
        ..ProxyConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--shutdown-upstream" {
            config.shutdown_upstream = true;
            continue;
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--upstream" => config.upstream = value,
            "--levels" => config.switch.levels = value.parse().map_err(bad)?,
            "--switch-memory" => config.switch.memory_bytes = value.parse().map_err(bad)?,
            "--seed" => config.switch.seed = value.parse().map_err(bad)?,
            "--metrics-addr" => config.metrics_addr = Some(value),
            "--trace-every" => config.trace_every = value.parse().map_err(bad)?,
            "--slow-op-us" => config.slow_op_us = value.parse().map_err(bad)?,
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    if config.switch.levels == 0 {
        return Err("--levels must be at least 1".to_owned());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let proxy = match TierProxy::spawn(&config) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("error: failed to start tier proxy: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "p4lru_tierd listening on {} (upstream {}, {} levels, {} B index)",
        proxy.local_addr(),
        config.upstream,
        config.switch.levels,
        config.switch.memory_bytes
    );
    if let Some(addr) = proxy.metrics_addr() {
        eprintln!("p4lru_tierd metrics on http://{addr}/metrics");
    }
    let counters = std::sync::Arc::clone(proxy.counters());
    let levels = config.switch.levels;
    proxy.wait();
    let snapshot = counters.snapshot(levels);
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("error: stats serialization failed: {e:?}"),
    }
    ExitCode::SUCCESS
}
