//! Lock-free tier counters, shared between the request path and whoever
//! serves STATS or `/metrics` — the same discipline as the server's
//! [`p4lru_server::ShardMetrics`]: individual counters are exact, the set
//! is read without a lock (a register dump, not a transaction).

use std::sync::atomic::{AtomicU64, Ordering};

use p4lru_server::TierSnapshot;

/// Most series levels a deployment can configure (the paper deploys 4; the
/// fixed bound keeps per-level hit counters allocation-free on the hot
/// path).
pub const MAX_LEVELS: usize = 8;

/// Atomic counters of one switch tier.
#[derive(Debug, Default)]
pub struct TierCounters {
    /// GETs that consulted the switch tier.
    pub gets: AtomicU64,
    /// GETs answered entirely at the switch.
    pub hits: AtomicU64,
    /// Hits by series level (index 0 = front array).
    pub level_hits: [AtomicU64; MAX_LEVELS],
    /// SETs routed through the tier.
    pub sets: AtomicU64,
    /// DELs routed through the tier.
    pub dels: AtomicU64,
    /// Requests of any kind forwarded to the server.
    pub forwarded: AtomicU64,
    /// Switch entries expelled by invalidate-before-forward.
    pub invalidations: AtomicU64,
    /// Miss replies admitted into the switch.
    pub inserts: AtomicU64,
    /// Entries pushed out of the last series level by admissions.
    pub evictions: AtomicU64,
    /// Miss replies dropped by the epoch guard (an invalidation raced the
    /// server round-trip).
    pub stale_drops: AtomicU64,
}

impl TierCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a GET reaching the tier.
    pub fn get(&self) {
        Self::bump(&self.gets);
    }

    /// Records a switch hit at `level`.
    pub fn hit(&self, level: usize) {
        Self::bump(&self.hits);
        if let Some(c) = self.level_hits.get(level) {
            Self::bump(c);
        }
    }

    /// Records a SET reaching the tier.
    pub fn set(&self) {
        Self::bump(&self.sets);
    }

    /// Records a DEL reaching the tier.
    pub fn del(&self) {
        Self::bump(&self.dels);
    }

    /// Records a request forwarded to the server.
    pub fn forward(&self) {
        Self::bump(&self.forwarded);
    }

    /// Records an entry expelled by invalidation.
    pub fn invalidation(&self) {
        Self::bump(&self.invalidations);
    }

    /// Records a miss reply admitted into the switch.
    pub fn insert(&self) {
        Self::bump(&self.inserts);
    }

    /// Records an entry expelled from the last level.
    pub fn eviction(&self) {
        Self::bump(&self.evictions);
    }

    /// Records a miss reply dropped by the epoch guard.
    pub fn stale_drop(&self) {
        Self::bump(&self.stale_drops);
    }

    /// A point-in-time [`TierSnapshot`] with `levels` per-level entries and
    /// the derived ratios filled in.
    pub fn snapshot(&self, levels: usize) -> TierSnapshot {
        let gets = self.gets.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        TierSnapshot {
            gets,
            hits,
            level_hits: self.level_hits[..levels.min(MAX_LEVELS)]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            misses: gets.saturating_sub(hits),
            sets: self.sets.load(Ordering::Relaxed),
            dels: self.dels.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_drops: self.stale_drops.load(Ordering::Relaxed),
            hit_rate: 0.0,
            offload_ratio: 0.0,
        }
        .with_ratios()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts_and_ratios() {
        let c = TierCounters::default();
        for _ in 0..6 {
            c.get();
        }
        c.hit(0);
        c.hit(0);
        c.hit(2);
        c.set();
        c.del();
        c.forward();
        c.forward();
        c.invalidation();
        c.insert();
        c.eviction();
        c.stale_drop();
        let s = c.snapshot(3);
        assert_eq!(s.gets, 6);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 3);
        assert_eq!(s.level_hits, vec![2, 0, 1]);
        assert_eq!(s.sets, 1);
        assert_eq!(s.dels, 1);
        assert_eq!(s.forwarded, 2);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.stale_drops, 1);
        assert!((s.hit_rate - 0.5).abs() < 1e-12);
        assert!((s.offload_ratio - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_level_still_counts_the_hit() {
        let c = TierCounters::default();
        c.get();
        c.hit(MAX_LEVELS + 3);
        let s = c.snapshot(2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.level_hits, vec![0, 0]);
    }
}
