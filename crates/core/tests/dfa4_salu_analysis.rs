//! Deployability analysis of P4LRU4's factored state (paper §2.3.3).
//!
//! The paper proves S₄ ≅ V₄ ⋊ S₃ makes a P4LRU4 state *encodable* as two
//! registers but says deployment "would demand a more nuanced logic". This
//! analysis makes that precise by running the stateful-ALU realizability
//! search over every register transition:
//!
//! * all four **s-register** updates (S₃ left-multiplications) fit one SALU
//!   each — the Table 1 arithmetic family generalizes;
//! * three of four **v-register** updates fit one SALU (identity, an XOR,
//!   and a ±-rotation);
//! * generator 2's v-update is the 3-cycle `[0,3,1,2]` on the V₄ codes,
//!   which no predicate + two-branch arithmetic realizes — *this* is the
//!   nuance. (On Tofino it would fit the SALU's small lookup table or a
//!   recoded V₄; either way P4LRU4 costs more than three plain SALUs.)

use p4lru_core::dfa::{CacheState, Dfa4};
use p4lru_core::salu::find_realization;

fn v_table(gen: usize) -> Vec<u8> {
    (0..4u8)
        .map(|v| {
            let mut d = Dfa4::from_codes(v, 0).unwrap();
            d.advance(gen);
            d.v_code()
        })
        .collect()
}

fn s_table(gen: usize) -> Vec<u8> {
    (0..6u8)
        .map(|s| {
            let mut d = Dfa4::from_codes(0, s).unwrap();
            d.advance(gen);
            d.s_code()
        })
        .collect()
}

#[test]
fn all_s_register_updates_fit_single_salus() {
    for gen in 0..4 {
        let table = s_table(gen);
        let instr = find_realization(&table, 8)
            .unwrap_or_else(|| panic!("s-update of generator {gen} ({table:?}) should fit"));
        assert!(instr.realizes(&table));
    }
}

#[test]
fn exactly_one_v_register_update_needs_nuanced_logic() {
    let mut unrealizable = Vec::new();
    for gen in 0..4 {
        let table = v_table(gen);
        match find_realization(&table, 8) {
            Some(instr) => assert!(instr.realizes(&table), "unsound realization for gen {gen}"),
            None => unrealizable.push((gen, table)),
        }
    }
    assert_eq!(
        unrealizable.len(),
        1,
        "expected exactly one nuanced transition, got {unrealizable:?}"
    );
    let (gen, table) = &unrealizable[0];
    assert_eq!(
        *gen, 2,
        "the nuanced generator is the hit-at-position-3 rotation"
    );
    // The 3-cycle (1 3 2) on the nonzero V4 codes.
    assert_eq!(table.as_slice(), &[0, 3, 1, 2]);
}

#[test]
fn v_updates_match_group_theoretic_form() {
    // v' = v_g ⊕ π_g(v) with π_g the conjugation by the generator's S₃
    // factor: π is a permutation of {1,2,3} fixing 0, so v' must map 0 to
    // v_g and be a bijection.
    for gen in 0..4 {
        let table = v_table(gen);
        let vg = table[0];
        let mut seen = [false; 4];
        for &t in &table {
            assert!(!seen[t as usize], "gen {gen}: v-update not a bijection");
            seen[t as usize] = true;
        }
        // π(0) = 0 ⇒ table[0] = v_g; consistency is definitional, but the
        // bijection + the XOR structure imply π_g(v) = table[v] ⊕ v_g fixes 0.
        assert_eq!(table[0] ^ vg, 0);
    }
}
