//! Property-based tests for p4lru-core invariants.
//!
//! Strategy: drive the real structures and simple reference models with
//! arbitrary operation sequences and require observational equivalence —
//! the P4LRU pipeline tricks must be *behaviorally invisible*.

use proptest::prelude::*;

use p4lru_core::dfa::{CacheState, Dfa2, Dfa3, Dfa4};
use p4lru_core::metrics::{OrderStatTree, SimilarityTracker};
use p4lru_core::perm::Perm;
use p4lru_core::policies::{merge_replace, Cache, IdealLru, P4Lru3Cache};
use p4lru_core::series::{QueryHit, SeriesLru};
use p4lru_core::unit::{LruUnit, Outcome, P4Lru3Unit};

// ---------------------------------------------------------------------------
// Reference model: a strict LRU list of bounded capacity.
// ---------------------------------------------------------------------------

/// Naive LRU: Vec ordered most-recent-first.
#[derive(Default)]
struct ModelLru {
    entries: Vec<(u8, u32)>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    fn access(&mut self, key: u8, value: u32) -> Option<(u8, u32)> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let (k, v) = self.entries.remove(pos);
            self.entries.insert(0, (k, v.wrapping_add(value)));
            return None;
        }
        self.entries.insert(0, (key, value));
        if self.entries.len() > self.capacity {
            self.entries.pop()
        } else {
            None
        }
    }
}

proptest! {
    /// A P4LRU3 unit behaves exactly like a 3-entry strict LRU.
    #[test]
    fn unit_matches_model_lru(ops in proptest::collection::vec((0u8..12, 0u32..1000), 0..400)) {
        let mut unit = P4Lru3Unit::<u8, u32>::new();
        let mut model = ModelLru::new(3);
        for (key, value) in ops {
            let out = unit.update(key, value, |acc, v| *acc = acc.wrapping_add(v));
            let model_evicted = model.access(key, value);
            match (&out, model_evicted) {
                (Outcome::Evicted { key: ek, value: ev }, Some((mk, mv))) => {
                    prop_assert_eq!(*ek, mk);
                    prop_assert_eq!(*ev, mv);
                }
                (Outcome::Hit { .. } | Outcome::Inserted, None) => {}
                other => prop_assert!(false, "divergence: {:?}", other),
            }
            // Same contents in the same recency order.
            let got: Vec<(u8, u32)> = unit.entries().map(|(_, k, v)| (*k, *v)).collect();
            prop_assert_eq!(&got, &model.entries);
            prop_assert!(unit.check_invariants().is_ok());
        }
    }

    /// All three encoded DFAs stay isomorphic to the permutation reference
    /// under arbitrary input words.
    #[test]
    fn encoded_dfas_isomorphic(word in proptest::collection::vec(0usize..4, 0..300)) {
        let mut d2 = Dfa2::default();
        let mut d3 = Dfa3::default();
        let mut d4 = Dfa4::default();
        let mut p2 = Perm::<2>::identity();
        let mut p3 = Perm::<3>::identity();
        let mut p4 = Perm::<4>::identity();
        for &w in &word {
            d2.advance(w.min(1));
            p2.advance(w.min(1));
            d3.advance(w.min(2));
            p3.advance(w.min(2));
            d4.advance(w);
            p4.advance(w);
            prop_assert_eq!(d2.as_perm(), p2);
            prop_assert_eq!(d3.as_perm(), p3);
            prop_assert_eq!(d4.as_perm(), p4);
        }
    }

    /// Composition respects the paper's convention on random permutations,
    /// and advance() is always premultiplication by the inverse rotation.
    #[test]
    fn advance_is_premultiplication(ranks in proptest::collection::vec(0usize..120, 1..50),
                                    pivots in proptest::collection::vec(0usize..5, 1..50)) {
        for (&r, &h) in ranks.iter().zip(&pivots) {
            let s = Perm::<5>::from_lehmer_rank(r);
            let mut fast = s;
            fast.advance(h);
            let slow = Perm::<5>::rotation(h).inverse().compose(&s);
            prop_assert_eq!(fast, slow);
        }
    }

    /// IdealLru is observationally a strict LRU for any trace.
    #[test]
    fn ideal_lru_matches_model(capacity in 1usize..20,
                               ops in proptest::collection::vec((0u8..30, 0u32..100), 0..500)) {
        let mut ideal = IdealLru::<u8, u32>::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (key, value) in ops {
            let out = ideal.access(key, value, 0, |acc, v| *acc = acc.wrapping_add(v));
            let model_evicted = model.access(key, value);
            prop_assert_eq!(out.clone().evicted(), model_evicted);
            let got: Vec<(u8, u32)> = ideal.iter_mru().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(&got, &model.entries);
        }
        prop_assert!(ideal.check_invariants().is_ok());
    }

    /// The deferred series protocol never stores a key at two levels.
    #[test]
    fn series_deferred_never_duplicates(levels in 1usize..5,
                                        units in 1usize..6,
                                        ops in proptest::collection::vec(0u16..80, 0..400)) {
        let mut s = SeriesLru::<u16, u32, 3, Dfa3>::new(levels, units, 99);
        for key in ops {
            let (hit, _) = s.query(&key);
            s.apply_reply(hit, key, u32::from(key));
            prop_assert_eq!(s.duplicate_count(), 0);
        }
        prop_assert!(s.check_invariants().is_ok());
    }

    /// Series query is read-only: two consecutive queries agree and leave
    /// all state untouched.
    #[test]
    fn series_query_is_pure(ops in proptest::collection::vec(0u16..50, 1..200)) {
        let mut s = SeriesLru::<u16, u32, 3, Dfa3>::new(3, 4, 7);
        for (i, key) in ops.iter().enumerate() {
            if i % 2 == 0 {
                s.insert_cascade(*key, u32::from(*key));
            }
            let a = s.query(key).0;
            let b = s.query(key).0;
            prop_assert_eq!(a, b);
            if let QueryHit::Level(l) = a {
                prop_assert!(l < s.level_count());
            }
        }
    }

    /// OrderStatTree agrees with a sorted-vec model.
    #[test]
    fn ostree_matches_model(ops in proptest::collection::vec((any::<bool>(), 0u64..200), 0..500),
                            probes in proptest::collection::vec(0u64..210, 1..20)) {
        let mut tree = OrderStatTree::new();
        let mut model: Vec<u64> = Vec::new();
        for (insert, key) in ops {
            if insert {
                tree.insert(key);
                if !model.contains(&key) {
                    model.push(key);
                }
            } else {
                let was = tree.remove(key);
                let pos = model.iter().position(|&k| k == key);
                prop_assert_eq!(was, pos.is_some());
                if let Some(p) = pos {
                    model.remove(p);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        for probe in probes {
            let naive = model.iter().filter(|&&k| k < probe).count();
            prop_assert_eq!(tree.count_less(probe), naive);
        }
    }

    /// The similarity shadow never diverges from the cache occupancy, and
    /// similarity stays in (0, 1].
    #[test]
    fn similarity_tracker_consistency(ops in proptest::collection::vec((0u16..60, 0u32..10), 1..600)) {
        let mut cache = P4Lru3Cache::<u16, u32>::new(8, 3);
        let mut tracker = SimilarityTracker::new(cache.capacity());
        for (i, (key, value)) in ops.into_iter().enumerate() {
            let out = cache.access(key, value, i as u64, merge_replace);
            tracker.observe(&key, &out);
            prop_assert_eq!(tracker.tracked(), cache.len());
        }
        let sim = tracker.similarity();
        prop_assert!(sim > 0.0 && sim <= 1.0, "similarity {}", sim);
    }

    /// Lehmer ranking is a bijection for N=5.
    #[test]
    fn lehmer_bijection(rank in 0usize..120) {
        let p = Perm::<5>::from_lehmer_rank(rank);
        prop_assert_eq!(p.lehmer_rank(), rank);
    }

    /// insert_tail never disturbs the recency of other entries.
    #[test]
    fn insert_tail_preserves_non_tail_entries(setup in proptest::collection::vec(0u8..6, 3..10),
                                              newcomer in 100u8..110) {
        let mut unit = LruUnit::<u8, u32, 3, Dfa3>::new();
        for k in setup {
            unit.update(k, u32::from(k), merge_replace);
        }
        let before: Vec<(u8, u32)> = unit.entries().map(|(_, k, v)| (*k, *v)).collect();
        unit.insert_tail(newcomer, 0);
        let after: Vec<(u8, u32)> = unit.entries().map(|(_, k, v)| (*k, *v)).collect();
        // All but the last entry are untouched.
        let keep = before.len().saturating_sub(1);
        prop_assert_eq!(&before[..keep], &after[..keep]);
        prop_assert_eq!(after.last().map(|(k, _)| *k), Some(newcomer));
        prop_assert!(unit.check_invariants().is_ok());
    }
}
