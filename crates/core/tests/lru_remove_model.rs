//! Property test: `LruArray::remove` must preserve the relative LRU order
//! of the surviving entries.
//!
//! P4LRU's cache state is a DFA over permutations (paper §2.2), and
//! `remove` is the one operation the hardware pipeline never performs — it
//! exists for the software deployments (the server invalidates a cached
//! address on DEL). That makes it the easiest place to corrupt the
//! permutation: a buggy removal could legally-looking compact the keys but
//! leave the value mapping pointing at the wrong slots, or reorder the
//! survivors. So every unit is checked against the obvious executable
//! model — a `VecDeque` with most-recently-used at the front — under
//! arbitrary interleavings of get/set/remove.

use std::collections::VecDeque;

use p4lru_core::array::P4Lru3Array;
use p4lru_core::unit::Outcome;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Get(u16),
    Set(u16, u32),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key space over few units forces collisions, evictions, and
    // removals of keys at every LRU position.
    prop_oneof![
        any::<u16>().prop_map(|k| Op::Get(k % 60)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Set(k % 60, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 60)),
    ]
}

/// The executable model of one three-entry LRU unit: front = MRU.
type Unit = VecDeque<(u16, u32)>;

fn model_set(unit: &mut Unit, key: u16, value: u32) -> Outcome<u16, u32> {
    if let Some(pos) = unit.iter().position(|&(k, _)| k == key) {
        unit.remove(pos);
        unit.push_front((key, value));
        return Outcome::Hit { pos };
    }
    unit.push_front((key, value));
    if unit.len() > 3 {
        let (key, value) = unit.pop_back().expect("len > 3");
        return Outcome::Evicted { key, value };
    }
    Outcome::Inserted
}

proptest! {
    #[test]
    fn remove_preserves_surviving_lru_order(
        units in 1usize..6,
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 0..400),
    ) {
        let mut arr = P4Lru3Array::<u16, u32>::with_seed(units, seed);
        let mut model: Vec<Unit> = vec![Unit::new(); units];

        for op in ops {
            match op {
                Op::Get(k) => {
                    let want = model[arr.index_of(&k)]
                        .iter()
                        .find(|&&(key, _)| key == k)
                        .map(|&(_, v)| v);
                    prop_assert_eq!(arr.get(&k).copied(), want);
                }
                Op::Set(k, v) => {
                    let unit = arr.index_of(&k);
                    let want = model_set(&mut model[unit], k, v);
                    let got = arr.update(k, v, |slot, v| *slot = v);
                    prop_assert_eq!(got, want);
                }
                Op::Remove(k) => {
                    let unit = arr.index_of(&k);
                    let pos = model[unit].iter().position(|&(key, _)| key == k);
                    let want = pos.and_then(|p| model[unit].remove(p)).map(|(_, v)| v);
                    prop_assert_eq!(arr.remove(&k), want);
                }
            }
            prop_assert!(arr.check_invariants().is_ok(), "{:?}", arr.check_invariants());

            // The survivors' relative recency must match the model exactly,
            // in every unit, after every operation.
            for (i, unit_model) in model.iter().enumerate() {
                let got: Vec<(u16, u32)> =
                    arr.unit(i).entries().map(|(_, &k, &v)| (k, v)).collect();
                let want: Vec<(u16, u32)> = unit_model.iter().copied().collect();
                prop_assert_eq!(got, want, "unit {} diverged from the model", i);
            }
        }

        let model_len: usize = model.iter().map(Unit::len).sum();
        prop_assert_eq!(arr.len(), model_len);
    }
}
