//! Stateful-ALU instruction model for cache-state transitions (§2.3).
//!
//! On Tofino, a register is updated by a *stateful ALU*: per packet, one
//! read-modify-write whose new value is chosen by a predicate between (at
//! most) two arithmetic branches. A cache-state DFA is deployable only if
//! each input symbol's transition function can be expressed as one such
//! instruction on the state register.
//!
//! This module gives that constraint a concrete, checkable form:
//!
//! * [`SaluInstr`] — predicate + two branches of add/sub/bit ops;
//! * [`find_realization`] — a small search proving (or refuting) that a
//!   transition function fits a single instruction;
//! * [`p4lru2_program`] / [`p4lru3_program`] — the paper's concrete
//!   programs (`^1`; `^1`/`^3`; `−2`/`+4`), verified exhaustively against
//!   the permutation semantics in tests.

use crate::dfa::CacheState;
use crate::perm::Perm;

/// One arithmetic branch of a stateful ALU: `state ← state ⊕ const` for a
/// small operation set (what Tofino register actions support on one word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// Leave the register unchanged.
    Nop,
    /// Wrapping add of a constant.
    Add(u8),
    /// Wrapping subtract of a constant.
    Sub(u8),
    /// Bitwise XOR with a constant.
    Xor(u8),
    /// Bitwise AND with a constant.
    And(u8),
    /// Bitwise OR with a constant.
    Or(u8),
    /// Overwrite with a constant.
    Set(u8),
}

impl AluOp {
    /// Applies the branch to a register value.
    #[inline]
    pub fn eval(self, state: u8) -> u8 {
        match self {
            AluOp::Nop => state,
            AluOp::Add(c) => state.wrapping_add(c),
            AluOp::Sub(c) => state.wrapping_sub(c),
            AluOp::Xor(c) => state ^ c,
            AluOp::And(c) => state & c,
            AluOp::Or(c) => state | c,
            AluOp::Set(c) => c,
        }
    }
}

/// The predicate selecting between the two branches. Tofino predicates
/// compare the current register value against a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Always take the true branch (single-branch instruction).
    Always,
    /// True branch when `state >= c`.
    Ge(u8),
    /// True branch when `state <= c`.
    Le(u8),
    /// True branch when `state == c`.
    Eq(u8),
    /// True branch when `state & mask != 0`.
    TestBits(u8),
}

impl Pred {
    /// Evaluates the predicate on a register value.
    #[inline]
    pub fn eval(self, state: u8) -> bool {
        match self {
            Pred::Always => true,
            Pred::Ge(c) => state >= c,
            Pred::Le(c) => state <= c,
            Pred::Eq(c) => state == c,
            Pred::TestBits(m) => state & m != 0,
        }
    }
}

/// One stateful-ALU instruction: a predicate and two arithmetic branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaluInstr {
    /// Branch selector.
    pub pred: Pred,
    /// Branch taken when the predicate holds.
    pub on_true: AluOp,
    /// Branch taken otherwise.
    pub on_false: AluOp,
}

impl SaluInstr {
    /// A single-branch instruction.
    pub fn unconditional(op: AluOp) -> Self {
        Self {
            pred: Pred::Always,
            on_true: op,
            on_false: AluOp::Nop,
        }
    }

    /// Executes the instruction on a register value.
    #[inline]
    pub fn eval(self, state: u8) -> u8 {
        if self.pred.eval(state) {
            self.on_true.eval(state)
        } else {
            self.on_false.eval(state)
        }
    }

    /// Does this instruction compute `f` on the domain `0..f.len()`?
    pub fn realizes(self, f: &[u8]) -> bool {
        f.iter()
            .enumerate()
            .all(|(s, &out)| self.eval(s as u8) == out)
    }
}

/// Searches for a single stateful-ALU instruction computing the transition
/// function `f` (given as its value table over states `0..f.len()`).
///
/// The search space is every predicate/branch combination with constants up
/// to `max_const`; it is tiny (≈10⁵ candidates for `max_const = 8`), which is
/// the point — the ALU's expressiveness really is this small. Returns the
/// first instruction found, preferring unconditional ones.
pub fn find_realization(f: &[u8], max_const: u8) -> Option<SaluInstr> {
    let ops = |out: &mut Vec<AluOp>| {
        out.push(AluOp::Nop);
        for c in 0..=max_const {
            out.push(AluOp::Add(c));
            out.push(AluOp::Sub(c));
            out.push(AluOp::Xor(c));
            out.push(AluOp::And(c));
            out.push(AluOp::Or(c));
            out.push(AluOp::Set(c));
        }
    };
    let mut branch_ops = Vec::new();
    ops(&mut branch_ops);

    // Unconditional first: cheaper in hardware and matches the paper's op 1/2.
    for &op in &branch_ops {
        let instr = SaluInstr::unconditional(op);
        if instr.realizes(f) {
            return Some(instr);
        }
    }
    let mut preds = Vec::new();
    for c in 0..=max_const {
        preds.push(Pred::Ge(c));
        preds.push(Pred::Le(c));
        preds.push(Pred::Eq(c));
        preds.push(Pred::TestBits(c));
    }
    for &pred in &preds {
        for &on_true in &branch_ops {
            for &on_false in &branch_ops {
                let instr = SaluInstr {
                    pred,
                    on_true,
                    on_false,
                };
                if instr.realizes(f) {
                    return Some(instr);
                }
            }
        }
    }
    None
}

/// A complete SALU program for a cache-state DFA: one instruction per input
/// symbol (key-array outcome). The instruction count is the number of
/// stateful ALUs consumed in the state stage.
#[derive(Clone, Debug)]
pub struct SaluProgram {
    /// `instrs[pos]` handles a hit at key position `pos` (with `pos = N-1`
    /// also covering the miss).
    pub instrs: Vec<SaluInstr>,
}

impl SaluProgram {
    /// Number of stateful ALUs the program occupies.
    ///
    /// Each SALU supports two arithmetic branches; an unconditional
    /// instruction uses one branch, a predicated one uses two. Instructions
    /// pack greedily into SALUs (first-fit), reproducing the paper's counts:
    /// one SALU for P4LRU2 (ops 1+2 share it), three for P4LRU3.
    pub fn salu_count(&self) -> usize {
        let mut free_branches: Vec<usize> = Vec::new();
        for instr in &self.instrs {
            let need = if matches!(instr.pred, Pred::Always) {
                1
            } else {
                2
            };
            if let Some(slot) = free_branches.iter_mut().find(|f| **f >= need) {
                *slot -= need;
            } else {
                free_branches.push(2 - need);
            }
        }
        free_branches.len()
    }

    /// Runs the program as a DFA from `start`, applying the instruction for
    /// each input in `inputs`.
    pub fn run(&self, start: u8, inputs: &[usize]) -> u8 {
        inputs
            .iter()
            .fold(start, |s, &pos| self.instrs[pos].eval(s))
    }

    /// Verifies the program against an encoded DFA type: for every reachable
    /// code and every input, the instruction must map code to code exactly as
    /// the DFA does. `codes` enumerates the valid register values and
    /// `encode`/`decode` bridge to the DFA.
    pub fn verify_against<const N: usize, D, F, G>(
        &self,
        codes: &[u8],
        decode: F,
        code_of: G,
    ) -> Result<(), String>
    where
        D: CacheState<N>,
        F: Fn(u8) -> D,
        G: Fn(&D) -> u8,
    {
        if self.instrs.len() != N {
            return Err(format!(
                "program has {} instructions, DFA needs {N}",
                self.instrs.len()
            ));
        }
        for &c in codes {
            for (pos, instr) in self.instrs.iter().enumerate() {
                let mut d = decode(c);
                d.advance(pos);
                let want = code_of(&d);
                let got = instr.eval(c);
                if got != want {
                    return Err(format!(
                        "code {c} input {pos}: ALU gives {got}, DFA gives {want}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The paper's P4LRU2 program (§2.3.1): operation 1 is a no-op, operation 2
/// is `S ← S ^ 1`. One stateful ALU.
pub fn p4lru2_program() -> SaluProgram {
    SaluProgram {
        instrs: vec![
            SaluInstr::unconditional(AluOp::Nop),
            SaluInstr::unconditional(AluOp::Xor(1)),
        ],
    }
}

/// The paper's P4LRU3 program (§2.3.2):
///
/// * operation 1 — no-op;
/// * operation 2 — `S ^ 1` if `S ≥ 4` else `S ^ 3`;
/// * operation 3 — `S − 2` if `S ≥ 2` else `S + 4`.
///
/// Three stateful ALUs, within the four a Tofino stage provides.
pub fn p4lru3_program() -> SaluProgram {
    SaluProgram {
        instrs: vec![
            SaluInstr::unconditional(AluOp::Nop),
            SaluInstr {
                pred: Pred::Ge(4),
                on_true: AluOp::Xor(1),
                on_false: AluOp::Xor(3),
            },
            SaluInstr {
                pred: Pred::Ge(2),
                on_true: AluOp::Sub(2),
                on_false: AluOp::Add(4),
            },
        ],
    }
}

/// Transition value-table of an encoded DFA for one input symbol, used as
/// input to [`find_realization`].
pub fn transition_table<const N: usize, D, F, G>(
    codes: &[u8],
    decode: F,
    code_of: G,
    pos: usize,
) -> Vec<u8>
where
    D: CacheState<N>,
    F: Fn(u8) -> D,
    G: Fn(&D) -> u8,
{
    codes
        .iter()
        .map(|&c| {
            let mut d = decode(c);
            d.advance(pos);
            code_of(&d)
        })
        .collect()
}

/// Reference transition table for the *Lehmer-ranked* states of Sₙ — what a
/// hypothetical unencoded P4LRUₙ register would have to realize. Used to
/// demonstrate that naive numberings do not fit the ALU (see tests).
pub fn lehmer_transition_table<const N: usize>(pos: usize) -> Vec<u8> {
    Perm::<N>::all()
        .map(|p| {
            let mut q = p;
            q.advance(pos);
            q.lehmer_rank() as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{Dfa2, Dfa3};

    #[test]
    fn paper_p4lru2_program_is_exact() {
        let prog = p4lru2_program();
        prog.verify_against::<2, Dfa2, _, _>(
            &[0, 1],
            |c| Dfa2::from_code(c).unwrap(),
            |d| d.code(),
        )
        .unwrap();
        assert_eq!(prog.salu_count(), 1);
    }

    #[test]
    fn paper_p4lru3_program_is_exact() {
        let prog = p4lru3_program();
        prog.verify_against::<3, Dfa3, _, _>(
            &[0, 1, 2, 3, 4, 5],
            |c| Dfa3::from_code(c).unwrap(),
            |d| d.code(),
        )
        .unwrap();
        // Paper: "we can utilize three stateful ALUs to implement the
        // arithmetic logic corresponding to operations 1, 2, and 3" — within
        // the four SALUs one Tofino stage offers.
        assert_eq!(prog.salu_count(), 3);
        assert!(prog.salu_count() <= 4);
    }

    #[test]
    fn searcher_rediscovers_the_paper_encoding_ops() {
        let codes: Vec<u8> = (0..6).collect();
        for pos in 0..3 {
            let table = transition_table::<3, Dfa3, _, _>(
                &codes,
                |c| Dfa3::from_code(c).unwrap(),
                |d| d.code(),
                pos,
            );
            let instr = find_realization(&table, 6)
                .unwrap_or_else(|| panic!("operation {pos} should fit one SALU"));
            assert!(instr.realizes(&table));
        }
    }

    #[test]
    fn searcher_verdicts_are_sound() {
        // Whatever the searcher returns must actually realize the table.
        let tables = [vec![1u8, 0, 3, 2], vec![0u8, 0, 0, 0], vec![3u8, 1, 2, 0]];
        for t in &tables {
            if let Some(instr) = find_realization(t, 8) {
                assert!(instr.realizes(t), "unsound for {t:?}");
            }
        }
    }

    #[test]
    fn lehmer_numbering_of_s3_does_not_fit_one_salu() {
        // The naive state numbering (Lehmer rank) is NOT ALU-friendly for
        // every operation — this is why Table 1's custom codes exist.
        let mut fits = 0;
        for pos in 0..3 {
            let table = lehmer_transition_table::<3>(pos);
            if find_realization(&table, 8).is_some() {
                fits += 1;
            }
        }
        assert!(
            fits < 3,
            "Lehmer codes unexpectedly fit all three operations"
        );
    }

    #[test]
    fn op_eval_semantics() {
        assert_eq!(AluOp::Add(3).eval(250), 253);
        assert_eq!(AluOp::Add(10).eval(250), 4); // wrapping
        assert_eq!(AluOp::Sub(2).eval(1), 255); // wrapping
        assert_eq!(AluOp::Xor(3).eval(1), 2);
        assert_eq!(AluOp::And(1).eval(3), 1);
        assert_eq!(AluOp::Or(4).eval(1), 5);
        assert_eq!(AluOp::Set(9).eval(200), 9);
        assert_eq!(AluOp::Nop.eval(7), 7);
    }

    #[test]
    fn pred_eval_semantics() {
        assert!(Pred::Always.eval(0));
        assert!(Pred::Ge(4).eval(4) && !Pred::Ge(4).eval(3));
        assert!(Pred::Le(2).eval(2) && !Pred::Le(2).eval(3));
        assert!(Pred::Eq(5).eval(5) && !Pred::Eq(5).eval(4));
        assert!(Pred::TestBits(2).eval(6) && !Pred::TestBits(2).eval(5));
    }

    #[test]
    fn program_run_traces_paper_example() {
        // Figure 4 walk: 4 --op2--> 5 --op3--> 3 --op3--> 1 --op2--> 2.
        let prog = p4lru3_program();
        assert_eq!(prog.run(4, &[1]), 5);
        assert_eq!(prog.run(5, &[2]), 3);
        assert_eq!(prog.run(3, &[2]), 1);
        assert_eq!(prog.run(1, &[1]), 2);
        assert_eq!(prog.run(4, &[1, 2, 2, 1]), 2);
    }

    #[test]
    fn verify_against_catches_wrong_programs() {
        let bad = SaluProgram {
            instrs: vec![
                SaluInstr::unconditional(AluOp::Nop),
                SaluInstr::unconditional(AluOp::Xor(1)), // wrong for codes <= 3
                SaluInstr {
                    pred: Pred::Ge(2),
                    on_true: AluOp::Sub(2),
                    on_false: AluOp::Add(4),
                },
            ],
        };
        let res = bad.verify_against::<3, Dfa3, _, _>(
            &[0, 1, 2, 3, 4, 5],
            |c| Dfa3::from_code(c).unwrap(),
            |d| d.code(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn salu_count_packs_branches() {
        // Two unconditional ops share one SALU (P4LRU2's case)…
        assert_eq!(p4lru2_program().salu_count(), 1);
        // …and four predicated ops need four SALUs.
        let four = SaluProgram {
            instrs: vec![
                SaluInstr {
                    pred: Pred::Ge(1),
                    on_true: AluOp::Add(1),
                    on_false: AluOp::Nop
                };
                4
            ],
        };
        assert_eq!(four.salu_count(), 4);
    }
}
