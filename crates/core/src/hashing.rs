//! Seedable 64-bit mixing hash.
//!
//! Every hash-indexed structure in this workspace (P4LRU arrays, the series
//! connection's per-level hash functions, sketches) needs a family of
//! independent, *deterministically seedable* hash functions — the switch uses
//! distinct hardware hash units per table, and reproducible experiments need
//! the same placement across runs. `std`'s `DefaultHasher` is neither
//! seedable nor stable across releases, so this module provides a small,
//! well-mixed alternative in the spirit of `wyhash`/`splitmix64`.

use std::hash::{Hash, Hasher};

/// Finalizing 64-bit mixer (the `splitmix64` finalizer). Full avalanche:
/// every input bit flips every output bit with probability ≈ 1/2.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a `u64` key under a seed. Cheap path for the common case of
/// integer keys (flow fingerprints, virtual addresses, database keys).
#[inline]
pub fn hash_u64(seed: u64, key: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// A seedable [`Hasher`] built on multiply-xor mixing.
///
/// Used through [`hash_of`] for arbitrary `Hash` keys; prefer [`hash_u64`]
/// when the key is already a 64-bit integer.
#[derive(Clone, Debug)]
pub struct SeededHasher {
    state: u64,
}

impl SeededHasher {
    /// Creates a hasher whose output is a deterministic function of `seed`
    /// and the written bytes.
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail; mix after every word so
        // field boundaries matter.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.state = mix64(self.state ^ w);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            // Include the length so "ab" | "" != "a" | "b".
            self.state = mix64(self.state ^ u64::from_le_bytes(w) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i) | 0x1_0000_0000);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i) | 0x2_0000_0000);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i) | 0x4_0000_0000);
    }
}

/// Hashes any `Hash` value under a seed.
#[inline]
pub fn hash_of<T: Hash + ?Sized>(seed: u64, value: &T) -> u64 {
    let mut h = SeededHasher::new(seed);
    value.hash(&mut h);
    h.finish()
}

/// A named hash function: a seed plus a modulus, mapping keys to bucket
/// indices. This is the software stand-in for one hardware hash unit.
#[derive(Clone, Copy, Debug)]
pub struct BucketHasher {
    seed: u64,
    buckets: usize,
}

impl BucketHasher {
    /// A hash function onto `0..buckets` derived from `seed`.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(seed: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        Self { seed, buckets }
    }

    /// Number of buckets this hasher maps onto.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Bucket index for `key`.
    #[inline]
    pub fn bucket<T: Hash + ?Sized>(&self, key: &T) -> usize {
        // Multiply-shift range reduction avoids the bias of `% buckets`
        // and is what switch hash units effectively do for power-of-two
        // table sizes.
        let h = hash_of(self.seed, key);
        (((u128::from(h)) * (self.buckets as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_small_sample() {
        let mut outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn different_seeds_give_independent_hashes() {
        let a: Vec<u64> = (0..1000u64).map(|k| hash_u64(1, k)).collect();
        let b: Vec<u64> = (0..1000u64).map(|k| hash_u64(2, k)).collect();
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn hasher_distinguishes_field_boundaries() {
        assert_ne!(hash_of(0, &("ab", "")), hash_of(0, &("a", "b")));
        assert_ne!(hash_of(0, &(1u32, 2u32)), hash_of(0, &(2u32, 1u32)));
    }

    #[test]
    fn hash_of_matches_for_equal_values() {
        #[derive(Hash)]
        struct Five(u32, u32, u32, u16, u8);
        let a = Five(1, 2, 3, 4, 5);
        let b = Five(1, 2, 3, 4, 5);
        assert_eq!(hash_of(42, &a), hash_of(42, &b));
    }

    #[test]
    fn bucket_hasher_stays_in_range_and_spreads() {
        let h = BucketHasher::new(3, 100);
        let mut counts = vec![0usize; 100];
        for k in 0..100_000u64 {
            let b = h.bucket(&k);
            assert!(b < 100);
            counts[b] += 1;
        }
        // Each bucket expects 1000; allow generous slack (~±25%).
        assert!(
            counts.iter().all(|&c| (750..1250).contains(&c)),
            "skewed: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bucket_hasher_rejects_zero_buckets() {
        let _ = BucketHasher::new(0, 0);
    }

    #[test]
    fn bucket_hasher_is_deterministic() {
        let h1 = BucketHasher::new(9, 1 << 16);
        let h2 = BucketHasher::new(9, 1 << 16);
        for k in 0..1000u64 {
            assert_eq!(h1.bucket(&k), h2.bucket(&k));
        }
    }
}
