//! Permutation algebra for cache states.
//!
//! A P4LRU cache of capacity `N` keeps its key array in LRU order while the
//! value array never moves; the *cache state* is the permutation mapping key
//! positions to value positions (paper §2.2). This module implements the
//! small, fixed-size permutations those states are drawn from, using the
//! paper's composition convention:
//!
//! > `(P × Q)(i) = Q(P(i))`  — i.e. apply `P` first, then `Q`.
//!
//! Positions are **0-based** internally (the paper is 1-based); every doc
//! comment that cites the paper translates accordingly.

use std::fmt;

/// A permutation of `{0, 1, …, N-1}` stored inline.
///
/// `Perm<N>` is `Copy` for all the small `N` used by cache states, so units
/// can store and update states without allocation.
///
/// ```
/// use p4lru_core::perm::Perm;
/// let r = Perm::<3>::rotation(2); // paper's R for a hit at position 3 (1-based)
/// assert_eq!(r.apply(0), 1);
/// assert_eq!(r.apply(1), 2);
/// assert_eq!(r.apply(2), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Perm<const N: usize> {
    /// `map[i]` is the image of position `i`.
    map: [u8; N],
}

impl<const N: usize> Default for Perm<N> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<const N: usize> fmt::Debug for Perm<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm(")?;
        for (i, p) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> Perm<N> {
    /// The identity permutation.
    pub fn identity() -> Self {
        let mut map = [0u8; N];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u8;
        }
        Self { map }
    }

    /// Builds a permutation from an explicit image array.
    ///
    /// Returns `None` if `map` is not a permutation of `0..N`.
    pub fn from_map(map: [u8; N]) -> Option<Self> {
        let mut seen = [false; N];
        for &m in &map {
            let m = m as usize;
            if m >= N || seen[m] {
                return None;
            }
            seen[m] = true;
        }
        Some(Self { map })
    }

    /// Builds a permutation from an image array, panicking on invalid input.
    ///
    /// Intended for tests and constant tables.
    pub fn from_map_unchecked(map: [u8; N]) -> Self {
        Self::from_map(map).expect("invalid permutation map")
    }

    /// The image of position `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        debug_assert!(i < N);
        self.map[i] as usize
    }

    /// The underlying image array.
    #[inline]
    pub fn as_map(&self) -> &[u8; N] {
        &self.map
    }

    /// Paper-convention product: `(self × other)(i) = other(self(i))`.
    ///
    /// This matches the footnote of §2.2:
    /// `(1…n; p₁…pₙ) × (1…n; q₁…qₙ) = (1…n; q_{p₁} … q_{pₙ})`.
    pub fn compose(&self, other: &Self) -> Self {
        let mut map = [0u8; N];
        for (m, &p) in map.iter_mut().zip(&self.map) {
            *m = other.map[p as usize];
        }
        Self { map }
    }

    /// The inverse permutation: `self.inverse().apply(self.apply(i)) == i`.
    pub fn inverse(&self) -> Self {
        let mut map = [0u8; N];
        for i in 0..N {
            map[self.map[i] as usize] = i as u8;
        }
        Self { map }
    }

    /// The paper's rotation `R` for a key matched at (0-based) position `h`:
    /// positions `0..h` shift down by one, position `h` moves to the front,
    /// and positions past `h` are fixed.
    ///
    /// In the paper's 1-based notation (§2.2, Step 2), a hit at position `i`
    /// gives `R = (1 2 … i-1 i | 2 3 … i 1)`; a miss uses `i = n`, i.e.
    /// `h = N-1` here.
    pub fn rotation(h: usize) -> Self {
        assert!(h < N, "rotation pivot {h} out of range for N={N}");
        let mut map = [0u8; N];
        for (j, m) in map.iter_mut().enumerate() {
            *m = if j < h {
                (j + 1) as u8
            } else if j == h {
                0
            } else {
                j as u8
            };
        }
        Self { map }
    }

    /// Advances a cache state for an access resolved at key position `h`
    /// (0-based): `S ← R⁻¹ × S` with `R = rotation(h)`.
    ///
    /// Equivalently, the first `h+1` images rotate right by one — the image
    /// of the matched position becomes the image of position 0. A cache miss
    /// is the `h = N-1` case: the incoming key reuses the value slot of the
    /// evicted (least recently used) key.
    pub fn advance(&mut self, h: usize) {
        debug_assert!(h < N);
        let front = self.map[h];
        // Rotate map[0..=h] right by one.
        let mut j = h;
        while j > 0 {
            self.map[j] = self.map[j - 1];
            j -= 1;
        }
        self.map[0] = front;
    }

    /// The value slot mapped to the most recently used key, `S(1)` in paper
    /// notation.
    #[inline]
    pub fn front_slot(&self) -> usize {
        self.map[0] as usize
    }

    /// Parity of the permutation: `true` for even (expressible as an even
    /// number of transpositions). Used by the S₃/S₄ encodings, which encode
    /// even permutations as even integers (§2.3.2).
    pub fn is_even(&self) -> bool {
        // Count cycles: parity = (N - #cycles) mod 2.
        let mut seen = [false; N];
        let mut transpositions = 0usize;
        for start in 0..N {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.map[cur] as usize;
                len += 1;
            }
            transpositions += len - 1;
        }
        transpositions.is_multiple_of(2)
    }

    /// Lexicographic rank of the permutation among all `N!` permutations
    /// (Lehmer code). Gives a canonical dense numbering used by the
    /// reference DFA and by encoding-search tooling.
    pub fn lehmer_rank(&self) -> usize {
        let mut rank = 0usize;
        for i in 0..N {
            let mut smaller = 0usize;
            for j in (i + 1)..N {
                if self.map[j] < self.map[i] {
                    smaller += 1;
                }
            }
            rank = rank * (N - i) + smaller;
        }
        rank
    }

    /// Inverse of [`Self::lehmer_rank`]: the permutation with the given
    /// lexicographic rank. Panics if `rank >= N!`.
    pub fn from_lehmer_rank(mut rank: usize) -> Self {
        let nfact = factorial(N);
        assert!(rank < nfact, "rank {rank} out of range for N={N}");
        // Decode factoradic digits.
        let mut digits = [0usize; N];
        for i in (0..N).rev() {
            let base = N - i;
            digits[i] = rank % base;
            rank /= base;
        }
        // digits[i] = how many unused symbols smaller than map[i].
        let mut pool: Vec<u8> = (0..N as u8).collect();
        let mut map = [0u8; N];
        for i in 0..N {
            map[i] = pool.remove(digits[i]);
        }
        Self { map }
    }

    /// Iterator over all `N!` permutations in lexicographic-rank order.
    pub fn all() -> impl Iterator<Item = Self> {
        (0..factorial(N)).map(Self::from_lehmer_rank)
    }

    /// The order of the permutation in the group Sₙ (smallest `k > 0` with
    /// `selfᵏ = identity`).
    pub fn order(&self) -> usize {
        let mut acc = *self;
        let mut k = 1usize;
        while acc != Self::identity() {
            acc = acc.compose(self);
            k += 1;
        }
        k
    }
}

/// `n!` for the small `n` used by cache states.
pub fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_each_position_to_itself() {
        let id = Perm::<5>::identity();
        for i in 0..5 {
            assert_eq!(id.apply(i), i);
        }
    }

    #[test]
    fn from_map_rejects_non_permutations() {
        assert!(Perm::<3>::from_map([0, 0, 1]).is_none());
        assert!(Perm::<3>::from_map([0, 1, 3]).is_none());
        assert!(Perm::<3>::from_map([2, 1, 0]).is_some());
    }

    #[test]
    fn compose_follows_paper_convention() {
        // Paper example (§2.2, Example 1):
        // (1 2 3 4 5; 4 1 2 3 5) × (1 2 3 4 5; 1 2 3 4 5) = (…; 4 1 2 3 5)
        let r_inv = Perm::<5>::from_map_unchecked([3, 0, 1, 2, 4]);
        let id = Perm::<5>::identity();
        assert_eq!(r_inv.compose(&id), r_inv);

        // Paper example (§2.2, Example 2):
        // (1…5; 5 1 2 3 4) × (1…5; 4 1 2 3 5) = (1…5; 5 4 1 2 3)
        let a = Perm::<5>::from_map_unchecked([4, 0, 1, 2, 3]);
        let b = Perm::<5>::from_map_unchecked([3, 0, 1, 2, 4]);
        let want = Perm::<5>::from_map_unchecked([4, 3, 0, 1, 2]);
        assert_eq!(a.compose(&b), want);
    }

    #[test]
    fn inverse_composes_to_identity_both_ways() {
        for p in Perm::<4>::all() {
            assert_eq!(p.compose(&p.inverse()), Perm::identity());
            assert_eq!(p.inverse().compose(&p), Perm::identity());
        }
    }

    #[test]
    fn rotation_matches_paper_definition() {
        // Hit at 1-based position 4 in a 5-entry cache (Example 1):
        // R = (1 2 3 4 5; 2 3 4 1 5)
        let r = Perm::<5>::rotation(3);
        assert_eq!(*r.as_map(), [1, 2, 3, 0, 4]);
        // Miss (Example 2): R = (1…5; 2 3 4 5 1)
        let r = Perm::<5>::rotation(4);
        assert_eq!(*r.as_map(), [1, 2, 3, 4, 0]);
    }

    #[test]
    fn advance_equals_premultiplication_by_inverse_rotation() {
        for s in Perm::<5>::all() {
            for h in 0..5 {
                let mut fast = s;
                fast.advance(h);
                let slow = Perm::<5>::rotation(h).inverse().compose(&s);
                assert_eq!(fast, slow, "state {s:?} advanced at {h}");
            }
        }
    }

    #[test]
    fn paper_running_example_reproduced() {
        // §2.2 Examples 1 & 2 end-to-end on the cache state.
        let mut s = Perm::<5>::identity();
        // Example 1: hit at 1-based position 4 → h = 3.
        s.advance(3);
        assert_eq!(*s.as_map(), [3, 0, 1, 2, 4]); // (1…5; 4 1 2 3 5)
        assert_eq!(s.front_slot(), 3); // val[4] updated (V_D'')
                                       // Example 2: miss → h = 4.
        s.advance(4);
        assert_eq!(*s.as_map(), [4, 3, 0, 1, 2]); // (1…5; 5 4 1 2 3)
        assert_eq!(s.front_slot(), 4); // val[5] replaced by V_F
    }

    #[test]
    fn lehmer_rank_roundtrips() {
        for (i, p) in Perm::<4>::all().enumerate() {
            assert_eq!(p.lehmer_rank(), i);
            assert_eq!(Perm::<4>::from_lehmer_rank(i), p);
        }
    }

    #[test]
    fn lehmer_rank_is_lexicographic() {
        let ranks: Vec<[u8; 3]> = Perm::<3>::all().map(|p| *p.as_map()).collect();
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(ranks, sorted);
        assert_eq!(ranks.len(), 6);
    }

    #[test]
    fn parity_counts() {
        let even = Perm::<4>::all().filter(Perm::is_even).count();
        assert_eq!(even, 12); // |A4| = 12
        assert!(Perm::<3>::identity().is_even());
        assert!(!Perm::<3>::from_map_unchecked([1, 0, 2]).is_even());
    }

    #[test]
    fn parity_is_a_homomorphism() {
        for a in Perm::<4>::all() {
            for b in Perm::<4>::all() {
                assert_eq!(a.compose(&b).is_even(), a.is_even() == b.is_even());
            }
        }
    }

    #[test]
    fn order_divides_group_order() {
        for p in Perm::<4>::all() {
            assert_eq!(24 % p.order(), 0);
        }
        assert_eq!(Perm::<4>::identity().order(), 1);
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(3), 6);
        assert_eq!(factorial(5), 120);
    }
}
