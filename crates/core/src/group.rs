//! Finite-group machinery behind the cache-state encodings (paper §2.3.3).
//!
//! The cache states of a P4LRUₙ unit form the symmetric group Sₙ, and each
//! of the `n` possible key-array operations left-multiplies the state by a
//! fixed group element. The data plane can only store integers and apply
//! 2-branch arithmetic, so the question the paper raises is: *which groups
//! can be encoded so that left-multiplication by fixed elements is
//! arithmetic?*
//!
//! * **Cyclic groups** `C_n`: encode `gᵏ` as `k`; multiplication is modular
//!   addition — trivially arithmetic ([`CyclicCode`]).
//! * **Direct products** `H × K`: encode the factors independently.
//! * **Extensions**: S₃ has the normal subgroup C₃ with S₃/C₃ ≅ C₂; the
//!   paper's Table 1 codes (reproduced in [`S3Code`]) exploit exactly this —
//!   the code's parity bit tracks the C₂ quotient and the remaining
//!   structure tracks the C₃ part.
//! * **S₄ ≅ V₄ ⋊ S₃**: the Klein four-group V₄ = C₂ × C₂ is normal in S₄
//!   with quotient S₃, so an S₄ state splits into a 2-bit register and an
//!   S₃ code ([`factor_s4`], [`compose_s4`]). This is the paper's sketched
//!   route to P4LRU4, realized in [`crate::dfa::Dfa4`].

// Group products are idiomatically named `mul`; they are not the scalar
// `std::ops::Mul` (which would suggest commutativity callers cannot assume).
#![allow(clippy::should_implement_trait)]

use crate::perm::Perm;

/// A group element encodable on the data plane: the element is an integer
/// (or a small tuple of integers) and multiplication/inversion are register
/// arithmetic. This is the abstraction behind §2.3.3's question of *which
/// groups fit the pipeline*.
pub trait Encodable: Copy + Eq {
    /// Group product (paper convention where the element is a permutation).
    fn mul(self, other: Self) -> Self;
    /// Group inverse.
    fn inverse(self) -> Self;
    /// Is this the identity?
    fn is_identity(self) -> bool;
}

/// Direct product `H × K`: encode the factors independently and multiply
/// component-wise — the paper's construction (1) in §2.3.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProductCode<A, B>(pub A, pub B);

impl<A: Encodable, B: Encodable> Encodable for ProductCode<A, B> {
    fn mul(self, other: Self) -> Self {
        ProductCode(self.0.mul(other.0), self.1.mul(other.1))
    }

    fn inverse(self) -> Self {
        ProductCode(self.0.inverse(), self.1.inverse())
    }

    fn is_identity(self) -> bool {
        self.0.is_identity() && self.1.is_identity()
    }
}

/// Element of the cyclic group `C_n`, encoded as an integer `0..n`
/// representing `g^k`. Group multiplication is addition mod `n` — the
/// encoding a stateful ALU supports natively.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CyclicCode {
    k: u32,
    n: u32,
}

impl CyclicCode {
    /// The element `g^k` of `C_n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(k: u32, n: u32) -> Self {
        assert!(n > 0, "cyclic group order must be positive");
        Self { k: k % n, n }
    }

    /// The identity of `C_n`.
    pub fn identity(n: u32) -> Self {
        Self::new(0, n)
    }

    /// Group product (modular addition).
    pub fn mul(self, other: Self) -> Self {
        assert_eq!(self.n, other.n, "mixed cyclic group orders");
        Self::new((self.k + other.k) % self.n, self.n)
    }

    /// Inverse element.
    pub fn inverse(self) -> Self {
        Self::new((self.n - self.k) % self.n, self.n)
    }

    /// The exponent `k` (the integer the data plane would store).
    pub fn code(self) -> u32 {
        self.k
    }

    /// Group order `n`.
    pub fn order(self) -> u32 {
        self.n
    }
}

impl Encodable for CyclicCode {
    fn mul(self, other: Self) -> Self {
        CyclicCode::mul(self, other)
    }

    fn inverse(self) -> Self {
        CyclicCode::inverse(self)
    }

    fn is_identity(self) -> bool {
        self.k == 0
    }
}

// ---------------------------------------------------------------------------
// S3: the paper's Table 1 encoding.
// ---------------------------------------------------------------------------

/// The paper's Table 1 codes for the six states of S₃, in 1-based paper
/// notation `(1 2 3; a b c)` → 0-based image maps.
///
/// | state (paper) | map (0-based) | code |
/// |---|---|---|
/// | (1 2 3) | `[0,1,2]` | 4 |
/// | (2 1 3) | `[1,0,2]` | 5 |
/// | (3 1 2) | `[2,0,1]` | 2 |
/// | (1 3 2) | `[0,2,1]` | 1 |
/// | (2 3 1) | `[1,2,0]` | 0 |
/// | (3 2 1) | `[2,1,0]` | 3 |
///
/// Even permutations get even codes, odd permutations odd codes — that
/// parity discipline is what lets the three key-array operations become the
/// five numeric operations of §2.3.2.
pub const S3_CODE_TABLE: [([u8; 3], u8); 6] = [
    ([0, 1, 2], 4),
    ([1, 0, 2], 5),
    ([2, 0, 1], 2),
    ([0, 2, 1], 1),
    ([1, 2, 0], 0),
    ([2, 1, 0], 3),
];

/// An S₃ element carried as its paper Table 1 code (0..=5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct S3Code(u8);

impl S3Code {
    /// The identity permutation's code (4 in Table 1).
    pub const IDENTITY: Self = Self(4);

    /// Wraps a raw code. Returns `None` unless `code <= 5`.
    pub fn from_code(code: u8) -> Option<Self> {
        (code <= 5).then_some(Self(code))
    }

    /// Encodes a permutation per Table 1.
    pub fn encode(p: Perm<3>) -> Self {
        for (map, code) in S3_CODE_TABLE {
            if *p.as_map() == map {
                return Self(code);
            }
        }
        unreachable!("every Perm<3> appears in the table")
    }

    /// Decodes back to the permutation.
    pub fn decode(self) -> Perm<3> {
        for (map, code) in S3_CODE_TABLE {
            if code == self.0 {
                return Perm::from_map_unchecked(map);
            }
        }
        unreachable!("S3Code is always in 0..=5")
    }

    /// The raw integer code (what a switch register would hold).
    pub fn code(self) -> u8 {
        self.0
    }

    /// Group product under the paper's composition convention
    /// (`(P × Q)(i) = Q(P(i))`), computed via decode/compose/encode.
    pub fn mul(self, other: Self) -> Self {
        Self::encode(self.decode().compose(&other.decode()))
    }
}

impl Encodable for S3Code {
    fn mul(self, other: Self) -> Self {
        S3Code::mul(self, other)
    }

    fn inverse(self) -> Self {
        S3Code::encode(self.decode().inverse())
    }

    fn is_identity(self) -> bool {
        self == Self::IDENTITY
    }
}

// ---------------------------------------------------------------------------
// V4 (Klein four-group) and the S4 = V4 ⋊ S3 factorization.
// ---------------------------------------------------------------------------

/// Element of the Klein four-group V₄ ⊲ S₄, encoded in 2 bits so that the
/// group product is XOR.
///
/// The four elements as permutations of `{0,1,2,3}`:
///
/// | code | permutation |
/// |---|---|
/// | 0 | identity |
/// | 1 | (0 1)(2 3) |
/// | 2 | (0 2)(1 3) |
/// | 3 | (0 3)(1 2) |
///
/// XOR works because code `i ∈ {1,2,3}` swaps `x ↔ x^i` positionally:
/// the element maps position `p` to `p ^ i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct V4Code(u8);

impl V4Code {
    /// The identity.
    pub const IDENTITY: Self = Self(0);

    /// Wraps a raw 2-bit code. `None` unless `code <= 3`.
    pub fn from_code(code: u8) -> Option<Self> {
        (code <= 3).then_some(Self(code))
    }

    /// The permutation of `{0..3}` this element denotes: `p ↦ p ^ code`.
    pub fn decode(self) -> Perm<4> {
        let mut map = [0u8; 4];
        for (p, m) in map.iter_mut().enumerate() {
            *m = (p as u8) ^ self.0;
        }
        Perm::from_map_unchecked(map)
    }

    /// Encodes a permutation if it lies in V₄.
    pub fn encode(p: Perm<4>) -> Option<Self> {
        let code = p.apply(0) as u8;
        let candidate = Self(code);
        (candidate.decode() == p).then_some(candidate)
    }

    /// Group product — XOR of codes.
    pub fn mul(self, other: Self) -> Self {
        Self(self.0 ^ other.0)
    }

    /// Raw 2-bit code.
    pub fn code(self) -> u8 {
        self.0
    }
}

impl Encodable for V4Code {
    fn mul(self, other: Self) -> Self {
        V4Code::mul(self, other)
    }

    fn inverse(self) -> Self {
        self // every V4 element is an involution
    }

    fn is_identity(self) -> bool {
        self.0 == 0
    }
}

/// Embeds an S₃ permutation into S₄ as a permutation fixing position 3.
pub fn embed_s3(p: Perm<3>) -> Perm<4> {
    let m = p.as_map();
    Perm::from_map_unchecked([m[0], m[1], m[2], 3])
}

/// Restricts an S₄ permutation that fixes position 3 back to S₃.
/// Returns `None` if it moves position 3.
pub fn restrict_s4(p: Perm<4>) -> Option<Perm<3>> {
    if p.apply(3) != 3 {
        return None;
    }
    Perm::from_map([p.apply(0) as u8, p.apply(1) as u8, p.apply(2) as u8])
}

/// Factors `g ∈ S₄` uniquely as `g = v × σ` (paper convention: apply `v`
/// first, then `σ`) with `v ∈ V₄` and `σ ∈ S₃` (fixing position 3).
///
/// Existence/uniqueness: V₄ ∩ S₃ = {e} and |V₄|·|S₃| = 24 = |S₄|, so
/// S₄ = V₄ ⋊ S₃. Concretely `v` is the unique V₄ element with
/// `v(3) = g⁻¹(3)`… equivalently we pick `v` so that `v⁻¹ × g` fixes 3.
pub fn factor_s4(g: Perm<4>) -> (V4Code, Perm<3>) {
    for code in 0..4u8 {
        let v = V4Code(code);
        // σ = v⁻¹ × g (V4 elements are involutions, so v⁻¹ = v).
        let sigma4 = v.decode().compose(&g);
        if let Some(sigma) = restrict_s4(sigma4) {
            return (v, sigma);
        }
    }
    unreachable!("S4 = V4 ⋊ S3 guarantees a factorization")
}

/// Recomposes the factors: `g = v × σ` (apply `v`, then `σ`).
pub fn compose_s4(v: V4Code, sigma: Perm<3>) -> Perm<4> {
    v.decode().compose(&embed_s3(sigma))
}

/// Conjugation `σ × v × σ⁻¹` stays in V₄ (V₄ is normal in S₄); returns the
/// conjugated element. Used to derive the per-generator register updates of
/// [`crate::dfa::Dfa4`].
pub fn conjugate_v4(sigma: Perm<3>, v: V4Code) -> V4Code {
    let s4 = embed_s3(sigma);
    let conj = s4.inverse().compose(&v.decode()).compose(&s4);
    V4Code::encode(conj).expect("V4 is normal in S4")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_group_axioms() {
        let n = 7;
        for a in 0..n {
            let ca = CyclicCode::new(a, n);
            assert_eq!(ca.mul(ca.inverse()), CyclicCode::identity(n));
            assert_eq!(ca.mul(CyclicCode::identity(n)), ca);
            for b in 0..n {
                let cb = CyclicCode::new(b, n);
                // Abelian.
                assert_eq!(ca.mul(cb), cb.mul(ca));
            }
        }
    }

    #[test]
    fn cyclic_code_is_exponent_arithmetic() {
        let g = CyclicCode::new(1, 5);
        let mut acc = CyclicCode::identity(5);
        for k in 0..10 {
            assert_eq!(acc.code(), k % 5);
            acc = acc.mul(g);
        }
    }

    #[test]
    fn s3_codes_cover_0_to_5_bijectively() {
        let mut seen = [false; 6];
        for p in Perm::<3>::all() {
            let c = S3Code::encode(p);
            assert!(!seen[c.code() as usize], "duplicate code");
            seen[c.code() as usize] = true;
            assert_eq!(c.decode(), p);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn s3_parity_discipline_of_table1() {
        // Even permutations get even codes (paper §2.3.2).
        for p in Perm::<3>::all() {
            let c = S3Code::encode(p).code();
            assert_eq!(p.is_even(), c.is_multiple_of(2), "perm {p:?} code {c}");
        }
    }

    #[test]
    fn s3_mul_matches_permutation_composition() {
        for a in Perm::<3>::all() {
            for b in Perm::<3>::all() {
                let via_code = S3Code::encode(a).mul(S3Code::encode(b));
                assert_eq!(via_code.decode(), a.compose(&b));
            }
        }
    }

    #[test]
    fn v4_is_closed_under_xor_and_matches_permutations() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                let va = V4Code::from_code(a).unwrap();
                let vb = V4Code::from_code(b).unwrap();
                let prod_perm = va.decode().compose(&vb.decode());
                assert_eq!(va.mul(vb).decode(), prod_perm);
            }
        }
    }

    #[test]
    fn v4_elements_are_involutions() {
        for c in 0..4u8 {
            let v = V4Code::from_code(c).unwrap();
            assert_eq!(v.mul(v), V4Code::IDENTITY);
        }
    }

    #[test]
    fn v4_encode_rejects_non_v4_permutations() {
        let transposition = Perm::<4>::from_map_unchecked([1, 0, 2, 3]);
        assert!(V4Code::encode(transposition).is_none());
        let four_cycle = Perm::<4>::from_map_unchecked([1, 2, 3, 0]);
        assert!(V4Code::encode(four_cycle).is_none());
    }

    #[test]
    fn embed_restrict_roundtrip() {
        for p in Perm::<3>::all() {
            assert_eq!(restrict_s4(embed_s3(p)), Some(p));
        }
        let moves3 = Perm::<4>::from_map_unchecked([0, 1, 3, 2]);
        assert_eq!(restrict_s4(moves3), None);
    }

    #[test]
    fn s4_factorization_is_unique_and_total() {
        let mut seen = std::collections::HashSet::new();
        for g in Perm::<4>::all() {
            let (v, sigma) = factor_s4(g);
            assert_eq!(compose_s4(v, sigma), g, "recompose {g:?}");
            assert!(
                seen.insert((v.code(), *sigma.as_map())),
                "collision for {g:?}"
            );
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn v4_is_normal_conjugation_stays_inside() {
        for sigma in Perm::<3>::all() {
            for c in 0..4u8 {
                let v = V4Code::from_code(c).unwrap();
                // Must not panic, and must be consistent with permutations.
                let conj = conjugate_v4(sigma, v);
                let s4 = embed_s3(sigma);
                let expect = s4.inverse().compose(&v.decode()).compose(&s4);
                assert_eq!(conj.decode(), expect);
            }
        }
    }

    #[test]
    fn product_code_c2_x_c2_is_isomorphic_to_v4() {
        // §2.3.3 construction (1): V4 = C2 × C2, so the product encoding
        // must agree with the XOR encoding under the bit-pair isomorphism.
        let to_v4 = |p: ProductCode<CyclicCode, CyclicCode>| {
            V4Code::from_code((p.0.code() as u8) << 1 | p.1.code() as u8).unwrap()
        };
        let c2 = |k| CyclicCode::new(k, 2);
        for a0 in 0..2 {
            for a1 in 0..2 {
                for b0 in 0..2 {
                    for b1 in 0..2 {
                        let a = ProductCode(c2(a0), c2(a1));
                        let b = ProductCode(c2(b0), c2(b1));
                        assert_eq!(to_v4(a.mul(b)), to_v4(a).mul(to_v4(b)));
                    }
                }
            }
        }
    }

    #[test]
    fn product_code_group_axioms() {
        // C3 × S3: a non-abelian product still encodes component-wise.
        let elems: Vec<ProductCode<CyclicCode, S3Code>> = (0..3)
            .flat_map(|k| {
                (0..6)
                    .map(move |s| ProductCode(CyclicCode::new(k, 3), S3Code::from_code(s).unwrap()))
            })
            .collect();
        assert_eq!(elems.len(), 18);
        let id = ProductCode(CyclicCode::identity(3), S3Code::IDENTITY);
        assert!(id.is_identity());
        for &a in &elems {
            assert_eq!(a.mul(a.inverse()), id);
            assert_eq!(a.mul(id), a);
            for &b in &elems {
                for &c in &elems {
                    assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
                }
            }
        }
    }

    #[test]
    fn encodable_inverse_of_s3_and_v4() {
        for s in 0..6u8 {
            let a = S3Code::from_code(s).unwrap();
            assert!(Encodable::mul(a, Encodable::inverse(a)).is_identity());
        }
        for v in 0..4u8 {
            let a = V4Code::from_code(v).unwrap();
            assert!(Encodable::mul(a, Encodable::inverse(a)).is_identity());
        }
    }

    #[test]
    fn conjugation_is_a_group_action() {
        for sigma in Perm::<3>::all() {
            for tau in Perm::<3>::all() {
                for c in 0..4u8 {
                    let v = V4Code::from_code(c).unwrap();
                    // conj(τ, conj(σ, v)) == conj(σ × τ, v) under the paper
                    // convention (σ applied first in σ × τ).
                    let lhs = conjugate_v4(tau, conjugate_v4(sigma, v));
                    let rhs = conjugate_v4(sigma.compose(&tau), v);
                    assert_eq!(lhs, rhs);
                }
            }
        }
    }
}
