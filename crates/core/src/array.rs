//! Parallel connection of P4LRU units (paper §1.2, §3.1).
//!
//! A single P4LRU unit is a strict LRU of only 2–4 entries. The *parallel
//! connection technique* reaches arbitrary capacity by replacing the buckets
//! of a hash table with units: a hash function picks one unit per key, and
//! that unit runs strict LRU among the keys that collide into it. This is
//! exactly the `P[1…2¹⁶]` array LruTable deploys on the switch.

use std::hash::Hash;

use crate::dfa::{CacheState, Dfa2, Dfa3, Dfa4};
use crate::hashing::BucketHasher;
use crate::perm::Perm;
use crate::unit::{LruUnit, Outcome};

/// A hash-indexed array of P4LRU2 units.
pub type P4Lru2Array<K, V> = LruArray<K, V, 2, Dfa2>;
/// A hash-indexed array of P4LRU3 units — the paper's deployed flavor.
pub type P4Lru3Array<K, V> = LruArray<K, V, 3, Dfa3>;
/// A hash-indexed array of P4LRU4 units.
pub type P4Lru4Array<K, V> = LruArray<K, V, 4, Dfa4>;

/// Hash-indexed array of [`LruUnit`]s: the parallel connection.
///
/// ```
/// use p4lru_core::array::P4Lru3Array;
///
/// let mut cache = P4Lru3Array::<u64, u64>::with_seed(256, 42);
/// cache.update(7, 100, |acc, v| *acc += v);
/// cache.update(7, 50, |acc, v| *acc += v);
/// assert_eq!(cache.get(&7), Some(&150));
/// assert_eq!(cache.capacity(), 768);
/// ```
///
/// # Thread safety
///
/// The array holds only owned data (`Vec` of units, a hasher seed), so it is
/// `Send`/`Sync` whenever `K` and `V` are — moving a whole array into a
/// worker thread (shard-per-thread ownership, as `p4lru-server` does) is
/// safe and lock-free. There is **no** internal synchronization: concurrent
/// mutation through shared references is rejected by the compiler, which is
/// exactly the discipline the hardware pipeline enforces (one update per
/// register per packet). The static assertions in this module's tests pin
/// the auto-traits so a future field can't silently lose them.
#[derive(Clone, Debug)]
pub struct LruArray<K, V, const N: usize, S: CacheState<N> = Perm<N>> {
    units: Vec<LruUnit<K, V, N, S>>,
    hasher: BucketHasher,
}

impl<K: Eq + Hash, V, const N: usize, S: CacheState<N>> LruArray<K, V, N, S> {
    /// An array of `units` empty units with the hash function derived from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `units == 0`.
    pub fn with_seed(units: usize, seed: u64) -> Self {
        assert!(units > 0, "array needs at least one unit");
        Self {
            units: (0..units).map(|_| LruUnit::new()).collect(),
            hasher: BucketHasher::new(seed, units),
        }
    }

    /// Number of units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Total entry capacity (`units × N`).
    pub fn capacity(&self) -> usize {
        self.units.len() * N
    }

    /// Number of currently cached entries (linear scan; intended for
    /// statistics, not the data path).
    pub fn len(&self) -> usize {
        self.units.iter().map(LruUnit::len).sum()
    }

    /// Is the whole array empty?
    pub fn is_empty(&self) -> bool {
        self.units.iter().all(LruUnit::is_empty)
    }

    /// The unit index `key` hashes to.
    #[inline]
    pub fn index_of(&self, key: &K) -> usize {
        self.hasher.bucket(key)
    }

    /// The unit `key` hashes to.
    pub fn unit_for(&self, key: &K) -> &LruUnit<K, V, N, S> {
        &self.units[self.index_of(key)]
    }

    /// Mutable access to the unit `key` hashes to.
    pub fn unit_for_mut(&mut self, key: &K) -> &mut LruUnit<K, V, N, S> {
        let idx = self.index_of(key);
        &mut self.units[idx]
    }

    /// Inserts or refreshes `key` in its unit (Algorithm 1 within the unit).
    pub fn update(&mut self, key: K, value: V, merge: impl FnOnce(&mut V, V)) -> Outcome<K, V> {
        let idx = self.index_of(&key);
        self.units[idx].update(key, value, merge)
    }

    /// Read-only lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.unit_for(key).get(key)
    }

    /// Read-only probe returning the in-unit position too.
    pub fn probe(&self, key: &K) -> Option<(usize, &V)> {
        self.unit_for(key).probe(key)
    }

    /// Mutable value access without LRU reordering.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.unit_for_mut(key).get_mut(key)
    }

    /// Refreshes `key`'s recency within its unit. `false` if absent.
    pub fn promote(&mut self, key: &K) -> bool {
        self.unit_for_mut(key).promote(key)
    }

    /// Replaces the LRU entry of `key`'s unit with `(key, value)` as the new
    /// least recently used entry (series-connection downstream insert).
    pub fn insert_tail(&mut self, key: K, value: V) -> Option<(K, V)> {
        let idx = self.index_of(&key);
        self.units[idx].insert_tail(key, value)
    }

    /// Removes `key` from its unit, returning its value if it was cached
    /// (see [`LruUnit::remove`] for how this stays within legal DFA
    /// transitions).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.unit_for_mut(key).remove(key)
    }

    /// Iterates all cached entries as `(unit_index, key, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &V)> {
        self.units
            .iter()
            .enumerate()
            .flat_map(|(i, u)| u.entries().map(move |(_, k, v)| (i, k, v)))
    }

    /// Removes and returns every cached entry, leaving all units empty (the
    /// hash function is unchanged).
    pub fn drain(&mut self) -> Vec<(K, V)> {
        self.units.iter_mut().flat_map(LruUnit::drain).collect()
    }

    /// Direct access to a unit by index (for tests and layout tools).
    pub fn unit(&self, idx: usize) -> &LruUnit<K, V, N, S> {
        &self.units[idx]
    }

    /// Checks every unit's invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, u) in self.units.iter().enumerate() {
            u.check_invariants().map_err(|e| format!("unit {i}: {e}"))?;
        }
        Ok(())
    }
}

/// Memory accounting for sizing experiments ("miss rate vs. memory").
///
/// The paper's comparisons hold total data-plane memory constant across
/// policies; this helper converts a byte budget into a unit count given the
/// per-entry layout of a P4LRUₙ array.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Bytes per stored key (e.g. 4 for an IPv4 address or a fingerprint).
    pub key_bytes: usize,
    /// Bytes per stored value.
    pub value_bytes: usize,
    /// Bytes for the cache-state register of one unit (1 is enough for
    /// n ≤ 4, but hardware register granularity may round up).
    pub state_bytes: usize,
}

impl MemoryModel {
    /// A model with 4-byte keys and values and a 1-byte state — the layout
    /// of LruMon's fingerprint/length entries.
    pub fn fp32_len32() -> Self {
        Self {
            key_bytes: 4,
            value_bytes: 4,
            state_bytes: 1,
        }
    }

    /// Bytes used by one P4LRUₙ unit.
    pub fn unit_bytes(&self, n: usize) -> usize {
        n * (self.key_bytes + self.value_bytes) + self.state_bytes
    }

    /// How many P4LRUₙ units fit in `budget` bytes (at least 1).
    pub fn units_in(&self, budget: usize, n: usize) -> usize {
        (budget / self.unit_bytes(n)).max(1)
    }

    /// Bytes used by one single-entry hash bucket (P4LRU1 / timeout-style),
    /// with `extra` bytes of per-bucket metadata (e.g. a timestamp).
    pub fn bucket_bytes(&self, extra: usize) -> usize {
        self.key_bytes + self.value_bytes + extra
    }

    /// How many single-entry buckets fit in `budget` bytes (at least 1).
    pub fn buckets_in(&self, budget: usize, extra: usize) -> usize {
        (budget / self.bucket_bytes(extra)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_get_roundtrip() {
        let mut arr = P4Lru3Array::<u64, u32>::with_seed(16, 1);
        for k in 0..10u64 {
            arr.update(k, k as u32, |a, v| *a = v);
        }
        for k in 0..10u64 {
            assert_eq!(arr.get(&k), Some(&(k as u32)));
        }
        arr.check_invariants().unwrap();
    }

    #[test]
    fn keys_always_land_in_their_hash_unit() {
        let mut arr = P4Lru3Array::<u64, u32>::with_seed(8, 3);
        for k in 0..100u64 {
            arr.update(k, 0, |_, _| {});
        }
        for (unit_idx, key, _) in arr.entries() {
            assert_eq!(arr.index_of(key), unit_idx);
        }
    }

    #[test]
    fn eviction_is_local_to_one_unit() {
        let mut arr = P4Lru3Array::<u64, u32>::with_seed(4, 9);
        // Find four keys colliding into one unit.
        let mut colliders = Vec::new();
        for k in 0..10_000u64 {
            if arr.index_of(&k) == 0 {
                colliders.push(k);
                if colliders.len() == 4 {
                    break;
                }
            }
        }
        assert_eq!(colliders.len(), 4);
        for &k in &colliders {
            arr.update(k, 1, |_, _| {});
        }
        // First collider was evicted by the fourth.
        assert_eq!(arr.get(&colliders[0]), None);
        for &k in &colliders[1..] {
            assert_eq!(arr.get(&k), Some(&1));
        }
        assert_eq!(arr.unit(0).len(), 3);
    }

    #[test]
    fn capacity_and_len() {
        let mut arr = P4Lru2Array::<u64, u32>::with_seed(10, 0);
        assert_eq!(arr.capacity(), 20);
        assert!(arr.is_empty());
        arr.update(1, 1, |_, _| {});
        assert_eq!(arr.len(), 1);
        assert!(!arr.is_empty());
    }

    #[test]
    fn same_seed_same_placement() {
        let a = P4Lru3Array::<u64, u32>::with_seed(64, 5);
        let b = P4Lru3Array::<u64, u32>::with_seed(64, 5);
        for k in 0..1000u64 {
            assert_eq!(a.index_of(&k), b.index_of(&k));
        }
    }

    #[test]
    fn p4lru4_array_works() {
        let mut arr = P4Lru4Array::<u64, u64>::with_seed(32, 2);
        for k in 0..200u64 {
            arr.update(k, k, |a, v| *a = v);
        }
        arr.check_invariants().unwrap();
        assert!(arr.len() <= arr.capacity());
    }

    #[test]
    fn memory_model_unit_sizing() {
        let m = MemoryModel::fp32_len32();
        assert_eq!(m.unit_bytes(3), 25);
        assert_eq!(m.units_in(25 * 100, 3), 100);
        assert_eq!(m.bucket_bytes(0), 8);
        assert_eq!(m.bucket_bytes(4), 12); // timeout policy: +32-bit timestamp
        assert_eq!(m.buckets_in(1200, 4), 100);
        // Budget smaller than one unit still yields one unit.
        assert_eq!(m.units_in(3, 3), 1);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_rejected() {
        let _ = P4Lru3Array::<u64, u32>::with_seed(0, 0);
    }

    #[test]
    fn remove_deletes_only_the_key_and_keeps_invariants() {
        let mut arr = P4Lru3Array::<u64, u32>::with_seed(16, 7);
        for k in 0..40u64 {
            arr.update(k, k as u32, |a, v| *a = v);
        }
        let before = arr.len();
        let kept: Vec<u64> = arr.entries().map(|(_, &k, _)| k).collect();
        let victim = kept[kept.len() / 2];
        assert_eq!(arr.remove(&victim), Some(victim as u32));
        assert_eq!(arr.get(&victim), None);
        assert_eq!(arr.len(), before - 1);
        arr.check_invariants().unwrap();
        for k in kept {
            if k != victim {
                assert_eq!(arr.get(&k), Some(&(k as u32)), "collateral loss of {k}");
            }
        }
        // Removing an absent key is a no-op.
        assert_eq!(arr.remove(&victim), None);
        arr.check_invariants().unwrap();
    }

    #[test]
    fn remove_then_reinsert_cycles_cleanly() {
        let mut arr = P4Lru3Array::<u64, u32>::with_seed(4, 3);
        for round in 0..50u64 {
            for k in 0..20u64 {
                arr.update(k, (k + round) as u32, |a, v| *a = v);
            }
            for k in (0..20u64).step_by(3) {
                arr.remove(&k);
                assert_eq!(arr.get(&k), None);
            }
            arr.check_invariants().unwrap();
        }
    }

    /// Thread-safety audit: shard-per-thread ownership (`p4lru-server`)
    /// requires the arrays to be `Send`; read-only sharing requires `Sync`.
    /// These are compile-time checks — the test body is trivially true.
    #[test]
    fn arrays_are_send_and_sync_for_plain_data() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<P4Lru2Array<u64, u64>>();
        assert_send::<P4Lru3Array<u64, [u8; 64]>>();
        assert_send::<P4Lru4Array<u32, u32>>();
        assert_sync::<P4Lru3Array<u64, u64>>();
        assert_send::<LruArray<u64, u64, 5, Perm<5>>>();
        assert_send::<crate::unit::P4Lru3Unit<u64, u64>>();
        assert_sync::<crate::unit::P4Lru3Unit<u64, u64>>();
    }
}
