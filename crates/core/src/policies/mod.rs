//! Replacement policies: one [`Cache`] interface over P4LRU and every
//! baseline the paper evaluates against (§4.1–§4.2).
//!
//! | name | paper label | module |
//! |---|---|---|
//! | [`IdealLru`] | LRU_IDEAL | `ideal` |
//! | [`P4LruCache`] (n=1) | P4LRU1 / "Baseline" | `p4lru` |
//! | [`P4LruCache`] (n=2,3,4) | P4LRU2 / P4LRU3 / (P4LRU4) | `p4lru` |
//! | [`TimeoutCache`] | Timeout (BeauCoup-style) | `timeout` |
//! | [`ElasticCache`] | Elastic | `elastic` |
//! | [`CocoCache`] | Coco | `coco` |
//! | [`SlruCache`] | (extension: Seg-LRU, §5.1) | `slru` |
//! | [`ArcCache`] | (extension: ARC, §5.1) | `arc` |
//!
//! All policies speak the same [`Cache`] trait so the systems (LruTable,
//! LruIndex, LruMon) and the figure harnesses can swap them freely while
//! holding total data-plane memory constant (see
//! [`crate::array::MemoryModel`]).

mod arc;
pub mod build;
mod coco;
mod elastic;
mod ideal;
pub mod list;
mod p4lru;
mod slru;
mod timeout;

pub use arc::ArcCache;
pub use build::{build_cache, PolicyKind};
pub use coco::CocoCache;
pub use elastic::ElasticCache;
pub use ideal::IdealLru;
pub use p4lru::{P4Lru1Cache, P4Lru2Cache, P4Lru3Cache, P4Lru4Cache, P4LruCache};
pub use slru::SlruCache;
pub use timeout::TimeoutCache;

/// How a hit merges the incoming value into the cached one.
///
/// A plain function pointer keeps the [`Cache`] trait object-safe while
/// still covering the paper's two uses: a *read-cache* overwrites (or keeps)
/// the value, a *write-cache* accumulates it.
pub type MergeFn<V> = fn(&mut V, V);

/// Overwrite the cached value (read-cache semantics).
pub fn merge_replace<V>(slot: &mut V, v: V) {
    *slot = v;
}

/// Keep the cached value (read-cache that trusts the first fill).
pub fn merge_keep<V>(_slot: &mut V, _v: V) {}

/// Result of one [`Cache::access`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Access<K, V> {
    /// The key was cached.
    Hit,
    /// The key was not cached.
    Miss {
        /// Entry evicted to make room, if any.
        evicted: Option<(K, V)>,
        /// Whether the incoming key was actually admitted. Timeout, Elastic
        /// and Coco may *refuse* admission (unexpired victim, losing vote,
        /// losing coin flip) — the paper's point about frequency/timeout
        /// policies clinging to stale entries.
        inserted: bool,
    },
}

impl<K, V> Access<K, V> {
    /// Was the access a hit?
    pub fn is_hit(&self) -> bool {
        matches!(self, Access::Hit)
    }

    /// The evicted entry, if any.
    pub fn evicted(self) -> Option<(K, V)> {
        match self {
            Access::Miss { evicted, .. } => evicted,
            Access::Hit => None,
        }
    }

    /// Whether the incoming key is cached after the access (hit or admitted).
    pub fn resident(&self) -> bool {
        match self {
            Access::Hit => true,
            Access::Miss { inserted, .. } => *inserted,
        }
    }
}

/// A data-plane cache under some replacement policy.
///
/// `now_ns` is the packet timestamp; only time-aware policies (timeout) read
/// it, but it is part of the uniform interface because the data plane always
/// has it available.
pub trait Cache<K, V> {
    /// Processes one access: hit-merge or miss-admit per the policy.
    fn access(&mut self, key: K, value: V, now_ns: u64, merge: MergeFn<V>) -> Access<K, V>;

    /// Read-only lookup (no recency side effects).
    fn peek(&self, key: &K) -> Option<&V>;

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Currently cached entries (statistics only; may be O(capacity)).
    fn len(&self) -> usize;

    /// Is the cache empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable policy label used in figure output.
    fn name(&self) -> &'static str;

    /// Drains every cached entry (end-of-run flush; used by LruMon's final
    /// collection). Default implementation returns nothing for policies
    /// that cannot enumerate entries.
    fn drain_entries(&mut self) -> Vec<(K, V)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_helpers() {
        let h: Access<u32, u32> = Access::Hit;
        assert!(h.is_hit());
        assert!(h.resident());
        assert_eq!(h.evicted(), None);

        let m: Access<u32, u32> = Access::Miss {
            evicted: Some((1, 2)),
            inserted: true,
        };
        assert!(!m.is_hit());
        assert!(m.resident());
        assert_eq!(m.evicted(), Some((1, 2)));

        let refused: Access<u32, u32> = Access::Miss {
            evicted: None,
            inserted: false,
        };
        assert!(!refused.resident());
    }

    #[test]
    fn merge_helpers() {
        let mut slot = 1u32;
        merge_replace(&mut slot, 9);
        assert_eq!(slot, 9);
        merge_keep(&mut slot, 100);
        assert_eq!(slot, 9);
    }

    /// Smoke-drives any policy through a common scenario; used by each
    /// policy's own test module via `pub(crate)` visibility.
    pub(crate) fn exercise_policy<C: Cache<u64, u64>>(cache: &mut C) {
        assert!(cache.is_empty());
        let mut hits = 0usize;
        let mut x = 11u64;
        for i in 0..10_000u64 {
            x = crate::hashing::mix64(x);
            let key = x % 64; // small key space: plenty of hits
            let out = cache.access(key, i, i * 1000, merge_replace);
            if out.is_hit() {
                hits += 1;
            }
            // An evicted entry must not still be resident.
            if let Access::Miss {
                evicted: Some((ek, _)),
                ..
            } = &out
            {
                assert!(
                    cache.peek(ek).is_none(),
                    "{} evicted but resident",
                    cache.name()
                );
            }
        }
        assert!(hits > 0, "{} never hit", cache.name());
        assert!(cache.len() <= cache.capacity(), "{} overfull", cache.name());
    }
}
