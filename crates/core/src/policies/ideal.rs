//! The ideal LRU cache (paper label `LRU_IDEAL`).
//!
//! A textbook O(1) LRU over the *whole* capacity — the upper bound every
//! P4LRU configuration is measured against in §4.2. Implemented as a
//! hash map into an intrusive doubly-linked list held in a slab, the same
//! structure Memcached uses (minus the sharding), which the paper cites as
//! the standard software realization that *cannot* be placed in a pipeline.

use std::collections::HashMap;
use std::hash::Hash;

use super::{Access, Cache, MergeFn};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Strict LRU with O(1) access via hash map + intrusive list.
///
/// ```
/// use p4lru_core::policies::{Cache, IdealLru, merge_replace};
///
/// let mut lru = IdealLru::new(2);
/// lru.access("a", 1, 0, merge_replace);
/// lru.access("b", 2, 1, merge_replace);
/// lru.access("a", 1, 2, merge_replace);          // refresh "a"
/// let out = lru.access("c", 3, 3, merge_replace); // evicts the LRU: "b"
/// assert_eq!(out.evicted(), Some(("b", 2)));
/// ```
#[derive(Clone, Debug)]
pub struct IdealLru<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot index.
    head: usize,
    /// Least recently used slot index.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> IdealLru<K, V> {
    /// An empty LRU holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// The least recently used entry.
    pub fn peek_lru(&self) -> Option<(&K, &V)> {
        (self.tail != NIL).then(|| {
            let s = &self.slots[self.tail];
            (&s.key, &s.value)
        })
    }

    /// Entries in most-recent-first order (statistics only).
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = &self.slots[cur];
            cur = s.next;
            Some((&s.key, &s.value))
        })
    }

    /// Structural invariants for property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let listed: Vec<usize> = {
            let mut v = Vec::new();
            let mut cur = self.head;
            let mut prev = NIL;
            while cur != NIL {
                if self.slots[cur].prev != prev {
                    return Err(format!("bad prev link at slot {cur}"));
                }
                v.push(cur);
                prev = cur;
                cur = self.slots[cur].next;
                if v.len() > self.slots.len() {
                    return Err("list cycle".into());
                }
            }
            if prev != self.tail {
                return Err("tail mismatch".into());
            }
            v
        };
        if listed.len() != self.map.len() {
            return Err(format!(
                "list len {} != map len {}",
                listed.len(),
                self.map.len()
            ));
        }
        for &idx in &listed {
            if self.map.get(&self.slots[idx].key) != Some(&idx) {
                return Err(format!("map does not point at slot {idx}"));
            }
        }
        Ok(())
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for IdealLru<K, V> {
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        if let Some(&idx) = self.map.get(&key) {
            merge(&mut self.slots[idx].value, value);
            self.unlink(idx);
            self.push_front(idx);
            return Access::Hit;
        }
        if self.slots.len() < self.capacity {
            let idx = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.push_front(idx);
            return Access::Miss {
                evicted: None,
                inserted: true,
            };
        }
        // Reuse the LRU slot.
        let idx = self.tail;
        self.unlink(idx);
        let slot = &mut self.slots[idx];
        let old_key = std::mem::replace(&mut slot.key, key.clone());
        let old_value = std::mem::replace(&mut slot.value, value);
        self.map.remove(&old_key);
        self.map.insert(key, idx);
        self.push_front(idx);
        Access::Miss {
            evicted: Some((old_key, old_value)),
            inserted: true,
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slots[idx].value)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "LRU_IDEAL"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        self.slots.drain(..).map(|s| (s.key, s.value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    #[test]
    fn evicts_strictly_least_recently_used() {
        let mut lru = IdealLru::<u32, u32>::new(3);
        for k in 1..=3 {
            lru.access(k, k, 0, merge_replace);
        }
        lru.access(1, 1, 0, merge_replace); // order now 1,3,2
        let out = lru.access(4, 4, 0, merge_replace);
        assert_eq!(out.evicted(), Some((2, 2)));
        let order: Vec<u32> = lru.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![4, 1, 3]);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn hit_merges_value() {
        let mut lru = IdealLru::<u32, u32>::new(2);
        lru.access(5, 10, 0, merge_replace);
        let out = lru.access(5, 20, 0, |a, v| *a += v);
        assert!(out.is_hit());
        assert_eq!(lru.peek(&5), Some(&30));
    }

    #[test]
    fn relative_recency_matches_paper_definition() {
        // The LRU_IDEAL always evicts the entry with the oldest last access.
        let mut lru = IdealLru::<u32, u64>::new(4);
        for (t, k) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (5, 1)] {
            lru.access(k, t, t, merge_replace);
        }
        // Last-access order (new→old): 1, 2, 4, 3.
        let out = lru.access(9, 9, 6, merge_replace);
        assert_eq!(out.evicted().map(|(k, _)| k), Some(3));
    }

    #[test]
    fn capacity_one_degenerates_gracefully() {
        let mut lru = IdealLru::<u32, u32>::new(1);
        assert!(!lru.access(1, 1, 0, merge_replace).is_hit());
        assert!(lru.access(1, 1, 0, merge_replace).is_hit());
        let out = lru.access(2, 2, 0, merge_replace);
        assert_eq!(out.evicted(), Some((1, 1)));
        assert_eq!(lru.len(), 1);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut lru = IdealLru::<u32, u32>::new(8);
        for k in 0..5 {
            lru.access(k, k * 2, 0, merge_replace);
        }
        let mut drained = lru.drain_entries();
        drained.sort_unstable();
        assert_eq!(drained, vec![(0, 0), (1, 2), (2, 4), (3, 6), (4, 8)]);
        assert!(lru.is_empty());
        assert_eq!(lru.peek_lru(), None);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn generic_policy_exercise() {
        let mut lru = IdealLru::<u64, u64>::new(32);
        crate::policies::tests::exercise_policy(&mut lru);
        lru.check_invariants().unwrap();
    }

    #[test]
    fn long_random_walk_keeps_invariants() {
        let mut lru = IdealLru::<u64, u64>::new(16);
        let mut x = 5u64;
        for i in 0..20_000u64 {
            x = crate::hashing::mix64(x);
            lru.access(x % 50, i, i, merge_replace);
            if i % 1000 == 0 {
                lru.check_invariants().unwrap();
            }
        }
        lru.check_invariants().unwrap();
    }
}
