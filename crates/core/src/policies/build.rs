//! Equal-memory cache construction for the comparison sweeps.
//!
//! The paper's §4.2 experiments hold total data-plane memory constant while
//! swapping the replacement policy. [`build_cache`] turns a byte budget into
//! a concretely-sized cache for each [`PolicyKind`], using the per-entry
//! layouts below:
//!
//! | policy | bytes per bucket/unit |
//! |---|---|
//! | P4LRUn | n·(key+value) + 1 state byte |
//! | Timeout | key+value + 4-byte timestamp |
//! | Elastic | key+value + 8 vote bytes |
//! | Coco | key+value + 8 count bytes |
//! | Ideal LRU | key+value only (an idealized bound; its list/map overhead is not data-plane memory) |

use std::hash::Hash;

use super::{
    ArcCache, Cache, CocoCache, ElasticCache, IdealLru, P4Lru1Cache, P4Lru2Cache, P4Lru3Cache,
    P4Lru4Cache, SlruCache, TimeoutCache,
};
use crate::array::MemoryModel;

/// Which replacement policy to build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// Ideal (software) LRU over the whole capacity.
    Ideal,
    /// Plain hash table (always replace) — the paper's baseline.
    P4Lru1,
    /// P4LRU2 units.
    P4Lru2,
    /// P4LRU3 units — the deployed flavor.
    P4Lru3,
    /// P4LRU4 units (the paper's §2.3.3 extension).
    P4Lru4,
    /// Timestamp-gated replacement with this timeout.
    Timeout {
        /// Expiry threshold in nanoseconds.
        timeout_ns: u64,
    },
    /// Elastic-sketch vote replacement (λ = 8).
    Elastic,
    /// CocoSketch probabilistic replacement.
    Coco,
    /// Segmented LRU (software reference; paper §5.1 recency variants).
    Slru,
    /// Adaptive Replacement Cache (software reference; paper §5.1 hybrids).
    Arc,
}

impl PolicyKind {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Ideal => "LRU_IDEAL",
            PolicyKind::P4Lru1 => "P4LRU1",
            PolicyKind::P4Lru2 => "P4LRU2",
            PolicyKind::P4Lru3 => "P4LRU3",
            PolicyKind::P4Lru4 => "P4LRU4",
            PolicyKind::Timeout { .. } => "Timeout",
            PolicyKind::Elastic => "Elastic",
            PolicyKind::Coco => "Coco",
            PolicyKind::Slru => "SLRU",
            PolicyKind::Arc => "ARC",
        }
    }

    /// The comparison set of Figures 12–14: Coco, Elastic, Timeout, P4LRU3.
    pub fn comparison_set(timeout_ns: u64) -> Vec<PolicyKind> {
        vec![
            PolicyKind::Coco,
            PolicyKind::Elastic,
            PolicyKind::Timeout { timeout_ns },
            PolicyKind::P4Lru3,
        ]
    }

    /// The parameter set of Figures 15–16: LRU_IDEAL, P4LRU1/2/3.
    pub fn parameter_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Ideal,
            PolicyKind::P4Lru1,
            PolicyKind::P4Lru2,
            PolicyKind::P4Lru3,
        ]
    }
}

/// Builds a cache of the given policy fitting `memory_bytes`, for keys and
/// values of the sizes in `layout`.
pub fn build_cache<K, V>(
    kind: PolicyKind,
    memory_bytes: usize,
    layout: MemoryModel,
    seed: u64,
) -> Box<dyn Cache<K, V>>
where
    K: Eq + Hash + Clone + 'static,
    V: 'static,
{
    match kind {
        PolicyKind::Ideal => {
            let entries = layout.buckets_in(memory_bytes, 0);
            Box::new(IdealLru::new(entries))
        }
        PolicyKind::P4Lru1 => Box::new(P4Lru1Cache::new(layout.buckets_in(memory_bytes, 0), seed)),
        PolicyKind::P4Lru2 => Box::new(P4Lru2Cache::new(layout.units_in(memory_bytes, 2), seed)),
        PolicyKind::P4Lru3 => Box::new(P4Lru3Cache::new(layout.units_in(memory_bytes, 3), seed)),
        PolicyKind::P4Lru4 => Box::new(P4Lru4Cache::new(layout.units_in(memory_bytes, 4), seed)),
        PolicyKind::Timeout { timeout_ns } => Box::new(TimeoutCache::new(
            layout.buckets_in(memory_bytes, 4),
            timeout_ns,
            seed,
        )),
        PolicyKind::Elastic => Box::new(ElasticCache::with_default_lambda(
            layout.buckets_in(memory_bytes, 8),
            seed,
        )),
        PolicyKind::Coco => Box::new(CocoCache::new(layout.buckets_in(memory_bytes, 8), seed)),
        // Software references: charged key+value only, like the ideal LRU.
        PolicyKind::Slru => Box::new(SlruCache::new(layout.buckets_in(memory_bytes, 0))),
        PolicyKind::Arc => Box::new(ArcCache::new(layout.buckets_in(memory_bytes, 0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    #[test]
    fn builds_every_kind_with_sane_capacity() {
        let layout = MemoryModel::fp32_len32();
        let kinds = [
            PolicyKind::Ideal,
            PolicyKind::P4Lru1,
            PolicyKind::P4Lru2,
            PolicyKind::P4Lru3,
            PolicyKind::P4Lru4,
            PolicyKind::Timeout { timeout_ns: 1000 },
            PolicyKind::Elastic,
            PolicyKind::Coco,
            PolicyKind::Slru,
            PolicyKind::Arc,
        ];
        for kind in kinds {
            let mut c: Box<dyn Cache<u64, u32>> = build_cache(kind, 10_000, layout, 1);
            assert!(c.capacity() > 0, "{} empty", kind.label());
            // ~10 KB at ≤ 16 B/entry ⇒ between 500 and 1300 entries.
            assert!(
                (500..=1300).contains(&c.capacity()),
                "{}: capacity {}",
                kind.label(),
                c.capacity()
            );
            c.access(1, 1, 0, merge_replace);
            assert_eq!(c.peek(&1), Some(&1), "{} lost an insert", kind.label());
        }
    }

    #[test]
    fn equal_memory_means_p4lru3_has_more_entries_than_timeout() {
        let layout = MemoryModel::fp32_len32();
        let p3: Box<dyn Cache<u64, u32>> = build_cache(PolicyKind::P4Lru3, 12_000, layout, 1);
        let to: Box<dyn Cache<u64, u32>> =
            build_cache(PolicyKind::Timeout { timeout_ns: 1 }, 12_000, layout, 1);
        // 25 B per 3 entries (8.33 B/entry) vs 12 B/entry.
        assert!(p3.capacity() > to.capacity());
    }

    #[test]
    fn labels_and_sets() {
        assert_eq!(PolicyKind::P4Lru3.label(), "P4LRU3");
        assert_eq!(PolicyKind::comparison_set(5).len(), 4);
        assert_eq!(PolicyKind::parameter_set().len(), 4);
        assert_eq!(PolicyKind::Timeout { timeout_ns: 5 }.label(), "Timeout");
    }
}
