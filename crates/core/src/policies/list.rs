//! A reusable intrusive LRU list: hash map into an arena doubly-linked
//! list. O(1) touch/insert/evict. Building block for the multi-segment
//! software references ([`super::SlruCache`], [`super::ArcCache`]) that the
//! extension ablations compare P4LRU against.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// An LRU-ordered list with O(1) operations (front = most recent).
#[derive(Clone, Debug)]
pub struct LruList<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> Default for LruList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> LruList<K, V> {
    /// An empty list.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Does the list contain `key`?
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Borrow the value of `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&i| self.nodes[i].value.as_ref())
    }

    /// Mutably borrow the value of `key` without touching recency.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = *self.map.get(key)?;
        self.nodes[i].value.as_mut()
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.nodes[i].prev, self.nodes[i].next);
        if p != NIL {
            self.nodes[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn vacate(&mut self, i: usize) -> (K, V) {
        self.unlink(i);
        self.free.push(i);
        let key = self.nodes[i].key.clone();
        let value = self.nodes[i]
            .value
            .take()
            .expect("occupied slot has a value");
        self.map.remove(&key);
        (key, value)
    }

    /// Moves `key` to the front. Returns `false` if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(&i) = self.map.get(key) else {
            return false;
        };
        self.unlink(i);
        self.link_front(i);
        true
    }

    /// Inserts at the front.
    ///
    /// # Panics
    /// Panics if the key is already present.
    pub fn push_front(&mut self, key: K, value: V) {
        assert!(!self.map.contains_key(&key), "duplicate key");
        let node = Node {
            key: key.clone(),
            value: Some(value),
            prev: NIL,
            next: NIL,
        };
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    /// Removes and returns the least recently used entry.
    pub fn pop_back(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let i = self.tail;
        Some(self.vacate(i))
    }

    /// Removes and returns the most recently used entry.
    pub fn pop_front(&mut self) -> Option<(K, V)> {
        if self.head == NIL {
            return None;
        }
        let i = self.head;
        Some(self.vacate(i))
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = *self.map.get(key)?;
        Some(self.vacate(i).1)
    }

    /// The least recently used key.
    pub fn back(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].key)
    }

    /// Iterates entries front (MRU) to back (LRU).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            while cur != NIL {
                let n = &self.nodes[cur];
                cur = n.next;
                if let Some(v) = n.value.as_ref() {
                    return Some((&n.key, v));
                }
            }
            None
        })
    }

    /// Drains everything (MRU first).
    pub fn drain(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(e) = self.pop_front() {
            out.push(e);
        }
        out
    }

    /// Structural check for property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cur = self.head;
        let mut prev = NIL;
        let mut count = 0usize;
        while cur != NIL {
            if self.nodes[cur].prev != prev {
                return Err(format!("bad prev at {cur}"));
            }
            if self.nodes[cur].value.is_none() {
                return Err(format!("vacated slot {cur} still linked"));
            }
            if self.map.get(&self.nodes[cur].key) != Some(&cur) {
                return Err(format!("map mismatch at {cur}"));
            }
            count += 1;
            if count > self.nodes.len() {
                return Err("cycle".into());
            }
            prev = cur;
            cur = self.nodes[cur].next;
        }
        if prev != self.tail {
            return Err("tail mismatch".into());
        }
        if count != self.map.len() {
            return Err(format!("list len {count} != map len {}", self.map.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lru_order() {
        let mut l = LruList::new();
        l.push_front(1, "a");
        l.push_front(2, "b");
        l.push_front(3, "c");
        assert_eq!(l.back(), Some(&1));
        assert!(l.touch(&1));
        assert_eq!(l.back(), Some(&2));
        assert_eq!(l.pop_back(), Some((2, "b")));
        assert_eq!(l.len(), 2);
        l.check_invariants().unwrap();
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut l = LruList::new();
        for k in 0..10 {
            l.push_front(k, k * 10);
        }
        assert_eq!(l.remove(&5), Some(50));
        assert_eq!(l.remove(&5), None);
        let arena = l.nodes.len();
        l.push_front(99, 990);
        assert_eq!(l.nodes.len(), arena, "freed slot reused");
        assert_eq!(l.peek(&99), Some(&990));
        l.check_invariants().unwrap();
    }

    #[test]
    fn iter_is_mru_to_lru() {
        let mut l = LruList::new();
        for k in 1..=4 {
            l.push_front(k, ());
        }
        l.touch(&2);
        let order: Vec<i32> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn drain_empties() {
        let mut l = LruList::new();
        for k in 0..5 {
            l.push_front(k, k);
        }
        let drained = l.drain();
        assert_eq!(drained.len(), 5);
        assert!(l.is_empty());
        assert_eq!(l.pop_back(), None);
        l.check_invariants().unwrap();
    }

    #[test]
    fn peek_mut_edits() {
        let mut l = LruList::new();
        l.push_front(7, 1);
        *l.peek_mut(&7).unwrap() += 5;
        assert_eq!(l.peek(&7), Some(&6));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_push_panics() {
        let mut l = LruList::new();
        l.push_front(1, ());
        l.push_front(1, ());
    }

    #[test]
    fn random_walk_invariants() {
        let mut l = LruList::<u64, u64>::new();
        let mut x = 9u64;
        for i in 0..10_000u64 {
            x = crate::hashing::mix64(x);
            let k = x % 60;
            match x % 4 {
                0 => {
                    if !l.contains(&k) {
                        l.push_front(k, i);
                    }
                }
                1 => {
                    l.touch(&k);
                }
                2 => {
                    l.remove(&k);
                }
                _ => {
                    l.pop_back();
                }
            }
            if i % 500 == 0 {
                l.check_invariants().unwrap();
            }
        }
        l.check_invariants().unwrap();
    }
}
