//! Elastic-sketch-style frequency replacement (paper §4.2, label `Elastic`).
//!
//! Each bucket holds one incumbent with a positive vote counter and a
//! negative vote counter. Hits vote positive; colliding keys vote negative;
//! when `negative / positive ≥ λ` the incumbent is ousted (Elastic sketch's
//! heavy-part rule, λ = 8 in the original paper). The paper's critique of
//! frequency policies applies verbatim: an entry that accumulated many
//! positive votes lingers long after its flow has gone idle.

use std::hash::Hash;

use super::{Access, Cache, MergeFn};
use crate::hashing::BucketHasher;

/// Elastic's vote threshold λ: replace when `vote⁻ ≥ λ · vote⁺`.
pub const DEFAULT_LAMBDA: u32 = 8;

#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    vote_pos: u32,
    vote_neg: u32,
}

/// Vote-based frequency cache in the style of the Elastic sketch heavy part.
#[derive(Clone, Debug)]
pub struct ElasticCache<K, V> {
    buckets: Vec<Option<Entry<K, V>>>,
    hasher: BucketHasher,
    lambda: u32,
    len: usize,
}

impl<K: Eq + Hash, V> ElasticCache<K, V> {
    /// `buckets` single-incumbent buckets with the given vote threshold.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `lambda == 0`.
    pub fn new(buckets: usize, lambda: u32, seed: u64) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        assert!(lambda > 0, "lambda must be positive");
        Self {
            buckets: (0..buckets).map(|_| None).collect(),
            hasher: BucketHasher::new(seed, buckets),
            lambda,
            len: 0,
        }
    }

    /// Elastic with the original paper's λ = 8.
    pub fn with_default_lambda(buckets: usize, seed: u64) -> Self {
        Self::new(buckets, DEFAULT_LAMBDA, seed)
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for ElasticCache<K, V> {
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        let idx = self.hasher.bucket(&key);
        match &mut self.buckets[idx] {
            Some(e) if e.key == key => {
                merge(&mut e.value, value);
                e.vote_pos = e.vote_pos.saturating_add(1);
                Access::Hit
            }
            Some(e) => {
                e.vote_neg = e.vote_neg.saturating_add(1);
                if e.vote_neg >= e.vote_pos.saturating_mul(self.lambda) {
                    let old = std::mem::replace(
                        e,
                        Entry {
                            key,
                            value,
                            vote_pos: 1,
                            vote_neg: 0,
                        },
                    );
                    Access::Miss {
                        evicted: Some((old.key, old.value)),
                        inserted: true,
                    }
                } else {
                    Access::Miss {
                        evicted: None,
                        inserted: false,
                    }
                }
            }
            empty @ None => {
                *empty = Some(Entry {
                    key,
                    value,
                    vote_pos: 1,
                    vote_neg: 0,
                });
                self.len += 1;
                Access::Miss {
                    evicted: None,
                    inserted: true,
                }
            }
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        let idx = self.hasher.bucket(key);
        self.buckets[idx]
            .as_ref()
            .filter(|e| &e.key == key)
            .map(|e| &e.value)
    }

    fn capacity(&self) -> usize {
        self.buckets.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "Elastic"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        self.len = 0;
        self.buckets
            .iter_mut()
            .filter_map(|b| b.take().map(|e| (e.key, e.value)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    fn colliders(c: &ElasticCache<u64, u32>, want: usize) -> Vec<u64> {
        let target = c.hasher.bucket(&0u64);
        let mut out = vec![0u64];
        out.extend(
            (1..100_000u64)
                .filter(|k| c.hasher.bucket(k) == target)
                .take(want - 1),
        );
        assert_eq!(out.len(), want);
        out
    }

    #[test]
    fn heavily_voted_incumbent_resists_eviction() {
        let mut c = ElasticCache::<u64, u32>::new(4, 8, 1);
        let ks = colliders(&c, 2);
        for _ in 0..10 {
            c.access(ks[0], 1, 0, merge_replace); // vote_pos = 10
        }
        // 79 negative votes (< 80) must not oust it.
        for _ in 0..79 {
            let out = c.access(ks[1], 2, 0, merge_replace);
            assert!(!out.resident());
        }
        assert_eq!(c.peek(&ks[0]), Some(&1));
        // The 80th does.
        let out = c.access(ks[1], 2, 0, merge_replace);
        assert!(out.resident());
        assert_eq!(c.peek(&ks[1]), Some(&2));
    }

    #[test]
    fn stale_heavy_hitter_squats_the_paper_critique() {
        // A flow hit 100 times then gone: λ·100 further misses are needed
        // before any newcomer gets in — the recency blindness LRU fixes.
        let mut c = ElasticCache::<u64, u32>::new(2, 8, 3);
        let ks = colliders(&c, 3);
        for _ in 0..100 {
            c.access(ks[0], 1, 0, merge_replace);
        }
        let mut rejected = 0;
        for i in 0..400u64 {
            let newcomer = ks[1 + (i % 2) as usize];
            if !c.access(newcomer, 2, i, merge_replace).resident() {
                rejected += 1;
            }
        }
        assert!(rejected > 300, "only {rejected} rejections");
    }

    #[test]
    fn fresh_bucket_admits_immediately() {
        let mut c = ElasticCache::<u64, u32>::new(8, 8, 1);
        let out = c.access(5, 50, 0, merge_replace);
        assert_eq!(
            out,
            Access::Miss {
                evicted: None,
                inserted: true
            }
        );
        assert!(c.access(5, 51, 0, merge_replace).is_hit());
    }

    #[test]
    fn lambda_one_replaces_aggressively() {
        let mut c = ElasticCache::<u64, u32>::new(4, 1, 1);
        let ks = colliders(&c, 2);
        c.access(ks[0], 1, 0, merge_replace);
        // vote_pos = 1, so a single negative vote (= λ·1) replaces.
        let out = c.access(ks[1], 2, 0, merge_replace);
        assert!(out.resident());
    }

    #[test]
    fn generic_policy_exercise() {
        let mut c = ElasticCache::<u64, u64>::with_default_lambda(64, 1);
        crate::policies::tests::exercise_policy(&mut c);
    }
}
