//! CocoSketch-style probabilistic replacement (paper §4.2, label `Coco`).
//!
//! Each bucket keeps one incumbent and a count. Every access adds its weight
//! to the count; a colliding key takes over the bucket with probability
//! `w / count` (unbiased sampling — over time the bucket holds a flow with
//! probability proportional to its traffic share). Like all frequency-based
//! policies it favors historically-heavy flows regardless of recency.

use std::hash::Hash;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{Access, Cache, MergeFn};
use crate::hashing::BucketHasher;

#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    count: u64,
}

/// Unbiased-sampling frequency cache in the style of CocoSketch.
#[derive(Clone, Debug)]
pub struct CocoCache<K, V> {
    buckets: Vec<Option<Entry<K, V>>>,
    hasher: BucketHasher,
    rng: SmallRng,
    len: usize,
}

impl<K: Eq + Hash, V> CocoCache<K, V> {
    /// `buckets` single-incumbent buckets; replacement coin flips come from
    /// a deterministic RNG seeded with `seed`.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize, seed: u64) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        Self {
            buckets: (0..buckets).map(|_| None).collect(),
            hasher: BucketHasher::new(seed, buckets),
            rng: SmallRng::seed_from_u64(seed ^ 0xC0C0),
            len: 0,
        }
    }

    /// Access with an explicit weight (packet length for byte-weighted
    /// replacement); [`Cache::access`] uses weight 1.
    pub fn access_weighted(
        &mut self,
        key: K,
        value: V,
        weight: u64,
        merge: MergeFn<V>,
    ) -> Access<K, V>
    where
        K: Clone,
    {
        let idx = self.hasher.bucket(&key);
        match &mut self.buckets[idx] {
            Some(e) if e.key == key => {
                merge(&mut e.value, value);
                e.count += weight;
                Access::Hit
            }
            Some(e) => {
                e.count += weight;
                // Take over with probability weight/count (unbiased).
                if self.rng.gen_range(0..e.count) < weight {
                    let count = e.count;
                    let old = std::mem::replace(e, Entry { key, value, count });
                    Access::Miss {
                        evicted: Some((old.key, old.value)),
                        inserted: true,
                    }
                } else {
                    Access::Miss {
                        evicted: None,
                        inserted: false,
                    }
                }
            }
            empty @ None => {
                *empty = Some(Entry {
                    key,
                    value,
                    count: weight,
                });
                self.len += 1;
                Access::Miss {
                    evicted: None,
                    inserted: true,
                }
            }
        }
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for CocoCache<K, V> {
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        self.access_weighted(key, value, 1, merge)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        let idx = self.hasher.bucket(key);
        self.buckets[idx]
            .as_ref()
            .filter(|e| &e.key == key)
            .map(|e| &e.value)
    }

    fn capacity(&self) -> usize {
        self.buckets.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "Coco"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        self.len = 0;
        self.buckets
            .iter_mut()
            .filter_map(|b| b.take().map(|e| (e.key, e.value)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    fn colliders(c: &CocoCache<u64, u32>, want: usize) -> Vec<u64> {
        let target = c.hasher.bucket(&0u64);
        let mut out = vec![0u64];
        out.extend(
            (1..100_000u64)
                .filter(|k| c.hasher.bucket(k) == target)
                .take(want - 1),
        );
        assert_eq!(out.len(), want);
        out
    }

    #[test]
    fn takeover_probability_tracks_traffic_share() {
        // Key A sends 90% of packets, key B 10%; after many trials B should
        // own the bucket rarely (≈10% of snapshots, generously bounded).
        let mut owned_by_b = 0usize;
        let trials = 400;
        for seed in 0..trials {
            let mut c = CocoCache::<u64, u32>::new(2, seed);
            let ks = colliders(&c, 2);
            let mut x = seed;
            for _ in 0..200 {
                x = crate::hashing::mix64(x);
                let key = if x % 10 == 0 { ks[1] } else { ks[0] };
                c.access(key, 0, 0, merge_replace);
            }
            if c.peek(&ks[1]).is_some() {
                owned_by_b += 1;
            }
        }
        let share = owned_by_b as f64 / trials as f64;
        assert!(share > 0.02 && share < 0.30, "B ownership share {share}");
    }

    #[test]
    fn heavier_weight_takes_over_faster() {
        let mut c = CocoCache::<u64, u32>::new(2, 9);
        let ks = colliders(&c, 2);
        c.access_weighted(ks[0], 1, 1, merge_replace);
        // A colliding access whose weight dwarfs the count always wins the
        // range check is probabilistic, so drive until takeover and bound it.
        let mut attempts = 0;
        while c.peek(&ks[1]).is_none() {
            c.access_weighted(ks[1], 2, 1_000_000, merge_replace);
            attempts += 1;
            assert!(attempts < 100, "heavy weight never took over");
        }
        assert!(
            attempts <= 2,
            "took {attempts} attempts despite 10^6:1 odds"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = || {
            let mut c = CocoCache::<u64, u64>::new(16, 77);
            let mut trace = Vec::new();
            let mut x = 1u64;
            for i in 0..2000u64 {
                x = crate::hashing::mix64(x);
                trace.push(c.access(x % 50, i, i, merge_replace).is_hit());
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn generic_policy_exercise() {
        let mut c = CocoCache::<u64, u64>::new(64, 5);
        crate::policies::tests::exercise_policy(&mut c);
    }
}
