//! ARC — Adaptive Replacement Cache (Megiddo & Modha 2003; paper §5.1's
//! hybrid policies).
//!
//! Four lists: `T1` (resident, seen once), `T2` (resident, seen twice+),
//! and ghost lists `B1`/`B2` remembering *keys* recently evicted from each.
//! A hit in a ghost list is evidence the adaptive target `p` (T1's share)
//! should move toward that side. ARC adapts between recency (LRU-like) and
//! frequency (LFU-like) behavior with O(1) operations.
//!
//! A software reference like [`super::IdealLru`] — far beyond what a
//! pipeline can host (four linked structures, a second pass) — used to
//! bound how much an adaptive policy could improve on P4LRU.

use std::hash::Hash;

use super::list::LruList;
use super::{Access, Cache, MergeFn};

/// ARC cache.
#[derive(Clone, Debug)]
pub struct ArcCache<K, V> {
    t1: LruList<K, V>,
    t2: LruList<K, V>,
    b1: LruList<K, ()>,
    b2: LruList<K, ()>,
    /// Target size of T1 (adapted online), `p` in the paper.
    p: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> ArcCache<K, V> {
    /// An ARC of `capacity` resident entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            t1: LruList::new(),
            t2: LruList::new(),
            b1: LruList::new(),
            b2: LruList::new(),
            p: 0,
            capacity,
        }
    }

    /// The adaptive T1 target (diagnostics).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Occupancies `(|T1|, |T2|, |B1|, |B2|)` (diagnostics).
    pub fn occupancy(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// REPLACE(x) of the ARC paper: demote a resident entry to its ghost
    /// list, returning the evicted entry.
    fn replace(&mut self, in_b2: bool) -> Option<(K, V)> {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (in_b2 && t1_len == self.p)) {
            let (k, v) = self.t1.pop_back().expect("non-empty");
            self.b1.push_front(k.clone(), ());
            Some((k, v))
        } else if let Some((k, v)) = self.t2.pop_back() {
            self.b2.push_front(k.clone(), ());
            Some((k, v))
        } else if let Some((k, v)) = self.t1.pop_back() {
            self.b1.push_front(k.clone(), ());
            Some((k, v))
        } else {
            None
        }
    }

    /// Structural invariants (property tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        let c = self.capacity;
        if self.t1.len() + self.t2.len() > c {
            return Err("resident overflow".into());
        }
        if self.t1.len() + self.b1.len() > c {
            return Err("|T1|+|B1| > c".into());
        }
        if self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() > 2 * c {
            return Err("total directory > 2c".into());
        }
        if self.p > c {
            return Err("p out of range".into());
        }
        self.t1.check_invariants()?;
        self.t2.check_invariants()?;
        self.b1.check_invariants()?;
        self.b2.check_invariants()
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for ArcCache<K, V> {
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        // Case I: hit in T1 or T2 → move to T2 MRU.
        if self.t1.contains(&key) {
            let mut v = self.t1.remove(&key).expect("contained");
            merge(&mut v, value);
            self.t2.push_front(key, v);
            return Access::Hit;
        }
        if self.t2.contains(&key) {
            merge(self.t2.peek_mut(&key).expect("contained"), value);
            self.t2.touch(&key);
            return Access::Hit;
        }
        // Case II: ghost hit in B1 → grow p, fetch into T2.
        if self.b1.contains(&key) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            let evicted = self.replace(false);
            self.b1.remove(&key);
            self.t2.push_front(key, value);
            return Access::Miss {
                evicted,
                inserted: true,
            };
        }
        // Case III: ghost hit in B2 → shrink p, fetch into T2.
        if self.b2.contains(&key) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let evicted = self.replace(true);
            self.b2.remove(&key);
            self.t2.push_front(key, value);
            return Access::Miss {
                evicted,
                inserted: true,
            };
        }
        // Case IV: complete miss.
        let c = self.capacity;
        let mut evicted = None;
        if self.t1.len() + self.b1.len() == c {
            if self.t1.len() < c {
                self.b1.pop_back();
                evicted = self.replace(false);
            } else {
                // B1 empty, T1 full: evict T1 LRU outright (no ghost).
                evicted = self.t1.pop_back();
            }
        } else if self.t1.len() + self.b1.len() < c {
            let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
            if total >= c {
                if total == 2 * c {
                    self.b2.pop_back();
                }
                if self.t1.len() + self.t2.len() >= c {
                    evicted = self.replace(false);
                }
            }
        }
        self.t1.push_front(key, value);
        Access::Miss {
            evicted,
            inserted: true,
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.t1.peek(key).or_else(|| self.t2.peek(key))
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn name(&self) -> &'static str {
        "ARC"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        let mut out = self.t1.drain();
        out.extend(self.t2.drain());
        self.b1.drain();
        self.b2.drain();
        self.p = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    #[test]
    fn hit_promotes_to_t2() {
        let mut c = ArcCache::<u64, u32>::new(4);
        c.access(1, 10, 0, merge_replace);
        assert_eq!(c.occupancy(), (1, 0, 0, 0));
        assert!(c.access(1, 11, 0, merge_replace).is_hit());
        assert_eq!(c.occupancy(), (0, 1, 0, 0));
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    fn ghost_hit_adapts_p() {
        let mut c = ArcCache::<u64, u32>::new(2);
        c.access(1, 1, 0, merge_replace);
        c.access(1, 1, 0, merge_replace); // promote 1 to T2
        c.access(2, 2, 0, merge_replace); // T1={2}, T2={1}: resident = c
                                          // Miss: REPLACE demotes T1's LRU (2) to the B1 ghost list.
        c.access(3, 3, 0, merge_replace);
        assert!(c.b1.contains(&2), "occupancy {:?}", c.occupancy());
        let p_before = c.p();
        // Re-reference 2: ghost hit, p grows, 2 becomes resident in T2.
        let out = c.access(2, 2, 0, merge_replace);
        assert!(!out.is_hit(), "ghost hits are misses (value was gone)");
        assert!(out.resident());
        assert!(c.p() > p_before);
        assert_eq!(c.peek(&2), Some(&2));
        c.check_invariants().unwrap();
    }

    #[test]
    fn t1_full_with_empty_b1_evicts_without_ghosting() {
        // The |T1| = c corner of ARC's Case IV: the LRU of T1 leaves the
        // directory entirely.
        let mut c = ArcCache::<u64, u32>::new(2);
        c.access(1, 1, 0, merge_replace);
        c.access(2, 2, 0, merge_replace);
        let out = c.access(3, 3, 0, merge_replace);
        assert_eq!(out.evicted().map(|(k, _)| k), Some(1));
        assert!(!c.b1.contains(&1));
        c.check_invariants().unwrap();
    }

    #[test]
    fn never_exceeds_capacity_or_directory_bounds() {
        let mut c = ArcCache::<u64, u64>::new(16);
        let mut x = 5u64;
        for i in 0..20_000u64 {
            x = crate::hashing::mix64(x);
            // Mixture: a hot set plus a scan.
            let key = if x.is_multiple_of(3) { x % 8 } else { x % 4000 };
            c.access(key, i, i, merge_replace);
            if i % 500 == 0 {
                c.check_invariants().unwrap();
            }
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn adapts_to_scans_better_than_plain_lru() {
        // Workload: a hot set of 8 keys accessed repeatedly, interleaved
        // with a one-pass scan over 2000 cold keys. ARC should keep the hot
        // set resident; plain LRU churns it.
        let capacity = 32;
        let mut arc = ArcCache::<u64, u64>::new(capacity);
        let mut lru = crate::policies::IdealLru::<u64, u64>::new(capacity);
        let mut arc_hits = 0u64;
        let mut lru_hits = 0u64;
        let mut cold = 10_000u64;
        let mut x = 1u64;
        for i in 0..60_000u64 {
            x = crate::hashing::mix64(x);
            let key = if x.is_multiple_of(2) {
                x % 8 // hot
            } else {
                cold += 1; // pure scan
                cold
            };
            if arc.access(key, i, i, merge_replace).is_hit() {
                arc_hits += 1;
            }
            if lru.access(key, i, i, merge_replace).is_hit() {
                lru_hits += 1;
            }
        }
        assert!(
            arc_hits > lru_hits,
            "ARC {arc_hits} hits should beat LRU {lru_hits} under scanning"
        );
    }

    #[test]
    fn generic_policy_exercise() {
        let mut c = ArcCache::<u64, u64>::new(32);
        crate::policies::tests::exercise_policy(&mut c);
        c.check_invariants().unwrap();
    }

    #[test]
    fn drain_clears_everything_including_ghosts() {
        let mut c = ArcCache::<u64, u32>::new(4);
        for k in 0..12u64 {
            c.access(k, 0, 0, merge_replace);
        }
        let n = c.len();
        assert_eq!(c.drain_entries().len(), n);
        assert!(c.is_empty());
        assert_eq!(c.occupancy(), (0, 0, 0, 0));
        c.check_invariants().unwrap();
    }
}
