//! Segmented LRU (Seg-LRU; paper §5.1's recency-based variants).
//!
//! Two LRU segments: a *probationary* segment absorbs new keys and a
//! *protected* segment holds keys that were hit at least once. A hit in the
//! probationary segment promotes to protected (demoting the protected LRU
//! back to probationary when over budget); eviction always takes the
//! probationary LRU. One-hit wonders never displace proven entries — the
//! classic scan-resistance fix for plain LRU.
//!
//! A software reference (like [`super::IdealLru`]): not data-plane
//! deployable, used by the extension ablations to bound what smarter
//! recency policies could buy.

use std::hash::Hash;

use super::list::LruList;
use super::{Access, Cache, MergeFn};

/// Default fraction of capacity reserved for the protected segment.
pub const DEFAULT_PROTECTED_FRACTION: f64 = 0.8;

/// Segmented LRU cache.
#[derive(Clone, Debug)]
pub struct SlruCache<K, V> {
    probationary: LruList<K, V>,
    protected: LruList<K, V>,
    capacity: usize,
    protected_cap: usize,
}

impl<K: Eq + Hash + Clone, V> SlruCache<K, V> {
    /// A cache of `capacity` entries with the default 80 % protected share.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_protected_fraction(capacity, DEFAULT_PROTECTED_FRACTION)
    }

    /// A cache with an explicit protected-segment share in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or the fraction is out of range.
    pub fn with_protected_fraction(capacity: usize, fraction: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!((0.0..1.0).contains(&fraction), "fraction out of range");
        let protected_cap = ((capacity as f64 * fraction) as usize).min(capacity - 1);
        Self {
            probationary: LruList::new(),
            protected: LruList::new(),
            capacity,
            protected_cap,
        }
    }

    /// Current protected-segment occupancy (diagnostics).
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }

    fn promote(&mut self, key: &K) {
        let value = self.probationary.remove(key).expect("hit key is resident");
        self.protected.push_front(key.clone(), value);
        // Keep the protected segment within budget by demoting its LRU.
        while self.protected.len() > self.protected_cap {
            let (k, v) = self
                .protected
                .pop_back()
                .expect("over budget implies non-empty");
            self.probationary.push_front(k, v);
        }
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for SlruCache<K, V> {
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        if self.protected.contains(&key) {
            merge(self.protected.peek_mut(&key).expect("contained"), value);
            self.protected.touch(&key);
            return Access::Hit;
        }
        if self.probationary.contains(&key) {
            merge(self.probationary.peek_mut(&key).expect("contained"), value);
            self.promote(&key);
            return Access::Hit;
        }
        // Miss: insert probationary, evict its LRU when full overall.
        let evicted = if self.len() >= self.capacity {
            self.probationary
                .pop_back()
                .or_else(|| self.protected.pop_back())
        } else {
            None
        };
        self.probationary.push_front(key, value);
        Access::Miss {
            evicted,
            inserted: true,
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.protected
            .peek(key)
            .or_else(|| self.probationary.peek(key))
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.probationary.len() + self.protected.len()
    }

    fn name(&self) -> &'static str {
        "SLRU"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        let mut out = self.protected.drain();
        out.extend(self.probationary.drain());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    #[test]
    fn one_hit_wonders_cannot_evict_proven_entries() {
        let mut c = SlruCache::<u64, u32>::new(10); // protected cap 8
                                                    // Establish two proven entries.
        for k in [1, 2] {
            c.access(k, k as u32, 0, merge_replace);
            c.access(k, k as u32, 0, merge_replace); // promote
        }
        assert_eq!(c.protected_len(), 2);
        // A scan of 20 one-hit wonders churns the probationary segment only.
        for k in 100..120u64 {
            c.access(k, 0, 0, merge_replace);
        }
        assert!(
            c.access(1, 1, 0, merge_replace).is_hit(),
            "protected key 1 lost"
        );
        assert!(
            c.access(2, 2, 0, merge_replace).is_hit(),
            "protected key 2 lost"
        );
    }

    #[test]
    fn protected_overflow_demotes_not_evicts() {
        let mut c = SlruCache::<u64, u32>::with_protected_fraction(6, 0.5); // protected cap 3
        for k in 0..4u64 {
            c.access(k, 0, 0, merge_replace);
            c.access(k, 0, 0, merge_replace); // promote each
        }
        // Only 3 fit in protected; one was demoted, none evicted.
        assert_eq!(c.protected_len(), 3);
        assert_eq!(c.len(), 4);
        for k in 0..4u64 {
            assert!(c.peek(&k).is_some(), "key {k} evicted by demotion");
        }
    }

    #[test]
    fn eviction_takes_probationary_lru() {
        let mut c = SlruCache::<u64, u32>::with_protected_fraction(4, 0.5);
        c.access(1, 1, 0, merge_replace);
        c.access(1, 1, 0, merge_replace); // 1 → protected
        for k in [2, 3, 4] {
            c.access(k, 0, 0, merge_replace);
        }
        // Cache full (1 protected + 3 probationary). Next miss evicts 2.
        let out = c.access(5, 0, 0, merge_replace);
        assert_eq!(out.evicted().map(|(k, _)| k), Some(2));
        assert!(c.peek(&1).is_some());
    }

    #[test]
    fn generic_policy_exercise() {
        let mut c = SlruCache::<u64, u64>::new(32);
        crate::policies::tests::exercise_policy(&mut c);
    }

    #[test]
    fn drain_returns_all() {
        let mut c = SlruCache::<u64, u32>::new(8);
        for k in 0..6u64 {
            c.access(k, k as u32, 0, merge_replace);
        }
        c.access(0, 0, 0, merge_replace); // promote 0
        assert_eq!(c.drain_entries().len(), 6);
        assert!(c.is_empty());
    }
}
