//! P4LRU arrays behind the [`Cache`] trait, including the single-entry
//! degenerate case P4LRU1 — the plain hash table the paper's testbed calls
//! *Baseline*.

use std::hash::Hash;

use super::{Access, Cache, MergeFn};
use crate::array::LruArray;
use crate::dfa::{CacheState, Dfa2, Dfa3, Dfa4};
use crate::perm::Perm;
use crate::unit::Outcome;

/// P4LRU1: one entry per bucket — a hash table that always replaces on
/// collision (NetSeer-style), the paper's baseline.
pub type P4Lru1Cache<K, V> = P4LruCache<K, V, 1, Perm<1>>;
/// P4LRU2 with the encoded one-bit state.
pub type P4Lru2Cache<K, V> = P4LruCache<K, V, 2, Dfa2>;
/// P4LRU3 with the Table 1 encoded state — the paper's deployed flavor.
pub type P4Lru3Cache<K, V> = P4LruCache<K, V, 3, Dfa3>;
/// P4LRU4 with the V₄ ⋊ S₃ factored state.
pub type P4Lru4Cache<K, V> = P4LruCache<K, V, 4, Dfa4>;

/// An [`LruArray`] adapted to the policy interface.
#[derive(Clone, Debug)]
pub struct P4LruCache<K, V, const N: usize, S: CacheState<N> = Perm<N>> {
    array: LruArray<K, V, N, S>,
}

impl<K: Eq + Hash, V, const N: usize, S: CacheState<N>> P4LruCache<K, V, N, S> {
    /// `units` P4LRUₙ units with hashing from `seed`.
    pub fn new(units: usize, seed: u64) -> Self {
        Self {
            array: LruArray::with_seed(units, seed),
        }
    }

    /// The underlying array.
    pub fn array(&self) -> &LruArray<K, V, N, S> {
        &self.array
    }

    /// Mutable access to the underlying array.
    pub fn array_mut(&mut self) -> &mut LruArray<K, V, N, S> {
        &mut self.array
    }
}

impl<K: Eq + Hash + Clone, V, const N: usize, S: CacheState<N>> Cache<K, V>
    for P4LruCache<K, V, N, S>
{
    fn access(&mut self, key: K, value: V, _now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        match self.array.update(key, value, merge) {
            Outcome::Hit { .. } => Access::Hit,
            Outcome::Inserted => Access::Miss {
                evicted: None,
                inserted: true,
            },
            Outcome::Evicted { key, value } => Access::Miss {
                evicted: Some((key, value)),
                inserted: true,
            },
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.array.get(key)
    }

    fn capacity(&self) -> usize {
        self.array.capacity()
    }

    fn len(&self) -> usize {
        self.array.len()
    }

    fn name(&self) -> &'static str {
        match N {
            1 => "P4LRU1",
            2 => "P4LRU2",
            3 => "P4LRU3",
            4 => "P4LRU4",
            _ => "P4LRUn",
        }
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        self.array.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    #[test]
    fn p4lru1_always_replaces_on_collision() {
        let mut c = P4Lru1Cache::<u64, u32>::new(4, 1);
        // Find two keys that collide.
        let (mut a, mut b) = (None, None);
        for k in 0..1000u64 {
            if c.array().index_of(&k) == 0 {
                if a.is_none() {
                    a = Some(k);
                } else {
                    b = Some(k);
                    break;
                }
            }
        }
        let (a, b) = (a.unwrap(), b.unwrap());
        c.access(a, 1, 0, merge_replace);
        let out = c.access(b, 2, 0, merge_replace);
        assert_eq!(out.evicted(), Some((a, 1)));
        assert_eq!(c.peek(&a), None);
        assert_eq!(c.peek(&b), Some(&2));
    }

    #[test]
    fn p4lru3_survives_two_collisions() {
        // The point of the parallel connection: a unit tolerates up to
        // N-1 interleaving keys before a hot key is evicted.
        let mut c = P4Lru3Cache::<u64, u32>::new(1, 7);
        c.access(1, 1, 0, merge_replace);
        c.access(2, 2, 0, merge_replace);
        c.access(3, 3, 0, merge_replace);
        assert!(c.access(1, 1, 0, merge_replace).is_hit());
    }

    #[test]
    fn drain_entries_empties_and_preserves_hashing() {
        let mut c = P4Lru3Cache::<u64, u32>::new(8, 3);
        for k in 0..12u64 {
            c.access(k, k as u32, 0, merge_replace);
        }
        let before = c.array().index_of(&5);
        let mut got = c.drain_entries();
        assert!(c.is_empty());
        got.sort_unstable();
        assert!(got.len() <= 12);
        assert!(!got.is_empty());
        assert_eq!(c.array().index_of(&5), before);
    }

    #[test]
    fn names_reflect_n() {
        assert_eq!(P4Lru1Cache::<u64, u32>::new(1, 0).name(), "P4LRU1");
        assert_eq!(P4Lru2Cache::<u64, u32>::new(1, 0).name(), "P4LRU2");
        assert_eq!(P4Lru3Cache::<u64, u32>::new(1, 0).name(), "P4LRU3");
        assert_eq!(P4Lru4Cache::<u64, u32>::new(1, 0).name(), "P4LRU4");
    }

    #[test]
    fn generic_policy_exercise_all_n() {
        crate::policies::tests::exercise_policy(&mut P4Lru1Cache::<u64, u64>::new(32, 1));
        crate::policies::tests::exercise_policy(&mut P4Lru2Cache::<u64, u64>::new(16, 1));
        crate::policies::tests::exercise_policy(&mut P4Lru3Cache::<u64, u64>::new(11, 1));
        crate::policies::tests::exercise_policy(&mut P4Lru4Cache::<u64, u64>::new(8, 1));
    }
}
