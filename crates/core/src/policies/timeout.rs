//! The timeout replacement policy (BeauCoup-style; paper §1.1).
//!
//! A hash table where every entry carries its last-access timestamp. On a
//! collision the incumbent is replaced **only if its timestamp has expired**;
//! otherwise the incoming key is simply not admitted. The paper's critique:
//! the threshold needs careful tuning — too short and hot entries churn, too
//! long and dead entries squat (the comparative figures sweep the threshold
//! and take the best, as §4.2 notes the authors "meticulously adjusted" it).

use std::hash::Hash;

use super::{Access, Cache, MergeFn};
use crate::hashing::BucketHasher;

#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    last_ns: u64,
}

/// Hash table with timestamp-gated replacement.
#[derive(Clone, Debug)]
pub struct TimeoutCache<K, V> {
    buckets: Vec<Option<Entry<K, V>>>,
    hasher: BucketHasher,
    timeout_ns: u64,
    len: usize,
}

impl<K: Eq + Hash, V> TimeoutCache<K, V> {
    /// `buckets` single-entry buckets; an incumbent expires `timeout_ns`
    /// after its last access.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(buckets: usize, timeout_ns: u64, seed: u64) -> Self {
        assert!(buckets > 0, "bucket count must be positive");
        Self {
            buckets: (0..buckets).map(|_| None).collect(),
            hasher: BucketHasher::new(seed, buckets),
            timeout_ns,
            len: 0,
        }
    }

    /// The configured timeout.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }
}

impl<K: Eq + Hash + Clone, V> Cache<K, V> for TimeoutCache<K, V> {
    fn access(&mut self, key: K, value: V, now_ns: u64, merge: MergeFn<V>) -> Access<K, V> {
        let idx = self.hasher.bucket(&key);
        match &mut self.buckets[idx] {
            Some(e) if e.key == key => {
                merge(&mut e.value, value);
                e.last_ns = now_ns;
                Access::Hit
            }
            Some(e) if now_ns.saturating_sub(e.last_ns) > self.timeout_ns => {
                let old = std::mem::replace(
                    e,
                    Entry {
                        key,
                        value,
                        last_ns: now_ns,
                    },
                );
                Access::Miss {
                    evicted: Some((old.key, old.value)),
                    inserted: true,
                }
            }
            Some(_) => Access::Miss {
                evicted: None,
                inserted: false,
            },
            empty @ None => {
                *empty = Some(Entry {
                    key,
                    value,
                    last_ns: now_ns,
                });
                self.len += 1;
                Access::Miss {
                    evicted: None,
                    inserted: true,
                }
            }
        }
    }

    fn peek(&self, key: &K) -> Option<&V> {
        let idx = self.hasher.bucket(key);
        self.buckets[idx]
            .as_ref()
            .filter(|e| &e.key == key)
            .map(|e| &e.value)
    }

    fn capacity(&self) -> usize {
        self.buckets.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "Timeout"
    }

    fn drain_entries(&mut self) -> Vec<(K, V)> {
        self.len = 0;
        self.buckets
            .iter_mut()
            .filter_map(|b| b.take().map(|e| (e.key, e.value)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::merge_replace;

    fn colliding_pair(cache: &TimeoutCache<u64, u32>) -> (u64, u64) {
        let target = cache.hasher.bucket(&0u64);
        let other = (1..10_000u64)
            .find(|k| cache.hasher.bucket(k) == target)
            .expect("collision exists");
        (0, other)
    }

    #[test]
    fn unexpired_incumbent_blocks_admission() {
        let mut c = TimeoutCache::<u64, u32>::new(4, 1_000, 1);
        let (a, b) = colliding_pair(&c);
        c.access(a, 1, 0, merge_replace);
        let out = c.access(b, 2, 500, merge_replace);
        assert_eq!(
            out,
            Access::Miss {
                evicted: None,
                inserted: false
            }
        );
        assert_eq!(c.peek(&a), Some(&1));
        assert_eq!(c.peek(&b), None);
    }

    #[test]
    fn expired_incumbent_is_replaced() {
        let mut c = TimeoutCache::<u64, u32>::new(4, 1_000, 1);
        let (a, b) = colliding_pair(&c);
        c.access(a, 1, 0, merge_replace);
        let out = c.access(b, 2, 2_000, merge_replace);
        assert_eq!(out.evicted(), Some((a, 1)));
        assert_eq!(c.peek(&b), Some(&2));
    }

    #[test]
    fn hit_refreshes_the_timestamp() {
        let mut c = TimeoutCache::<u64, u32>::new(4, 1_000, 1);
        let (a, b) = colliding_pair(&c);
        c.access(a, 1, 0, merge_replace);
        c.access(a, 1, 900, merge_replace); // refresh just before expiry
                                            // At t=1500 the incumbent is only 600ns old — still protected.
        let out = c.access(b, 2, 1_500, merge_replace);
        assert!(!out.resident());
        assert_eq!(c.peek(&a), Some(&1));
    }

    #[test]
    fn zero_timeout_degenerates_to_always_replace() {
        let mut c = TimeoutCache::<u64, u32>::new(4, 0, 1);
        let (a, b) = colliding_pair(&c);
        c.access(a, 1, 0, merge_replace);
        let out = c.access(b, 2, 1, merge_replace);
        assert_eq!(out.evicted(), Some((a, 1)));
    }

    #[test]
    fn generic_policy_exercise() {
        let mut c = TimeoutCache::<u64, u64>::new(64, 50_000, 1);
        crate::policies::tests::exercise_policy(&mut c);
    }

    #[test]
    fn drain_empties() {
        let mut c = TimeoutCache::<u64, u32>::new(16, 100, 1);
        for k in 0..8u64 {
            c.access(k, 1, 0, merge_replace);
        }
        let n = c.len();
        assert_eq!(c.drain_entries().len(), n);
        assert!(c.is_empty());
    }
}
