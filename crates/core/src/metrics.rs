//! Cache metrics: miss rate and the paper's **LRU similarity** (§4.2).
//!
//! > "Given a cache with a capacity of n, for each evicted entry, if the
//! > ranking of its last access time is represented by k, its relative
//! > ranking is deduced as k/n. In an ideal LRU cache scenario, this
//! > relative ranking consistently equals 1. Therefore, we define the LRU
//! > similarity as the average relative ranking of all evicted entries."
//!
//! [`SimilarityTracker`] shadows any [`crate::policies::Cache`]: it keeps the
//! last-access sequence number of every cached key and, at each eviction,
//! ranks the victim's recency among all cached entries in O(log n) using an
//! order-statistic treap. Ranking counts from the newest entry, so evicting
//! the globally oldest entry scores `k = n` and relative rank 1.

use std::collections::HashMap;
use std::hash::Hash;

use crate::hashing::mix64;
use crate::policies::Access;

// ---------------------------------------------------------------------------
// Miss-rate bookkeeping.
// ---------------------------------------------------------------------------

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Misses where the key was admitted.
    pub admitted: u64,
    /// Misses where the policy refused admission.
    pub refused: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl MissStats {
    /// Records one access outcome.
    pub fn record<K, V>(&mut self, access: &Access<K, V>) {
        self.accesses += 1;
        match access {
            Access::Hit => self.hits += 1,
            Access::Miss { evicted, inserted } => {
                if *inserted {
                    self.admitted += 1;
                } else {
                    self.refused += 1;
                }
                if evicted.is_some() {
                    self.evictions += 1;
                }
            }
        }
    }

    /// Misses (admitted or refused).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss fraction in `[0, 1]`; 0 for an empty record.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Order-statistic treap over last-access sequence numbers.
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: u64,
    priority: u64,
    left: usize,
    right: usize,
    size: u32,
}

/// A treap keyed by `u64` with subtree sizes: O(log n) insert, remove and
/// rank queries. Priorities are a deterministic hash of the key, keeping the
/// whole metric reproducible run-to-run.
#[derive(Clone, Debug, Default)]
pub struct OrderStatTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
}

impl OrderStatTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root].size as usize
        }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    fn size(&self, n: usize) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n].size
        }
    }

    fn pull(&mut self, n: usize) {
        let s = 1 + self.size(self.nodes[n].left) + self.size(self.nodes[n].right);
        self.nodes[n].size = s;
    }

    fn alloc(&mut self, key: u64) -> usize {
        let node = Node {
            key,
            priority: mix64(key ^ 0x7EA9_0000),
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Splits `t` into (< key, >= key).
    fn split(&mut self, t: usize, key: u64) -> (usize, usize) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t].key < key {
            let (l, r) = self.split(self.nodes[t].right, key);
            self.nodes[t].right = l;
            self.pull(t);
            (t, r)
        } else {
            let (l, r) = self.split(self.nodes[t].left, key);
            self.nodes[t].left = r;
            self.pull(t);
            (l, t)
        }
    }

    fn merge(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a].priority > self.nodes[b].priority {
            let m = self.merge(self.nodes[a].right, b);
            self.nodes[a].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b].left);
            self.nodes[b].left = m;
            self.pull(b);
            b
        }
    }

    /// Inserts `key`; keys are unique (inserting a duplicate is a no-op).
    pub fn insert(&mut self, key: u64) {
        if self.contains(key) {
            return;
        }
        let n = self.alloc(key);
        let (l, r) = self.split(self.root, key);
        let lr = self.merge(l, n);
        self.root = self.merge(lr, r);
    }

    /// Removes `key` if present; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let (l, mid_r) = self.split(self.root, key);
        let (mid, r) = self.split(mid_r, key + 1);
        let found = mid != NIL;
        if found {
            self.free.push(mid);
        }
        self.root = self.merge(l, r);
        found
    }

    /// Is `key` stored?
    pub fn contains(&self, key: u64) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            let n = &self.nodes[cur];
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = n.left,
                std::cmp::Ordering::Greater => cur = n.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of stored keys strictly less than `key`.
    pub fn count_less(&self, key: u64) -> usize {
        let mut cur = self.root;
        let mut acc = 0usize;
        while cur != NIL {
            let n = &self.nodes[cur];
            if n.key < key {
                acc += 1 + self.size(n.left) as usize;
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// LRU similarity.
// ---------------------------------------------------------------------------

/// Shadow tracker computing the paper's LRU-similarity metric for any cache
/// driven through the [`crate::policies::Cache`] interface.
#[derive(Clone, Debug)]
pub struct SimilarityTracker<K> {
    last_access: HashMap<K, u64>,
    tree: OrderStatTree,
    capacity: usize,
    seq: u64,
    rel_rank_sum: f64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone> SimilarityTracker<K> {
    /// Tracker for a cache of total entry `capacity` (the `n` of `k/n`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            last_access: HashMap::new(),
            tree: OrderStatTree::new(),
            capacity,
            seq: 0,
            rel_rank_sum: 0.0,
            evictions: 0,
        }
    }

    /// Observes one access of `key` and its outcome. Must be called for
    /// every access, in order, with the outcome the cache returned.
    pub fn observe<V>(&mut self, key: &K, access: &Access<K, V>) {
        self.seq += 1;
        let seq = self.seq;
        match access {
            Access::Hit => {
                // Tolerate a hit on an untracked key (possible only under
                // racy deferred protocols): start tracking it.
                let slot = self.last_access.entry(key.clone()).or_insert(seq);
                self.tree.remove(*slot);
                *slot = seq;
                self.tree.insert(seq);
            }
            Access::Miss { evicted, inserted } => {
                if let Some((ek, _)) = evicted {
                    // Score the victim's recency rank; skip silently if the
                    // tracker never saw it (duplicate-entry races).
                    if let Some(old_seq) = self.last_access.remove(ek) {
                        // Rank from newest: the victim plus everything newer.
                        let newer_or_equal = self.tree.len() - self.tree.count_less(old_seq);
                        self.rel_rank_sum += newer_or_equal as f64 / self.capacity as f64;
                        self.evictions += 1;
                        self.tree.remove(old_seq);
                    }
                }
                if *inserted {
                    if let Some(old_seq) = self.last_access.insert(key.clone(), seq) {
                        self.tree.remove(old_seq);
                    }
                    self.tree.insert(seq);
                }
            }
        }
    }

    /// The LRU similarity so far: mean relative rank over all evictions
    /// (1.0 when no eviction happened yet, matching the ideal-LRU value).
    pub fn similarity(&self) -> f64 {
        if self.evictions == 0 {
            1.0
        } else {
            self.rel_rank_sum / self.evictions as f64
        }
    }

    /// Number of evictions scored.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries currently shadow-tracked (should match the cache's `len`).
    pub fn tracked(&self) -> usize {
        self.last_access.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{merge_replace, Cache, IdealLru, P4Lru1Cache, P4Lru3Cache};

    // ---- OrderStatTree ----

    #[test]
    fn tree_insert_remove_contains() {
        let mut t = OrderStatTree::new();
        assert!(t.is_empty());
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k);
        }
        assert_eq!(t.len(), 5);
        assert!(t.contains(7));
        assert!(!t.contains(2));
        assert!(t.remove(7));
        assert!(!t.remove(7));
        assert_eq!(t.len(), 4);
        assert!(!t.contains(7));
    }

    #[test]
    fn tree_duplicate_insert_is_noop() {
        let mut t = OrderStatTree::new();
        t.insert(4);
        t.insert(4);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tree_count_less_matches_naive() {
        let mut t = OrderStatTree::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut x = 99u64;
        for i in 0..3000 {
            x = mix64(x);
            let key = x % 500;
            if x & 1 == 0 {
                t.insert(key);
                if !reference.contains(&key) {
                    reference.push(key);
                }
            } else {
                t.remove(key);
                reference.retain(|&k| k != key);
            }
            if i % 97 == 0 {
                let probe = x % 512;
                let naive = reference.iter().filter(|&&k| k < probe).count();
                assert_eq!(t.count_less(probe), naive, "probe {probe}");
                assert_eq!(t.len(), reference.len());
            }
        }
    }

    #[test]
    fn tree_reuses_freed_nodes() {
        let mut t = OrderStatTree::new();
        for k in 0..100u64 {
            t.insert(k);
        }
        for k in 0..100u64 {
            t.remove(k);
        }
        let allocated = t.nodes.len();
        for k in 100..200u64 {
            t.insert(k);
        }
        assert_eq!(t.nodes.len(), allocated, "should reuse freed slots");
    }

    // ---- MissStats ----

    #[test]
    fn miss_stats_accumulate() {
        let mut s = MissStats::default();
        s.record::<u32, u32>(&Access::Hit);
        s.record::<u32, u32>(&Access::Miss {
            evicted: None,
            inserted: true,
        });
        s.record::<u32, u32>(&Access::Miss {
            evicted: Some((1, 1)),
            inserted: true,
        });
        s.record::<u32, u32>(&Access::Miss {
            evicted: None,
            inserted: false,
        });
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.refused, 1);
        assert_eq!(s.evictions, 1);
        assert!((s.miss_rate() - 0.75).abs() < 1e-12);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = MissStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    // ---- SimilarityTracker ----

    /// Drives a cache + tracker over a pseudo-random trace and returns the
    /// similarity.
    fn run_similarity<C: Cache<u64, u64>>(cache: &mut C, keys: u64, steps: u64) -> f64 {
        let mut tracker = SimilarityTracker::new(cache.capacity());
        let mut x = 42u64;
        for i in 0..steps {
            x = mix64(x);
            let key = x % keys;
            let out = cache.access(key, i, i, merge_replace);
            tracker.observe(&key, &out);
            assert_eq!(tracker.tracked(), cache.len(), "shadow diverged at {i}");
        }
        tracker.similarity()
    }

    #[test]
    fn ideal_lru_scores_exactly_one() {
        let mut lru = IdealLru::<u64, u64>::new(64);
        let sim = run_similarity(&mut lru, 256, 20_000);
        assert!((sim - 1.0).abs() < 1e-9, "ideal LRU similarity {sim}");
    }

    #[test]
    fn p4lru3_scores_below_ideal_but_above_hash_table() {
        let mut p3 = P4Lru3Cache::<u64, u64>::new(32, 5); // 96 entries
        let sim3 = run_similarity(&mut p3, 400, 30_000);
        let mut p1 = P4Lru1Cache::<u64, u64>::new(96, 5); // 96 entries
        let sim1 = run_similarity(&mut p1, 400, 30_000);
        assert!(sim3 < 1.0);
        assert!(
            sim3 > sim1,
            "P4LRU3 similarity {sim3} should beat P4LRU1 {sim1} (Figure 15b ordering)"
        );
    }

    #[test]
    fn no_evictions_means_similarity_one() {
        let mut lru = IdealLru::<u64, u64>::new(1000);
        let sim = run_similarity(&mut lru, 100, 1000); // never fills
        assert_eq!(sim, 1.0);
    }

    #[test]
    fn refused_admissions_do_not_corrupt_shadow() {
        use crate::policies::TimeoutCache;
        let mut c = TimeoutCache::<u64, u64>::new(16, 10, 3);
        let mut tracker = SimilarityTracker::new(c.capacity());
        let mut x = 17u64;
        for i in 0..5000u64 {
            x = mix64(x);
            let key = x % 64;
            let out = c.access(key, i, i, merge_replace);
            tracker.observe(&key, &out);
            assert_eq!(tracker.tracked(), c.len());
        }
    }
}
