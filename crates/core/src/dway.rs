//! d-way choice placement: an extension beyond the paper.
//!
//! The parallel connection hashes each key to exactly **one** unit, so an
//! unlucky unit can collect several hot flows while neighbors sit idle. A
//! classic fix is the *power of two choices*: give each key two candidate
//! units (in two independently-hashed arrays) and place it in the less
//! loaded one.
//!
//! On a pipeline this is deployable — each packet accesses both arrays once
//! (they are distinct register blocks in distinct stage groups), doubling
//! the stage/SALU cost of the cache, which is exactly the trade-off the
//! ablation (`ablation_dway`) quantifies: collision relief vs. 2× resources
//! at *equal total memory* (each array is half-sized).
//!
//! Placement decision: prefer the candidate unit with a free slot; when
//! both are full, a deterministic per-key coin picks, so repeated misses of
//! one key always target the same array (no duplicate copies can arise —
//! a key lives in at most one array because lookups check both).

use std::hash::Hash;

use crate::array::LruArray;
use crate::dfa::{CacheState, Dfa3};
use crate::perm::Perm;
use crate::unit::Outcome;

/// Two-choice P4LRU3 cache — the `ablation_dway` configuration.
pub type DChoice3<K, V> = DChoiceLru<K, V, 3, Dfa3>;

/// Two hash-independent P4LRU arrays with two-choice placement.
#[derive(Clone, Debug)]
pub struct DChoiceLru<K, V, const N: usize, S: CacheState<N> = Perm<N>> {
    arrays: [LruArray<K, V, N, S>; 2],
    coin_seed: u64,
}

impl<K: Eq + Hash + Clone, V, const N: usize, S: CacheState<N>> DChoiceLru<K, V, N, S> {
    /// Two arrays of `units_per_array` units each (total capacity
    /// `2 × units_per_array × N`).
    ///
    /// # Panics
    /// Panics if `units_per_array == 0`.
    pub fn with_seed(units_per_array: usize, seed: u64) -> Self {
        Self {
            arrays: [
                LruArray::with_seed(units_per_array, crate::hashing::hash_u64(seed, 0)),
                LruArray::with_seed(units_per_array, crate::hashing::hash_u64(seed, 1)),
            ],
            coin_seed: crate::hashing::hash_u64(seed, 2),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.arrays.iter().map(LruArray::capacity).sum()
    }

    /// Cached entries (statistics only).
    pub fn len(&self) -> usize {
        self.arrays.iter().map(LruArray::len).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.arrays.iter().all(LruArray::is_empty)
    }

    /// Read-only lookup across both candidates.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.arrays[0].get(key).or_else(|| self.arrays[1].get(key))
    }

    /// Which array a fresh insert of `key` targets: the candidate unit with
    /// a free slot, else a deterministic per-key coin.
    fn placement(&self, key: &K) -> usize {
        let free0 = self.arrays[0].unit_for(key).len() < N;
        let free1 = self.arrays[1].unit_for(key).len() < N;
        match (free0, free1) {
            (true, false) => 0,
            (false, true) => 1,
            _ => (crate::hashing::hash_of(self.coin_seed, key) & 1) as usize,
        }
    }

    /// Inserts or refreshes `key` (Algorithm 1 within the chosen unit).
    pub fn update(&mut self, key: K, value: V, merge: impl FnOnce(&mut V, V)) -> Outcome<K, V> {
        // A key lives in at most one array; updates go where it resides.
        if self.arrays[0].get(&key).is_some() {
            return self.arrays[0].update(key, value, merge);
        }
        if self.arrays[1].get(&key).is_some() {
            return self.arrays[1].update(key, value, merge);
        }
        let target = self.placement(&key);
        self.arrays[target].update(key, value, merge)
    }

    /// Checks both arrays' invariants plus the no-duplicates property.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.arrays[0]
            .check_invariants()
            .map_err(|e| format!("array 0: {e}"))?;
        self.arrays[1]
            .check_invariants()
            .map_err(|e| format!("array 1: {e}"))?;
        for (_, k, _) in self.arrays[0].entries() {
            if self.arrays[1].get(k).is_some() {
                return Err("key resident in both arrays".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::P4Lru3Array;
    use crate::hashing::mix64;

    fn overwrite(s: &mut u32, v: u32) {
        *s = v;
    }

    #[test]
    fn update_get_roundtrip_no_duplicates() {
        let mut c = DChoice3::<u64, u32>::with_seed(8, 1);
        for k in 0..40u64 {
            c.update(k, k as u32, overwrite);
        }
        c.check_invariants().unwrap();
        let mut resident = 0;
        for k in 0..40u64 {
            if let Some(&v) = c.get(&k) {
                assert_eq!(v, k as u32);
                resident += 1;
            }
        }
        assert!(resident > 0);
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn repeated_key_is_a_hit_wherever_it_lives() {
        let mut c = DChoice3::<u64, u32>::with_seed(4, 2);
        c.update(9, 1, overwrite);
        let out = c.update(9, 2, overwrite);
        assert!(out.is_hit());
        assert_eq!(c.get(&9), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn two_choices_beat_one_at_equal_memory() {
        // Skewed collisions: many keys, small table. The two-choice cache
        // (2 × 32 units) must miss less than one array of 64 units.
        let drive_two = |seed: u64| {
            let mut c = DChoice3::<u64, u64>::with_seed(32, seed);
            let mut misses = 0u64;
            let mut x = seed ^ 0xAA;
            for _ in 0..60_000 {
                x = mix64(x);
                let key = x % 300;
                if !c.update(key, x, |s, v| *s = v).is_hit() {
                    misses += 1;
                }
            }
            c.check_invariants().unwrap();
            misses
        };
        let drive_one = |seed: u64| {
            let mut c = P4Lru3Array::<u64, u64>::with_seed(64, seed);
            let mut misses = 0u64;
            let mut x = seed ^ 0xAA;
            for _ in 0..60_000 {
                x = mix64(x);
                let key = x % 300;
                if !c.update(key, x, |s, v| *s = v).is_hit() {
                    misses += 1;
                }
            }
            misses
        };
        // Average over several seeds to avoid hash luck.
        let two: u64 = (0..5).map(drive_two).sum();
        let one: u64 = (0..5).map(drive_one).sum();
        assert!(two < one, "two-choice {two} misses !< one-choice {one}");
    }

    #[test]
    fn placement_prefers_free_slots() {
        let mut c = DChoice3::<u64, u32>::with_seed(1, 3); // 1 unit per array
                                                           // Fill array picked by the coin for key 1's candidates… simply
                                                           // insert 6 distinct keys: with both units initially empty the free
                                                           // slots steer placement, so all 6 fit (3 + 3) with no eviction.
        let mut evictions = 0;
        for k in 0..6u64 {
            if c.update(k, 0, overwrite).into_evicted().is_some() {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 0, "free-slot steering should pack all 6 entries");
        assert_eq!(c.len(), 6);
    }
}
