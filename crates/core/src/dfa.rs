//! Cache-state DFAs (paper §2.2–§2.3).
//!
//! A P4LRUₙ unit needs, per packet, one state transition of a DFA whose
//! states are the n! permutations of Sₙ and whose inputs are the `n`
//! possible outcomes of the key-array pass (hit at position `i`, with a miss
//! behaving exactly like a hit at the last position). Three realizations are
//! provided, all proven isomorphic by exhaustive tests:
//!
//! * [`Perm<N>`] itself — the reference semantics (`S ← R⁻¹ × S`).
//! * [`TableDfa`] — the naive realization the paper *rules out* for the data
//!   plane: `n` lookup tables of `n!` entries each. Kept as an executable
//!   illustration of why the arithmetic encodings matter.
//! * [`Dfa2`], [`Dfa3`], [`Dfa4`] — the encoded states whose transitions are
//!   the paper's stateful-ALU arithmetic (`^1`; `^1`/`^3`; `−2`/`+4`) plus
//!   the V₄ ⋊ S₃ factored registers for the paper's suggested P4LRU4.
//!
//! The common interface is [`CacheState`]; [`crate::unit::LruUnit`] is
//! generic over it, so every unit flavor shares one update algorithm.

use std::sync::OnceLock;

use crate::group::{compose_s4, conjugate_v4, factor_s4, S3Code, V4Code};
use crate::perm::{factorial, Perm};

/// A cache state: tracks the key-position → value-position permutation of
/// one P4LRU unit.
///
/// `advance(pos)` applies the transition for a key-array pass that resolved
/// at 0-based position `pos` (`pos = N-1` doubles as the miss transition —
/// the full rotation). `front_slot()` is `S(1)` in paper notation: the value
/// slot owned by the most recently used key.
pub trait CacheState<const N: usize>: Clone + Default {
    /// Applies the transition for a hit at key position `pos` (or a miss,
    /// which is `pos = N-1`).
    fn advance(&mut self, pos: usize);

    /// The permutation this state denotes.
    fn as_perm(&self) -> Perm<N>;

    /// `S(1)`: the value slot of the most recently used key. Implementations
    /// may override with a table lookup.
    #[inline]
    fn front_slot(&self) -> usize {
        self.as_perm().front_slot()
    }

    /// The value slot of the key at position `pos`, `S(pos+1)` in paper
    /// notation. Needed by read-only probes and by tail replacement in the
    /// series connection.
    #[inline]
    fn slot_of(&self, pos: usize) -> usize {
        self.as_perm().apply(pos)
    }
}

impl<const N: usize> CacheState<N> for Perm<N> {
    #[inline]
    fn advance(&mut self, pos: usize) {
        Perm::advance(self, pos);
    }

    #[inline]
    fn as_perm(&self) -> Perm<N> {
        *self
    }

    #[inline]
    fn front_slot(&self) -> usize {
        Perm::front_slot(self)
    }

    #[inline]
    fn slot_of(&self, pos: usize) -> usize {
        self.apply(pos)
    }
}

// ---------------------------------------------------------------------------
// TableDfa: the n tables of size n! the paper says cannot fit.
// ---------------------------------------------------------------------------

/// The naive DFA realization: one transition table per input symbol, each
/// with `N!` entries, states numbered by Lehmer rank.
///
/// The paper's point (§2.3) is that *this* is what a general P4LRUₙ needs and
/// that the data plane's stateful ALUs cannot host tables of that size — a
/// register action may only consult a tiny (≈16-entry) table. `TableDfa`
/// exists to make that cost concrete (see the `table_sizes` test and the
/// resource model in `p4lru-pipeline`), and as an oracle for the encodings.
#[derive(Clone, Debug)]
pub struct TableDfa<const N: usize> {
    state: usize,
    tables: &'static Vec<Vec<usize>>,
}

fn table_dfa_tables<const N: usize>(
    cell: &'static OnceLock<Vec<Vec<usize>>>,
) -> &'static Vec<Vec<usize>> {
    cell.get_or_init(|| {
        let nfact = factorial(N);
        let mut tables = vec![vec![0usize; nfact]; N];
        for rank in 0..nfact {
            let perm = Perm::<N>::from_lehmer_rank(rank);
            for (pos, table) in tables.iter_mut().enumerate() {
                let mut next = perm;
                next.advance(pos);
                table[rank] = next.lehmer_rank();
            }
        }
        tables
    })
}

macro_rules! table_dfa_storage {
    ($($n:literal => $name:ident),* $(,)?) => {
        $(static $name: OnceLock<Vec<Vec<usize>>> = OnceLock::new();)*

        /// Storage lookup: per-`N` lazily built transition tables.
        fn tables_for<const N: usize>() -> &'static Vec<Vec<usize>> {
            match N {
                $($n => table_dfa_tables::<N>(&$name),)*
                _ => panic!("TableDfa supports N in 2..=6, got {N}"),
            }
        }
    };
}

table_dfa_storage! {
    2 => TABLES_2,
    3 => TABLES_3,
    4 => TABLES_4,
    5 => TABLES_5,
    6 => TABLES_6,
}

impl<const N: usize> Default for TableDfa<N> {
    fn default() -> Self {
        Self {
            state: Perm::<N>::identity().lehmer_rank(),
            tables: tables_for::<N>(),
        }
    }
}

impl<const N: usize> TableDfa<N> {
    /// Total table entries this realization needs: `N × N!` — the figure the
    /// paper cites as infeasible for stateful ALUs.
    pub fn total_table_entries() -> usize {
        N * factorial(N)
    }
}

impl<const N: usize> CacheState<N> for TableDfa<N> {
    #[inline]
    fn advance(&mut self, pos: usize) {
        self.state = self.tables[pos][self.state];
    }

    #[inline]
    fn as_perm(&self) -> Perm<N> {
        Perm::from_lehmer_rank(self.state)
    }
}

// ---------------------------------------------------------------------------
// Dfa2: one bit, one stateful ALU.
// ---------------------------------------------------------------------------

/// Encoded P4LRU2 state (§2.3.1): one bit.
///
/// * hit at position 0 → state unchanged;
/// * hit at position 1 or miss → `S ← S ^ 1`.
///
/// Code 0 is the identity mapping, code 1 the swap. One stateful ALU (two
/// arithmetic branches) covers both transitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Dfa2 {
    code: u8,
}

impl Dfa2 {
    /// Raw register value (0 or 1).
    pub fn code(self) -> u8 {
        self.code
    }

    /// Builds from a raw register value. `None` unless `code <= 1`.
    pub fn from_code(code: u8) -> Option<Self> {
        (code <= 1).then_some(Self { code })
    }
}

impl CacheState<2> for Dfa2 {
    #[inline]
    fn advance(&mut self, pos: usize) {
        debug_assert!(pos < 2);
        if pos == 1 {
            self.code ^= 1;
        }
    }

    #[inline]
    fn as_perm(&self) -> Perm<2> {
        if self.code == 0 {
            Perm::identity()
        } else {
            Perm::from_map_unchecked([1, 0])
        }
    }

    #[inline]
    fn front_slot(&self) -> usize {
        self.code as usize
    }

    #[inline]
    fn slot_of(&self, pos: usize) -> usize {
        debug_assert!(pos < 2);
        pos ^ self.code as usize
    }
}

// ---------------------------------------------------------------------------
// Dfa3: Table 1 codes, three stateful ALUs.
// ---------------------------------------------------------------------------

/// `FRONT3[code]` = value slot of the MRU key for each Table 1 code.
const FRONT3: [u8; 6] = [1, 0, 2, 2, 0, 1];

/// Encoded P4LRU3 state (§2.3.2): the six states of S₃ as the integers of
/// Table 1, with even permutations on even codes.
///
/// The three key-array outcomes become five numeric operations:
///
/// * **Operation 1** (hit at key\[1\]): `S` unchanged.
/// * **Operation 2** (hit at key\[2\]): `S ← S ^ 1` if `S ≥ 4`, else `S ^ 3`.
/// * **Operation 3** (hit at key\[3\] or miss): `S ← S − 2` if `S ≥ 2`,
///   else `S + 4`.
///
/// Each operation fits one stateful ALU (a predicate plus two arithmetic
/// branches), so P4LRU3 costs three of the four SALUs a Tofino stage offers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dfa3 {
    code: u8,
}

impl Default for Dfa3 {
    fn default() -> Self {
        Self {
            code: S3Code::IDENTITY.code(),
        }
    }
}

impl Dfa3 {
    /// Raw register value (0..=5).
    pub fn code(self) -> u8 {
        self.code
    }

    /// Builds from a raw register value. `None` unless `code <= 5`.
    pub fn from_code(code: u8) -> Option<Self> {
        (code <= 5).then_some(Self { code })
    }
}

impl CacheState<3> for Dfa3 {
    #[inline]
    fn advance(&mut self, pos: usize) {
        match pos {
            0 => {}
            1 => {
                // Operation 2: type-2 permutation of Figure 4.
                self.code ^= if self.code >= 4 { 1 } else { 3 };
            }
            2 => {
                // Operation 3: type-3 permutation of Figure 5.
                if self.code >= 2 {
                    self.code -= 2;
                } else {
                    self.code += 4;
                }
            }
            _ => debug_assert!(false, "position {pos} out of range for P4LRU3"),
        }
    }

    #[inline]
    fn as_perm(&self) -> Perm<3> {
        S3Code::from_code(self.code)
            .expect("Dfa3 code stays in 0..=5")
            .decode()
    }

    #[inline]
    fn front_slot(&self) -> usize {
        FRONT3[self.code as usize] as usize
    }
}

// ---------------------------------------------------------------------------
// Dfa4: the V4 ⋊ S3 factorization the paper sketches in §2.3.3.
// ---------------------------------------------------------------------------

/// Per-generator transition tables for [`Dfa4`], derived from group theory.
struct Dfa4Tables {
    /// `v_next[gen][v]`: V₄ register update; independent of the S₃ register.
    v_next: [[u8; 4]; 4],
    /// `s_next[gen][s]`: S₃ register update (left-multiplication by the
    /// generator's S₃ factor, in Table 1 codes).
    s_next: [[u8; 6]; 4],
    /// `front[v][s]`: value slot of the MRU key for the decoded state.
    front: [[u8; 6]; 4],
}

fn dfa4_tables() -> &'static Dfa4Tables {
    static TABLES: OnceLock<Dfa4Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut v_next = [[0u8; 4]; 4];
        let mut s_next = [[0u8; 6]; 4];
        let mut front = [[0u8; 6]; 4];
        for gen in 0..4 {
            // The generator is R⁻¹ for a hit at position `gen`.
            let g = Perm::<4>::rotation(gen).inverse();
            let (v_g, sigma_g) = factor_s4(g);
            // New state (paper convention): S' = g × S with S = v × σ.
            // Factoring: v' = v_g × (σ_g⁻¹ v σ_g), σ' = σ_g × σ.
            for v in 0..4u8 {
                let conj = conjugate_v4(sigma_g.inverse(), V4Code::from_code(v).unwrap());
                v_next[gen][v as usize] = v_g.mul(conj).code();
            }
            for s in 0..6u8 {
                let sigma = S3Code::from_code(s).unwrap().decode();
                s_next[gen][s as usize] = S3Code::encode(sigma_g.compose(&sigma)).code();
            }
        }
        for v in 0..4u8 {
            for s in 0..6u8 {
                let perm = compose_s4(
                    V4Code::from_code(v).unwrap(),
                    S3Code::from_code(s).unwrap().decode(),
                );
                front[v as usize][s as usize] = perm.front_slot() as u8;
            }
        }
        Dfa4Tables {
            v_next,
            s_next,
            front,
        }
    })
}

/// Encoded P4LRU4 state: the paper's §2.3.3 construction made concrete.
///
/// S₄ ≅ V₄ ⋊ S₃ with V₄ = C₂ × C₂ normal, so a state splits into two
/// registers updated *independently* per transition:
///
/// * a 2-bit register `v` (V₄, where group product is XOR), and
/// * a 3-bit register `s` (S₃ in Table 1 codes).
///
/// Each of the four generators left-multiplies the state; the factorization
/// turns that into `v ← v_g ⊕ π_g(v)` (a fixed relabeling of four values —
/// "more nuanced logic" than a plain XOR, as the paper anticipates) and an
/// S₃ left-multiplication on `s` of exactly the Table 1 arithmetic family.
/// See `dfa4_tables` for the derivation and the `salu` module for which of
/// these updates fit a single stateful ALU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dfa4 {
    v: u8,
    s: u8,
}

impl Default for Dfa4 {
    fn default() -> Self {
        Self {
            v: V4Code::IDENTITY.code(),
            s: S3Code::IDENTITY.code(),
        }
    }
}

impl Dfa4 {
    /// The V₄ register (2 bits).
    pub fn v_code(self) -> u8 {
        self.v
    }

    /// The S₃ register (Table 1 code, 0..=5).
    pub fn s_code(self) -> u8 {
        self.s
    }

    /// Builds from raw register values. `None` if out of range.
    pub fn from_codes(v: u8, s: u8) -> Option<Self> {
        (v <= 3 && s <= 5).then_some(Self { v, s })
    }
}

impl CacheState<4> for Dfa4 {
    #[inline]
    fn advance(&mut self, pos: usize) {
        debug_assert!(pos < 4);
        let t = dfa4_tables();
        self.v = t.v_next[pos][self.v as usize];
        self.s = t.s_next[pos][self.s as usize];
    }

    #[inline]
    fn as_perm(&self) -> Perm<4> {
        compose_s4(
            V4Code::from_code(self.v).expect("v register stays in 0..=3"),
            S3Code::from_code(self.s)
                .expect("s register stays in 0..=5")
                .decode(),
        )
    }

    #[inline]
    fn front_slot(&self) -> usize {
        dfa4_tables().front[self.v as usize][self.s as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `dfa` and the reference permutation in lockstep over every
    /// (state, input) pair reachable from the identity and checks they agree.
    fn assert_isomorphic<const N: usize, D: CacheState<N> + std::fmt::Debug>(steps: usize) {
        let mut dfa = D::default();
        let mut oracle = Perm::<N>::identity();
        assert_eq!(dfa.as_perm(), oracle);
        // Deterministic pseudo-random walk covering all inputs.
        let mut x = 0x12345678u64;
        for step in 0..steps {
            x = crate::hashing::mix64(x);
            let pos = (x % N as u64) as usize;
            dfa.advance(pos);
            oracle.advance(pos);
            assert_eq!(dfa.as_perm(), oracle, "diverged at step {step} input {pos}");
            assert_eq!(dfa.front_slot(), oracle.front_slot());
            for p in 0..N {
                assert_eq!(dfa.slot_of(p), oracle.apply(p));
            }
        }
    }

    #[test]
    fn dfa2_isomorphic_to_reference() {
        assert_isomorphic::<2, Dfa2>(500);
    }

    #[test]
    fn dfa3_isomorphic_to_reference() {
        assert_isomorphic::<3, Dfa3>(2000);
    }

    #[test]
    fn dfa4_isomorphic_to_reference() {
        assert_isomorphic::<4, Dfa4>(5000);
    }

    #[test]
    fn table_dfa_isomorphic_to_reference() {
        assert_isomorphic::<2, TableDfa<2>>(200);
        assert_isomorphic::<3, TableDfa<3>>(500);
        assert_isomorphic::<4, TableDfa<4>>(1000);
        assert_isomorphic::<5, TableDfa<5>>(2000);
    }

    #[test]
    fn dfa3_exhaustive_transition_check() {
        // All 6 states × 3 inputs — the 18 transitions of §1.2.
        for code in 0..6u8 {
            for pos in 0..3 {
                let mut enc = Dfa3::from_code(code).unwrap();
                let mut perm = enc.as_perm();
                enc.advance(pos);
                perm.advance(pos);
                assert_eq!(enc.as_perm(), perm, "code {code} input {pos}");
            }
        }
    }

    #[test]
    fn dfa3_figure4_type2_edges() {
        // Figure 4: 4↔5 via ^1, 1↔2 via ^3, 0↔3 via ^3.
        let step = |c: u8| {
            let mut d = Dfa3::from_code(c).unwrap();
            d.advance(1);
            d.code()
        };
        assert_eq!(step(4), 5);
        assert_eq!(step(5), 4);
        assert_eq!(step(1), 2);
        assert_eq!(step(2), 1);
        assert_eq!(step(0), 3);
        assert_eq!(step(3), 0);
    }

    #[test]
    fn dfa3_figure5_type3_edges() {
        // Figure 5: 4→2→0→4 and 5→3→1→5.
        let step = |c: u8| {
            let mut d = Dfa3::from_code(c).unwrap();
            d.advance(2);
            d.code()
        };
        assert_eq!(step(4), 2);
        assert_eq!(step(2), 0);
        assert_eq!(step(0), 4);
        assert_eq!(step(5), 3);
        assert_eq!(step(3), 1);
        assert_eq!(step(1), 5);
    }

    #[test]
    fn dfa4_exhaustive_over_all_states_and_inputs() {
        for v in 0..4u8 {
            for s in 0..6u8 {
                for pos in 0..4 {
                    let mut enc = Dfa4::from_codes(v, s).unwrap();
                    let mut perm = enc.as_perm();
                    enc.advance(pos);
                    perm.advance(pos);
                    assert_eq!(enc.as_perm(), perm, "v={v} s={s} input {pos}");
                }
            }
        }
    }

    #[test]
    fn dfa4_state_decode_is_bijective() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..4u8 {
            for s in 0..6u8 {
                let perm = Dfa4::from_codes(v, s).unwrap().as_perm();
                assert!(seen.insert(perm), "duplicate decode for v={v} s={s}");
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn dfa4_v_register_update_independent_of_s() {
        // The factorization's payoff: v' depends only on (gen, v).
        let t = dfa4_tables();
        for gen in 0..4 {
            for v in 0..4u8 {
                for s in 0..6u8 {
                    let mut d = Dfa4::from_codes(v, s).unwrap();
                    d.advance(gen);
                    assert_eq!(d.v_code(), t.v_next[gen][v as usize]);
                }
            }
        }
    }

    #[test]
    fn table_dfa_entry_counts_match_paper_claim() {
        assert_eq!(TableDfa::<3>::total_table_entries(), 18);
        assert_eq!(TableDfa::<4>::total_table_entries(), 96);
        assert_eq!(TableDfa::<5>::total_table_entries(), 600);
    }

    #[test]
    fn front3_table_matches_decoded_permutations() {
        for code in 0..6u8 {
            let d = Dfa3::from_code(code).unwrap();
            assert_eq!(d.front_slot(), d.as_perm().front_slot());
        }
    }

    #[test]
    fn dfa2_front_slot_shortcut() {
        for code in 0..2u8 {
            let d = Dfa2::from_code(code).unwrap();
            assert_eq!(d.front_slot(), d.as_perm().front_slot());
            for p in 0..2 {
                assert_eq!(d.slot_of(p), d.as_perm().apply(p));
            }
        }
    }

    #[test]
    fn miss_equals_hit_at_last_position() {
        // The unit update treats a miss as pos = N-1; sanity-check that this
        // is the full rotation the paper specifies for evictions.
        let mut s = Perm::<3>::identity();
        s.advance(2);
        assert_eq!(*s.as_map(), [2, 0, 1]);
    }
}
