//! # p4lru-core
//!
//! A faithful software implementation of **P4LRU** — the pipeline-ordered LRU
//! cache of *"P4LRU: Towards An LRU Cache Entirely in Programmable Data
//! Plane"* (SIGCOMM 2023) — together with every replacement policy the paper
//! compares against and the metrics its evaluation uses.
//!
//! ## Why a special LRU?
//!
//! A match-action pipeline (e.g. the Tofino ASIC) partitions state across
//! stages. A packet visits the stages in order and may read-modify-write each
//! register block **at most once**. Classical LRU implementations
//! (timestamp-based and queue-based alike) need a *second* pass over the same
//! data — to overwrite the oldest bucket, or to copy a matched value to the
//! queue head — and therefore cannot be expressed in a pipeline.
//!
//! P4LRU removes the second pass by splitting keys from values:
//!
//! * the **key array** is kept in true LRU order, one slot per stage;
//! * the **value array** never moves;
//! * a permutation, the **cache state** [`Perm`], maps key positions to
//!   value positions and is advanced by a small DFA whose transitions are
//!   plain integer arithmetic (implementable in a stateful ALU).
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`classical`] | §2.1's timestamp/queue LRU with instrumentation measuring the two-pass problem |
//! | [`dway`] | two-choice placement extension (ablation) |
//! | [`perm`] | permutation algebra (paper's composition convention, rotations, ranking) |
//! | [`group`] | finite-group machinery: cyclic groups, direct products, the S₃ and S₄≅V₄⋊S₃ encodings |
//! | [`dfa`] | cache-state DFAs: reference permutation DFA and the encoded n=2/3/4 arithmetic DFAs |
//! | [`salu`] | stateful-ALU instruction model + a searcher proving the encoded DFAs fit the ALU budget |
//! | [`unit`](mod@unit) | [`unit::LruUnit`] — a single P4LRU cache of n entries (Algorithm 1) |
//! | [`array`](mod@array) | parallel connection: hash-indexed arrays of units |
//! | [`series`] | series connection with deferred (reply-driven) updates |
//! | [`policies`] | unified [`policies::Cache`] trait + baselines: ideal LRU, P4LRU1, timeout, Elastic, Coco |
//! | [`metrics`] | miss-rate bookkeeping and the paper's *LRU similarity* metric |
//! | [`hashing`] | seedable 64-bit mixing hash used by all hash-indexed structures |
//!
//! ## Quick start
//!
//! ```
//! use p4lru_core::array::P4Lru3Array;
//!
//! // 1024 units of 3 entries each = 3072 cached flows.
//! let mut cache = P4Lru3Array::<u64, u32>::with_seed(1024, 7);
//! for (flow, bytes) in [(10, 1500u32), (11, 64), (10, 1500)] {
//!     // write-cache semantics: accumulate bytes per flow
//!     cache.update(flow, bytes, |acc, add| *acc += add);
//! }
//! assert_eq!(cache.get(&10), Some(&3000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod classical;
pub mod dfa;
pub mod dway;
pub mod group;
pub mod hashing;
pub mod metrics;
pub mod perm;
pub mod policies;
pub mod salu;
pub mod series;
pub mod unit;

pub use array::LruArray;
pub use perm::Perm;
pub use unit::LruUnit;
