//! A single P4LRU cache unit (paper §2.2, Algorithm 1).
//!
//! [`LruUnit`] holds `N` entries: a key array kept in true LRU order (the
//! front is most recently used), a value array that **never moves**, and a
//! cache state mapping key positions to value positions. One update touches
//! the key slots in order, the state register once, and exactly one value
//! slot — the access pattern a match-action pipeline permits.
//!
//! The unit is generic over the state realization ([`CacheState`]); the
//! encoded aliases [`P4Lru2Unit`], [`P4Lru3Unit`] and [`P4Lru4Unit`] are the
//! deployable flavors, while `LruUnit<_, _, N, Perm<N>>` is the reference
//! semantics for any `N`.

use crate::dfa::{CacheState, Dfa2, Dfa3, Dfa4};
use crate::perm::Perm;

/// A P4LRU2 unit with the one-bit encoded state.
pub type P4Lru2Unit<K, V> = LruUnit<K, V, 2, Dfa2>;
/// A P4LRU3 unit with the Table 1 encoded state.
pub type P4Lru3Unit<K, V> = LruUnit<K, V, 3, Dfa3>;
/// A P4LRU4 unit with the V₄ ⋊ S₃ factored state.
pub type P4Lru4Unit<K, V> = LruUnit<K, V, 4, Dfa4>;

/// Result of an [`LruUnit::update`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<K, V> {
    /// The key was already cached, at (0-based) key position `pos` before the
    /// update; its value was merged and it is now the most recently used.
    Hit {
        /// Position the key occupied before being moved to the front.
        pos: usize,
    },
    /// The key was absent and an empty slot absorbed it.
    Inserted,
    /// The key was absent and the least recently used entry was evicted.
    Evicted {
        /// The evicted key.
        key: K,
        /// The evicted key's value.
        value: V,
    },
}

impl<K, V> Outcome<K, V> {
    /// Was this access a hit?
    pub fn is_hit(&self) -> bool {
        matches!(self, Outcome::Hit { .. })
    }

    /// The evicted entry, if any.
    pub fn into_evicted(self) -> Option<(K, V)> {
        match self {
            Outcome::Evicted { key, value } => Some((key, value)),
            _ => None,
        }
    }
}

/// One P4LRU cache of `N` key-value pairs.
///
/// ```
/// use p4lru_core::unit::{P4Lru3Unit, Outcome};
///
/// let mut unit = P4Lru3Unit::<&str, u32>::new();
/// unit.update("a", 1, |_, _| {});
/// unit.update("b", 2, |_, _| {});
/// unit.update("c", 3, |_, _| {});
/// // "a" is now least recently used; inserting "d" evicts it.
/// let out = unit.update("d", 4, |_, _| {});
/// assert_eq!(out, Outcome::Evicted { key: "a", value: 1 });
/// ```
#[derive(Clone, Debug)]
pub struct LruUnit<K, V, const N: usize, S: CacheState<N> = Perm<N>> {
    /// Key array in LRU order: `keys[0]` is the most recently used.
    keys: [Option<K>; N],
    /// Value array in *fixed* order; `state` maps key positions here.
    vals: [Option<V>; N],
    /// The cache-state DFA, `S_lru` in the paper.
    state: S,
}

impl<K: Eq, V, const N: usize, S: CacheState<N>> Default for LruUnit<K, V, N, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq, V, const N: usize, S: CacheState<N>> LruUnit<K, V, N, S> {
    /// An empty unit in the identity cache state.
    pub fn new() -> Self {
        assert!(N >= 1, "a unit needs at least one entry");
        Self {
            keys: std::array::from_fn(|_| None),
            vals: std::array::from_fn(|_| None),
            state: S::default(),
        }
    }

    /// Capacity `N`.
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.keys.iter().filter(|k| k.is_some()).count()
    }

    /// Is the unit empty?
    pub fn is_empty(&self) -> bool {
        self.keys.iter().all(|k| k.is_none())
    }

    /// Read-only lookup (no LRU reordering). Returns the key's 0-based
    /// position in the key array and a reference to its value.
    ///
    /// This is the *query-packet* path of the series connection (§3.2):
    /// queries may inspect every array without modifying any.
    pub fn probe(&self, key: &K) -> Option<(usize, &V)> {
        let pos = self.position_of(key)?;
        let slot = self.state.slot_of(pos);
        self.vals[slot].as_ref().map(|v| (pos, v))
    }

    /// Read-only value lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.probe(key).map(|(_, v)| v)
    }

    /// Position of `key` in the key array, if cached.
    pub fn position_of(&self, key: &K) -> Option<usize> {
        self.keys.iter().position(|k| k.as_ref() == Some(key))
    }

    /// Algorithm 1: insert or refresh `key`, making it the most recently
    /// used entry.
    ///
    /// On a hit, `merge(cached, value)` combines the incoming value into the
    /// cached one — accumulate for a write-cache (`|acc, v| *acc += v`),
    /// overwrite for a read-cache (`|slot, v| *slot = v`). On a miss the
    /// incoming value is stored as-is and the least recently used entry (if
    /// the unit was full) is returned.
    pub fn update(&mut self, key: K, value: V, merge: impl FnOnce(&mut V, V)) -> Outcome<K, V> {
        // Step 1: maintain the key array in LRU order. A miss behaves like a
        // hit at the last position (the LRU key falls off the end).
        let hit_pos = self.position_of(&key);
        let h = hit_pos.unwrap_or(N - 1);
        let evicted_key = if hit_pos.is_some() {
            None
        } else {
            self.keys[N - 1].take()
        };
        self.keys[..=h].rotate_right(1);
        self.keys[0] = Some(key);

        // Step 2: update the cache state (S ← R⁻¹ × S).
        self.state.advance(h);

        // Step 3: find and update the value through the cache state. After
        // the advance, the front slot is the value position of keys[0] —
        // the hit key's old value, or the evicted key's reusable slot.
        let slot = self.state.front_slot();
        match (hit_pos, evicted_key) {
            (Some(pos), _) => {
                let cached = self.vals[slot]
                    .as_mut()
                    .expect("invariant: a cached key's slot holds a value");
                merge(cached, value);
                Outcome::Hit { pos }
            }
            (None, Some(old_key)) => {
                let old_value = self.vals[slot]
                    .replace(value)
                    .expect("invariant: the evicted key's slot holds a value");
                Outcome::Evicted {
                    key: old_key,
                    value: old_value,
                }
            }
            (None, None) => {
                debug_assert!(
                    self.vals[slot].is_none(),
                    "empty key must map to empty slot"
                );
                self.vals[slot] = Some(value);
                Outcome::Inserted
            }
        }
    }

    /// Refreshes `key`'s recency without touching its value. Returns `false`
    /// if the key is not cached.
    ///
    /// This is the reply-packet path of the series connection when the key
    /// was found in some array: the entry is "prioritized as the most recent"
    /// in place.
    pub fn promote(&mut self, key: &K) -> bool {
        let Some(h) = self.position_of(key) else {
            return false;
        };
        self.keys[..=h].rotate_right(1);
        self.state.advance(h);
        true
    }

    /// Replaces the **least recently used** entry with `(key, value)` without
    /// promoting it — the incoming entry takes over the tail position and the
    /// cache state is unchanged. Returns the displaced entry.
    ///
    /// This is how the series connection pushes an evictee *down* a level
    /// (§3.2): "we place the evicted key … into the cache unit of the second
    /// array, designating it as the least recently used entry."
    ///
    /// If `key` is already cached elsewhere in this unit, the tail is still
    /// replaced (the data plane cannot scan-and-dedup in this path); callers
    /// that must avoid duplicates check with [`Self::probe`] first.
    pub fn insert_tail(&mut self, key: K, value: V) -> Option<(K, V)> {
        let slot = self.state.slot_of(N - 1);
        let old_key = self.keys[N - 1].replace(key);
        let old_val = self.vals[slot].replace(value);
        match (old_key, old_val) {
            (Some(k), Some(v)) => Some((k, v)),
            (None, None) => None,
            _ => unreachable!("invariant: key and value slots are paired"),
        }
    }

    /// The least recently used entry, if the tail slot is occupied.
    pub fn peek_lru(&self) -> Option<(&K, &V)> {
        let key = self.keys[N - 1].as_ref()?;
        let slot = self.state.slot_of(N - 1);
        self.vals[slot].as_ref().map(|v| (key, v))
    }

    /// The most recently used entry.
    pub fn peek_mru(&self) -> Option<(&K, &V)> {
        let key = self.keys[0].as_ref()?;
        self.vals[self.state.front_slot()]
            .as_ref()
            .map(|v| (key, v))
    }

    /// Entries in LRU order (most recent first) as `(position, key, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &K, &V)> {
        (0..N).filter_map(move |pos| {
            let key = self.keys[pos].as_ref()?;
            let val = self.vals[self.state.slot_of(pos)].as_ref()?;
            Some((pos, key, val))
        })
    }

    /// Mutable access to the value of `key` (no LRU reordering).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let pos = self.position_of(key)?;
        let slot = self.state.slot_of(pos);
        self.vals[slot].as_mut()
    }

    /// Removes `key` from the unit, returning its value if it was cached.
    ///
    /// The data plane has no "delete" primitive, but the control plane (or a
    /// software deployment such as `p4lru-server`) needs one to invalidate
    /// entries on backing-store deletes. The implementation stays within the
    /// DFA's legal transition set, using only `advance` (the hit/promote
    /// transition): promoting positions `1..=L` in increasing order reverses
    /// the first `L+1` entries, so the victim is promoted to the front, the
    /// whole array is reversed (parking the victim at the tail), the tail is
    /// cleared, and the surviving prefix is reversed back into its original
    /// recency order. The cache state remains a reachable `S_lru`, survivors
    /// keep their relative LRU order, and every invariant holds afterwards.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.position_of(key)?;
        // Victim to the front.
        self.keys[..=pos].rotate_right(1);
        self.state.advance(pos);
        // Reverse the array: the victim ends up last, survivors reversed.
        for i in 1..N {
            self.keys[..=i].rotate_right(1);
            self.state.advance(i);
        }
        let slot = self.state.slot_of(N - 1);
        self.keys[N - 1] = None;
        let value = self.vals[slot]
            .take()
            .expect("invariant: a cached key's slot holds a value");
        // Un-reverse the survivors to restore their recency order.
        for i in 1..N - 1 {
            self.keys[..=i].rotate_right(1);
            self.state.advance(i);
        }
        Some(value)
    }

    /// Removes and returns every cached entry, resetting the unit to the
    /// identity state.
    pub fn drain(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for pos in 0..N {
            if let Some(k) = self.keys[pos].take() {
                let slot = self.state.slot_of(pos);
                let v = self.vals[slot]
                    .take()
                    .expect("invariant: a cached key's slot holds a value");
                out.push((k, v));
            }
        }
        self.state = S::default();
        out
    }

    /// The current cache state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The cache state as a permutation (for inspection and tests).
    pub fn state_perm(&self) -> Perm<N> {
        self.state.as_perm()
    }

    /// Verifies the unit's structural invariants. Used by property tests;
    /// returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. The state decodes to a permutation (by construction of as_perm).
        let perm = self.state.as_perm();
        // 2. Occupied keys map to occupied value slots and vice versa.
        for pos in 0..N {
            let slot = perm.apply(pos);
            match (&self.keys[pos], &self.vals[slot]) {
                (Some(_), Some(_)) | (None, None) => {}
                (Some(_), None) => {
                    return Err(format!("key at {pos} maps to empty value slot {slot}"));
                }
                (None, Some(_)) => {
                    return Err(format!("empty key at {pos} maps to occupied slot {slot}"));
                }
            }
        }
        // 3. No duplicate keys.
        for i in 0..N {
            for j in (i + 1)..N {
                if self.keys[i].is_some() && self.keys[i] == self.keys[j] {
                    return Err(format!("duplicate key at positions {i} and {j}"));
                }
            }
        }
        // Note: occupancy need not be a front-prefix — `insert_tail` (the
        // series connection's downstream path) legitimately fills the tail
        // of a unit whose front is still empty, exactly as real hardware
        // (which has no notion of "empty" slots) would.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type RefUnit<K, V, const N: usize> = LruUnit<K, V, N, Perm<N>>;

    fn overwrite(slot: &mut u32, v: u32) {
        *slot = v;
    }

    #[test]
    fn empty_unit_misses_everything() {
        let unit = P4Lru3Unit::<u64, u32>::new();
        assert!(unit.is_empty());
        assert_eq!(unit.len(), 0);
        assert_eq!(unit.get(&1), None);
        assert_eq!(unit.peek_lru(), None);
        assert_eq!(unit.peek_mru(), None);
    }

    #[test]
    fn fills_from_front_without_evicting() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        assert_eq!(unit.update(1, 10, overwrite), Outcome::Inserted);
        assert_eq!(unit.update(2, 20, overwrite), Outcome::Inserted);
        assert_eq!(unit.update(3, 30, overwrite), Outcome::Inserted);
        assert_eq!(unit.len(), 3);
        assert_eq!(unit.get(&1), Some(&10));
        assert_eq!(unit.get(&2), Some(&20));
        assert_eq!(unit.get(&3), Some(&30));
        unit.check_invariants().unwrap();
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        for k in 1..=3 {
            unit.update(k, (k * 10) as u32, overwrite);
        }
        // LRU order: 3 (MRU), 2, 1 (LRU).
        assert_eq!(unit.peek_lru().map(|(k, v)| (*k, *v)), Some((1, 10)));
        let out = unit.update(4, 40, overwrite);
        assert_eq!(out, Outcome::Evicted { key: 1, value: 10 });
        assert_eq!(unit.get(&1), None);
        assert_eq!(unit.get(&4), Some(&40));
        unit.check_invariants().unwrap();
    }

    #[test]
    fn hit_refreshes_recency_and_merges() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        for k in 1..=3 {
            unit.update(k, 1, overwrite);
        }
        // Touch 1 (currently LRU) with accumulate semantics.
        let out = unit.update(1, 5, |acc, v| *acc += v);
        assert_eq!(out, Outcome::Hit { pos: 2 });
        assert_eq!(unit.get(&1), Some(&6));
        // Now 2 is LRU; a new key evicts 2.
        let out = unit.update(9, 90, overwrite);
        assert_eq!(out, Outcome::Evicted { key: 2, value: 1 });
        unit.check_invariants().unwrap();
    }

    #[test]
    fn remove_from_every_position() {
        for victim in 1..=3u64 {
            let mut unit = P4Lru3Unit::<u64, u32>::new();
            for k in 1..=3 {
                unit.update(k, (k * 10) as u32, overwrite);
            }
            assert_eq!(unit.remove(&victim), Some((victim * 10) as u32));
            assert_eq!(unit.get(&victim), None);
            assert_eq!(unit.len(), 2);
            unit.check_invariants().unwrap();
            for k in 1..=3 {
                if k != victim {
                    assert_eq!(unit.get(&k), Some(&((k * 10) as u32)));
                }
            }
            // The freed slot must be reusable without eviction.
            assert_eq!(unit.update(99, 7, overwrite), Outcome::Inserted);
            unit.check_invariants().unwrap();
        }
    }

    #[test]
    fn remove_missing_key_is_noop() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        assert_eq!(unit.remove(&5), None);
        unit.update(1, 10, overwrite);
        assert_eq!(unit.remove(&5), None);
        assert_eq!(unit.get(&1), Some(&10));
        unit.check_invariants().unwrap();
    }

    #[test]
    fn remove_preserves_lru_order_of_survivors() {
        let mut unit = RefUnit::<u64, u32, 4>::new();
        for k in 1..=4 {
            unit.update(k, k as u32, overwrite);
        }
        // LRU order: 4 (MRU), 3, 2, 1 (LRU). Remove 3 from the middle.
        assert_eq!(unit.remove(&3), Some(3));
        unit.check_invariants().unwrap();
        // Survivor order must still be 4, 2, 1: filling the hole and then
        // inserting one more key must evict 1 (the original LRU).
        assert_eq!(unit.update(5, 5, overwrite), Outcome::Inserted);
        assert_eq!(
            unit.update(6, 6, overwrite),
            Outcome::Evicted { key: 1, value: 1 }
        );
        unit.check_invariants().unwrap();
    }

    #[test]
    fn values_never_move_only_the_mapping_does() {
        // Drive the paper's Figure 3 example with the reference state.
        let mut unit = RefUnit::<char, char, 5>::new();
        for (k, v) in [('A', 'a'), ('B', 'b'), ('C', 'c'), ('D', 'd'), ('E', 'e')] {
            unit.update(k, v, |_, _| {});
        }
        // Insertion order A..E means LRU order E,D,C,B,A — the paper's
        // figure instead starts from state (K_A..K_E | identity); rebuild
        // exactly that situation by touching in reverse.
        for k in ['E', 'D', 'C', 'B', 'A'] {
            unit.update(k, k.to_ascii_lowercase(), |slot, v| *slot = v);
        }
        // Now keys in LRU order: A B C D E.
        let keys: Vec<char> = unit.entries().map(|(_, k, _)| *k).collect();
        assert_eq!(keys, vec!['A', 'B', 'C', 'D', 'E']);
        // Hit D (position 4 → paper Example 1).
        unit.update('D', 'δ', |slot, v| *slot = v);
        let keys: Vec<char> = unit.entries().map(|(_, k, _)| *k).collect();
        assert_eq!(keys, vec!['D', 'A', 'B', 'C', 'E']);
        assert_eq!(unit.get(&'D'), Some(&'δ'));
        // Miss F (paper Example 2) evicts E.
        let out = unit.update('F', 'f', |_, _| {});
        assert!(matches!(out, Outcome::Evicted { key: 'E', .. }));
        let keys: Vec<char> = unit.entries().map(|(_, k, _)| *k).collect();
        assert_eq!(keys, vec!['F', 'D', 'A', 'B', 'C']);
        unit.check_invariants().unwrap();
    }

    #[test]
    fn probe_does_not_reorder() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        for k in 1..=3 {
            unit.update(k, k as u32, overwrite);
        }
        let before: Vec<u64> = unit.entries().map(|(_, k, _)| *k).collect();
        assert_eq!(unit.probe(&1).map(|(pos, v)| (pos, *v)), Some((2, 1)));
        let after: Vec<u64> = unit.entries().map(|(_, k, _)| *k).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn promote_reorders_without_value_change() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        for k in 1..=3 {
            unit.update(k, k as u32 * 10, overwrite);
        }
        assert!(unit.promote(&1));
        assert_eq!(unit.peek_mru().map(|(k, v)| (*k, *v)), Some((1, 10)));
        assert!(!unit.promote(&99));
        unit.check_invariants().unwrap();
    }

    #[test]
    fn insert_tail_replaces_lru_and_keeps_state() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        for k in 1..=3 {
            unit.update(k, k as u32, overwrite);
        }
        let state_before = unit.state_perm();
        let displaced = unit.insert_tail(7, 70);
        assert_eq!(displaced, Some((1, 1)));
        assert_eq!(unit.state_perm(), state_before);
        assert_eq!(unit.peek_lru().map(|(k, v)| (*k, *v)), Some((7, 70)));
        // 7 is LRU: the next miss evicts it.
        let out = unit.update(8, 80, overwrite);
        assert_eq!(out, Outcome::Evicted { key: 7, value: 70 });
        unit.check_invariants().unwrap();
    }

    #[test]
    fn insert_tail_into_empty_unit() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        assert_eq!(unit.insert_tail(5, 50), None);
        assert_eq!(unit.peek_lru().map(|(k, v)| (*k, *v)), Some((5, 50)));
        assert_eq!(unit.get(&5), Some(&50));
        unit.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut unit = P4Lru2Unit::<u64, u32>::new();
        unit.update(1, 10, overwrite);
        *unit.get_mut(&1).unwrap() += 5;
        assert_eq!(unit.get(&1), Some(&15));
        assert_eq!(unit.get_mut(&2), None);
    }

    #[test]
    fn encoded_units_agree_with_reference_unit() {
        fn drive<S: CacheState<3> + std::fmt::Debug>(seed: u64) {
            let mut enc = LruUnit::<u64, u64, 3, S>::new();
            let mut reference = RefUnit::<u64, u64, 3>::new();
            let mut x = seed;
            for _ in 0..5000 {
                x = crate::hashing::mix64(x);
                let key = x % 8; // small key space forces frequent hits
                let val = x >> 32;
                let a = enc.update(key, val, |acc, v| *acc ^= v);
                let b = reference.update(key, val, |acc, v| *acc ^= v);
                assert_eq!(a, b);
                assert_eq!(enc.state_perm(), reference.state_perm());
                enc.check_invariants().unwrap();
            }
        }
        drive::<Dfa3>(1);
        drive::<crate::dfa::TableDfa<3>>(2);
    }

    #[test]
    fn p4lru2_and_p4lru4_basic_behaviour() {
        let mut u2 = P4Lru2Unit::<u64, u32>::new();
        u2.update(1, 1, overwrite);
        u2.update(2, 2, overwrite);
        assert_eq!(
            u2.update(3, 3, overwrite),
            Outcome::Evicted { key: 1, value: 1 }
        );

        let mut u4 = P4Lru4Unit::<u64, u32>::new();
        for k in 1..=4 {
            u4.update(k, k as u32, overwrite);
        }
        assert_eq!(
            u4.update(5, 5, overwrite),
            Outcome::Evicted { key: 1, value: 1 }
        );
        u4.check_invariants().unwrap();
    }

    #[test]
    fn repeated_updates_of_same_key_stay_hits() {
        let mut unit = P4Lru3Unit::<u64, u32>::new();
        unit.update(42, 1, overwrite);
        for i in 0..10 {
            let out = unit.update(42, i, |acc, v| *acc = v);
            assert_eq!(out, Outcome::Hit { pos: 0 });
        }
        assert_eq!(unit.get(&42), Some(&9));
        assert_eq!(unit.len(), 1);
    }

    #[test]
    fn outcome_helpers() {
        let hit: Outcome<u32, u32> = Outcome::Hit { pos: 1 };
        assert!(hit.is_hit());
        assert_eq!(hit.into_evicted(), None);
        let ev: Outcome<u32, u32> = Outcome::Evicted { key: 1, value: 2 };
        assert!(!ev.is_hit());
        assert_eq!(ev.into_evicted(), Some((1, 2)));
    }
}
