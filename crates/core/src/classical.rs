//! The two classical LRU implementations of §2.1 — and the measurement of
//! why they cannot be pipelined.
//!
//! The paper's Figure 2 argument: both the timestamp-based and the
//! queue-based LRU must, in the worst case, touch the *same data block
//! twice* in one operation (find the oldest bucket, then overwrite it;
//! find the matched entry, then write its value back at the queue head).
//! A match-action pipeline forbids exactly that.
//!
//! These implementations instrument every block access, so tests — and the
//! `second_access` analysis below — can *measure* the violation instead of
//! asserting it rhetorically: [`AccessLog::max_accesses_per_block`] is 2
//! for both classical structures and 1 for the P4LRU unit.

/// Records, for one cache operation, how many times each data block was
/// touched. A "block" is what one pipeline stage could host: one bucket of
/// the array, one queue slot, one register cell.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    counts: Vec<u32>,
}

impl AccessLog {
    /// A log over `blocks` blocks.
    pub fn new(blocks: usize) -> Self {
        Self {
            counts: vec![0; blocks],
        }
    }

    /// Resets for the next operation.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Notes one access to `block`.
    pub fn touch(&mut self, block: usize) {
        self.counts[block] += 1;
    }

    /// The largest per-block access count of the last operation — must be
    /// ≤ 1 for a pipeline-implementable operation.
    pub fn max_accesses_per_block(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// §2.1's timestamp-based LRU: an array of ⟨key, value, last-access⟩
/// buckets; eviction scans for the oldest timestamp, then overwrites it —
/// the second pass.
#[derive(Clone, Debug)]
pub struct TimestampLru<K, V> {
    buckets: Vec<Option<(K, V, u64)>>,
    clock: u64,
    /// Per-operation access instrumentation.
    pub log: AccessLog,
}

impl<K: Eq, V> TimestampLru<K, V> {
    /// `n` buckets.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        Self {
            buckets: (0..n).map(|_| None).collect(),
            clock: 0,
            log: AccessLog::new(n),
        }
    }

    /// One access: returns `true` on hit. Instrumented per block.
    pub fn access(&mut self, key: K, value: V) -> bool {
        self.log.reset();
        self.clock += 1;
        // First pass: look for the key (and remember an empty bucket and
        // the oldest bucket as we go).
        let mut empty = None;
        let mut oldest: Option<(usize, u64)> = None;
        for (i, b) in self.buckets.iter_mut().enumerate() {
            self.log.touch(i);
            match b {
                Some((k, v, t)) if *k == key => {
                    *v = value;
                    *t = self.clock;
                    return true;
                }
                Some((_, _, t)) => {
                    if oldest.is_none_or(|(_, ot)| *t < ot) {
                        oldest = Some((i, *t));
                    }
                }
                None => {
                    if empty.is_none() {
                        empty = Some(i);
                    }
                }
            }
        }
        // Miss: fill an empty bucket, or SECOND ACCESS to the oldest one.
        let target = empty.unwrap_or_else(|| oldest.expect("full cache has an oldest").0);
        self.log.touch(target);
        self.buckets[target] = Some((key, value, self.clock));
        false
    }
}

/// §2.1's queue-based LRU: entries ordered by recency; a hit must move the
/// matched entry's value back to the head — the second access to the head
/// slot (slot 0), which a pipeline has already passed.
#[derive(Clone, Debug)]
pub struct QueueLru<K, V> {
    /// Slot 0 is the head (MRU).
    slots: Vec<Option<(K, V)>>,
    /// Per-operation access instrumentation.
    pub log: AccessLog,
}

impl<K: Eq + Clone, V> QueueLru<K, V> {
    /// A queue of capacity `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one slot");
        Self {
            slots: (0..n).map(|_| None).collect(),
            log: AccessLog::new(n),
        }
    }

    /// One access: returns `true` on hit. Instrumented per slot.
    pub fn access(&mut self, key: K, value: V) -> bool {
        self.log.reset();
        // Walk the queue front-to-back, shifting entries down (each slot is
        // read and overwritten by its predecessor — one access per slot).
        let orig = key.clone();
        let mut carry = Some((key, value));
        for i in 0..self.slots.len() {
            self.log.touch(i);
            let displaced = std::mem::replace(&mut self.slots[i], carry.take());
            if let Some((dk, _)) = &displaced {
                if *dk == orig && i > 0 {
                    // The matched entry's old value was just displaced here;
                    // the classical formulation must carry it back and
                    // update the value at the head — a SECOND ACCESS to
                    // slot 0, which the pipeline has already passed.
                    self.log.touch(0);
                    return true;
                }
                if *dk == orig {
                    // Matched at the head itself: single access suffices.
                    return true;
                }
            }
            carry = displaced;
        }
        // A full-queue miss drops the carried (evicted) entry.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa3;
    use crate::unit::LruUnit;

    #[test]
    fn timestamp_lru_behaves_as_lru() {
        let mut c = TimestampLru::new(3);
        assert!(!c.access(1, 'a'));
        assert!(!c.access(2, 'b'));
        assert!(!c.access(3, 'c'));
        assert!(c.access(1, 'a')); // refresh 1
        assert!(!c.access(4, 'd')); // evicts 2 (oldest)
        assert!(!c.access(2, 'b')); // 2 is gone
        assert!(c.access(1, 'a'));
    }

    #[test]
    fn timestamp_lru_needs_a_second_block_access_on_eviction() {
        let mut c = TimestampLru::new(3);
        for k in 1..=3 {
            c.access(k, ());
        }
        // Hits touch every block once.
        c.access(1, ());
        assert_eq!(c.log.max_accesses_per_block(), 1);
        // A full-cache miss touches the victim twice — unpipelineable.
        c.access(9, ());
        assert_eq!(c.log.max_accesses_per_block(), 2);
    }

    #[test]
    fn queue_lru_behaves_as_lru() {
        let mut c = QueueLru::new(3);
        assert!(!c.access(1, 'a'));
        assert!(!c.access(2, 'b'));
        assert!(!c.access(3, 'c'));
        assert!(c.access(1, 'a'));
        assert!(!c.access(4, 'd'));
        assert!(!c.access(2, 'b'));
    }

    #[test]
    fn queue_lru_needs_a_second_head_access_on_deep_hits() {
        let mut c = QueueLru::new(3);
        for k in 1..=3 {
            c.access(k, ());
        }
        // Hit at the head: single pass.
        c.access(3, ());
        assert_eq!(c.log.max_accesses_per_block(), 1);
        // Hit deeper in the queue: the head is touched a second time.
        c.access(1, ());
        assert_eq!(c.log.max_accesses_per_block(), 2);
    }

    #[test]
    fn p4lru_unit_touches_every_block_at_most_once() {
        // The paper's whole point, measured: instrument a P4LRU3 update
        // with the same block model (3 key slots, 1 state, 3 value slots)
        // and observe single-access behavior for hits, misses and
        // evictions alike.
        let mut unit = LruUnit::<u32, u32, 3, Dfa3>::new();
        let mut log = AccessLog::new(7);
        let drive = |unit: &mut LruUnit<u32, u32, 3, Dfa3>, log: &mut AccessLog, k: u32| {
            log.reset();
            // Key pass: one access per key slot (the bubble).
            for i in 0..3 {
                log.touch(i);
            }
            // State register: one access.
            log.touch(3);
            // Exactly one value slot.
            let before = unit.state_perm();
            let out = unit.update(k, k, |s, v| *s = v);
            let slot = unit.state_perm().front_slot();
            log.touch(4 + slot);
            let _ = (before, out);
            assert_eq!(
                log.max_accesses_per_block(),
                1,
                "P4LRU touched a block twice"
            );
        };
        for k in [1, 2, 3, 1, 9, 2, 7, 7, 8, 42] {
            drive(&mut unit, &mut log, k);
        }
    }
}
