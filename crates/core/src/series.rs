//! Series connection of P4LRU arrays (paper §1.2 and §3.2).
//!
//! Chaining `L` arrays builds a deeper — approximate — LRU: the first array
//! holds the most recent entries; an entry evicted from level `i` is demoted
//! to the *tail* (LRU position) of its unit in level `i+1`; only an entry
//! pushed out of the last level truly leaves the cache.
//!
//! Done naively (insert every miss at the head of level 1), the same key can
//! end up recorded in several arrays, wasting capacity. The paper's insight
//! is that whenever each key visits the data plane **twice** per access — a
//! query towards the server and a reply back, as in LruIndex — the query
//! pass can be *read-only* across all levels (learning which level, if any,
//! holds the key) and the reply pass performs the single required write:
//! promote in-place on a hit, cascade-insert on a miss. No duplicates arise.
//!
//! [`SeriesLru`] implements both the deferred protocol ([`SeriesLru::query`]
//! plus [`SeriesLru::apply_reply`]) and the naive eager mode
//! ([`SeriesLru::insert_eager`]) used by the duplicate-entry ablation.

use std::hash::Hash;

use crate::array::LruArray;
use crate::dfa::{CacheState, Dfa3};
use crate::perm::Perm;
use crate::unit::Outcome;

/// A series connection of P4LRU3 arrays — LruIndex's configuration.
pub type P4Lru3Series<K, V> = SeriesLru<K, V, 3, Dfa3>;

/// Where a query found its key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryHit {
    /// Found in the array at this 0-based level. (The paper's `cached_flag`
    /// is this level plus one; flag 0 means miss.)
    Level(usize),
    /// Not cached at any level.
    Miss,
}

impl QueryHit {
    /// Encodes as the paper's `cached_flag` header field: `0` for a miss,
    /// `level + 1` for a hit.
    pub fn cached_flag(self) -> u8 {
        match self {
            QueryHit::Level(l) => (l + 1) as u8,
            QueryHit::Miss => 0,
        }
    }

    /// Decodes a `cached_flag` header field.
    pub fn from_cached_flag(flag: u8) -> Self {
        if flag == 0 {
            QueryHit::Miss
        } else {
            QueryHit::Level(flag as usize - 1)
        }
    }
}

/// What a reply actually did to the cache (precise membership accounting
/// for miss statistics and the similarity tracker).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyOutcome<K, V> {
    /// Hit path: the key was promoted in place.
    Promoted,
    /// Hit path, but the key had left the claimed level — reply dropped,
    /// cache unchanged.
    Stale,
    /// Miss path: the key entered at level 0; `expelled` left the cache.
    InsertedFresh {
        /// Entry pushed out of the last level, if any.
        expelled: Option<(K, V)>,
    },
    /// Miss path, but the key was already at level 0 (a racing earlier
    /// reply inserted it) — refreshed instead of duplicated.
    RefreshedFront,
}

impl<K, V> ReplyOutcome<K, V> {
    /// The fully expelled entry, if any.
    pub fn expelled(self) -> Option<(K, V)> {
        match self {
            ReplyOutcome::InsertedFresh { expelled } => expelled,
            _ => None,
        }
    }
}

/// Series-connected P4LRU arrays with deferred (reply-driven) updates.
///
/// ```
/// use p4lru_core::series::{P4Lru3Series, QueryHit};
///
/// let mut cache = P4Lru3Series::<u64, u64>::new(4, 16, 7);
/// // Query pass (read-only) → reply pass (the single write).
/// let (hit, _) = cache.query(&42);
/// assert_eq!(hit, QueryHit::Miss);
/// cache.apply_reply(hit, 42, 0xABCD);
/// assert_eq!(cache.get(&42), Some(&0xABCD));
/// ```
#[derive(Clone, Debug)]
pub struct SeriesLru<K, V, const N: usize, S: CacheState<N> = Perm<N>> {
    levels: Vec<LruArray<K, V, N, S>>,
}

impl<K: Eq + Hash + Clone, V, const N: usize, S: CacheState<N>> SeriesLru<K, V, N, S> {
    /// `levels` arrays of `units_per_level` units each; per-level hash
    /// functions are derived from `seed` (distinct per level, as each array
    /// pairs with its own `hᵢ(·)` in the paper).
    ///
    /// # Panics
    /// Panics if `levels == 0` or `units_per_level == 0`.
    pub fn new(levels: usize, units_per_level: usize, seed: u64) -> Self {
        assert!(levels > 0, "series needs at least one level");
        Self {
            levels: (0..levels)
                .map(|l| {
                    LruArray::with_seed(units_per_level, crate::hashing::hash_u64(seed, l as u64))
                })
                .collect(),
        }
    }

    /// Number of levels (`connection levels` in Figure 16).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total entry capacity across all levels.
    pub fn capacity(&self) -> usize {
        self.levels.iter().map(LruArray::capacity).sum()
    }

    /// Total cached entries (statistics only).
    pub fn len(&self) -> usize {
        self.levels.iter().map(LruArray::len).sum()
    }

    /// Is the series entirely empty?
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(LruArray::is_empty)
    }

    /// The query-packet pass: read-only probe of every level in order.
    /// Returns the hit level and value, without modifying anything.
    pub fn query(&self, key: &K) -> (QueryHit, Option<&V>) {
        for (level, array) in self.levels.iter().enumerate() {
            if let Some(v) = array.get(key) {
                return (QueryHit::Level(level), Some(v));
            }
        }
        (QueryHit::Miss, None)
    }

    /// Read-only value lookup across levels.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.query(key).1
    }

    /// Is the key cached at any level?
    pub fn contains(&self, key: &K) -> bool {
        matches!(self.query(key).0, QueryHit::Level(_))
    }

    /// The reply-packet pass (§3.2): applies the single deferred write.
    ///
    /// * `hit = Level(i)` — the query found the key in level `i`; promote it
    ///   to most-recently-used within its unit there (value unchanged).
    /// * `hit = Miss` — insert `(key, value)` fresh at level 0 and cascade
    ///   each eviction to the tail of the next level.
    ///
    /// The protocol guarantees `hit` comes from a [`Self::query`] on the
    /// same key, but under in-flight delay the cache may have moved on; the
    /// returned [`ReplyOutcome`] says what actually happened (a stale hit
    /// level drops the reply, exactly as the switch would).
    pub fn apply_reply(&mut self, hit: QueryHit, key: K, value: V) -> ReplyOutcome<K, V> {
        match hit {
            QueryHit::Level(level) if level < self.levels.len() => {
                if self.levels[level].promote(&key) {
                    ReplyOutcome::Promoted
                } else {
                    ReplyOutcome::Stale
                }
            }
            _ => self.insert_cascade(key, value),
        }
    }

    /// Inserts a new entry at level 0 (as most recently used) and demotes
    /// evictions down the chain (each lands at the *tail* of its unit in the
    /// next level).
    pub fn insert_cascade(&mut self, key: K, value: V) -> ReplyOutcome<K, V> {
        let outcome = self.levels[0].update(key, value, |slot, v| *slot = v);
        let (front_hit, mut carry) = match outcome {
            Outcome::Evicted { key, value } => (false, Some((key, value))),
            Outcome::Inserted => (false, None),
            Outcome::Hit { .. } => (true, None),
        };
        for array in self.levels.iter_mut().skip(1) {
            let Some((k, v)) = carry.take() else {
                break;
            };
            carry = array.insert_tail(k, v);
        }
        if front_hit {
            ReplyOutcome::RefreshedFront
        } else {
            ReplyOutcome::InsertedFresh { expelled: carry }
        }
    }

    /// Removes the key from the series, returning the level it occupied and
    /// its value. This is the control-plane invalidation path (a SET/DEL in
    /// a two-tier deployment must expel the switch copy before the write is
    /// forwarded); it has no data-plane equivalent in the paper's query/reply
    /// protocol, which only ever promotes or cascade-inserts.
    ///
    /// Every level is scanned so that even eager-mode duplicates are fully
    /// cleared; the returned entry is the shallowest (authoritative) copy.
    pub fn remove(&mut self, key: &K) -> Option<(usize, V)> {
        let mut found = None;
        for (level, array) in self.levels.iter_mut().enumerate() {
            if let Some(v) = array.remove(key) {
                found.get_or_insert((level, v));
            }
        }
        found
    }

    /// The naive eager mode (ablation): every access writes level 0
    /// immediately — hit at level 0 promotes, anything else inserts fresh,
    /// potentially duplicating keys already held at deeper levels.
    pub fn insert_eager(&mut self, key: K, value: V) -> ReplyOutcome<K, V> {
        if self.levels[0].promote(&key) {
            return ReplyOutcome::Promoted;
        }
        self.insert_cascade(key, value)
    }

    /// Number of keys recorded at more than one level — the duplicate-entry
    /// waste the deferred protocol avoids. O(len); statistics only.
    pub fn duplicate_count(&self) -> usize {
        let mut seen = std::collections::HashMap::new();
        for array in &self.levels {
            for (_, k, _) in array.entries() {
                *seen.entry(k.clone()).or_insert(0usize) += 1;
            }
        }
        seen.values().filter(|&&c| c > 1).count()
    }

    /// Access to a level's array (tests, layout tools).
    pub fn level(&self, idx: usize) -> &LruArray<K, V, N, S> {
        &self.levels[idx]
    }

    /// Checks invariants of every level.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (l, array) in self.levels.iter().enumerate() {
            array
                .check_invariants()
                .map_err(|e| format!("level {l}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(levels: usize, units: usize) -> P4Lru3Series<u64, u64> {
        SeriesLru::new(levels, units, 0xD1CE)
    }

    #[test]
    fn cached_flag_encoding_roundtrips() {
        assert_eq!(QueryHit::Miss.cached_flag(), 0);
        assert_eq!(QueryHit::Level(0).cached_flag(), 1);
        assert_eq!(QueryHit::Level(3).cached_flag(), 4);
        for flag in 0..5u8 {
            assert_eq!(QueryHit::from_cached_flag(flag).cached_flag(), flag);
        }
    }

    #[test]
    fn query_then_reply_inserts_once() {
        let mut s = series(4, 8);
        let (hit, _) = s.query(&10);
        assert_eq!(hit, QueryHit::Miss);
        s.apply_reply(hit, 10, 100);
        assert_eq!(s.get(&10), Some(&100));
        assert_eq!(s.len(), 1);
        // Reply for a hit key only promotes, never duplicates.
        let (hit, v) = s.query(&10);
        assert_eq!(hit, QueryHit::Level(0));
        assert_eq!(v, Some(&100));
        s.apply_reply(hit, 10, 100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.duplicate_count(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn eviction_cascades_to_next_level_tail() {
        let mut s = series(2, 1); // one unit per level: fully deterministic
        for k in 1..=3u64 {
            s.apply_reply(QueryHit::Miss, k, k);
        }
        // Level 0 unit full with 3,2,1 (MRU..LRU). Insert 4: 1 demotes.
        s.apply_reply(QueryHit::Miss, 4, 4);
        assert_eq!(s.level(0).get(&1), None);
        assert_eq!(s.level(1).get(&1), Some(&1));
        assert_eq!(s.get(&1), Some(&1));
        s.check_invariants().unwrap();
    }

    #[test]
    fn full_series_expels_from_last_level() {
        let mut s = series(2, 1);
        // Insert 7 distinct keys, never promoting. Downstream units admit
        // only at the tail (one live slot without promotions — exactly the
        // hardware behaviour), so each demotion displaces the previous one.
        let mut expelled = Vec::new();
        for k in 1..=7u64 {
            if let Some((ek, _)) = s.apply_reply(QueryHit::Miss, k, k).expelled() {
                expelled.push(ek);
            }
        }
        assert_eq!(expelled, vec![1, 2, 3]);
        // Level 0 holds 7,6,5; level 1's tail holds 4.
        assert_eq!(s.len(), 4);
        assert!(!s.contains(&1));
        assert!(s.contains(&4));
    }

    #[test]
    fn promote_keeps_entry_alive_across_demotions() {
        let mut s = series(2, 1);
        for k in 1..=3u64 {
            s.apply_reply(QueryHit::Miss, k, k * 10);
        }
        // Keep key 1 hot via the deferred protocol.
        let (hit, _) = s.query(&1);
        s.apply_reply(hit, 1, 10);
        // Two fresh keys now demote 2 then 3, never 1.
        s.apply_reply(QueryHit::Miss, 8, 80);
        let expelled = s.apply_reply(QueryHit::Miss, 9, 90).expelled();
        assert_eq!(s.level(0).get(&1), Some(&10));
        // 2 was demoted first, then displaced off level 1's tail by 3.
        assert_eq!(expelled.map(|(k, _)| k), Some(2));
        assert!(s.level(1).get(&3).is_some());
    }

    #[test]
    fn deferred_protocol_never_duplicates() {
        let mut s = series(4, 4);
        let mut x = 7u64;
        for _ in 0..5000 {
            x = crate::hashing::mix64(x);
            let key = x % 40;
            let (hit, _) = s.query(&key);
            s.apply_reply(hit, key, x);
            assert_eq!(s.duplicate_count(), 0);
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn eager_mode_can_duplicate() {
        // The paper's warning: "the same key might be logged in several
        // arrays, leading to suboptimal cache utilization." Drive the eager
        // mode over a small hot key set and observe duplicates appear.
        let mut s = series(3, 4);
        let mut x = 3u64;
        let mut max_dupes = 0usize;
        for _ in 0..2000 {
            x = crate::hashing::mix64(x);
            let key = x % 40;
            s.insert_eager(key, x);
            max_dupes = max_dupes.max(s.duplicate_count());
        }
        assert!(max_dupes > 0, "eager series never duplicated a key");
        s.check_invariants().unwrap();
    }

    #[test]
    fn stale_hit_level_is_tolerated() {
        let mut s = series(2, 2);
        // Reply claims a hit at level 1 for a key that is not there.
        assert_eq!(
            s.apply_reply(QueryHit::Level(1), 5, 50),
            ReplyOutcome::Stale
        );
        assert!(!s.contains(&5));
        // Out-of-range level behaves like a miss-insert.
        s.apply_reply(QueryHit::Level(9), 6, 60);
        assert!(s.contains(&6));
    }

    #[test]
    fn remove_expels_from_any_level() {
        let mut s = series(2, 1);
        for k in 1..=4u64 {
            s.apply_reply(QueryHit::Miss, k, k * 10);
        }
        // Key 1 was demoted to level 1; key 4 sits at level 0.
        assert_eq!(s.remove(&1), Some((1, 10)));
        assert_eq!(s.remove(&4), Some((0, 40)));
        assert_eq!(s.remove(&1), None, "second remove finds nothing");
        assert!(!s.contains(&1));
        assert!(!s.contains(&4));
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_clears_eager_duplicates() {
        let mut s = series(3, 4);
        let mut x = 11u64;
        for _ in 0..2000 {
            x = crate::hashing::mix64(x);
            s.insert_eager(x % 30, x);
        }
        for k in 0..30u64 {
            s.remove(&k);
            assert!(!s.contains(&k), "key {k} survived removal");
        }
        assert_eq!(s.duplicate_count(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn single_level_series_is_just_an_array() {
        let mut s = series(1, 2);
        for k in 0..20u64 {
            s.apply_reply(QueryHit::Miss, k, k);
        }
        assert!(s.len() <= s.capacity());
        assert_eq!(s.level_count(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn capacity_sums_levels() {
        let s = series(4, 16);
        assert_eq!(s.capacity(), 4 * 16 * 3);
    }
}
