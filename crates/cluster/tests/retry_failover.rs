//! ClusterClient retry/failover behavior against scripted fake nodes
//! (DESIGN.md §14).
//!
//! Three contracts:
//!
//! * a slot rides out a flapping primary: dropped connections and
//!   `READONLY` answers flip between the pair until an address serves;
//! * the retry budget is a budget: with every address dead the op fails
//!   in bounded time instead of spinning;
//! * errors retrying cannot fix (a semantic ERR from a healthy node)
//!   surface immediately, with no failover flip.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4lru_cluster::{ClusterClient, ClusterSpec, RetryPolicy};
use p4lru_server::protocol::{read_frame, write_frame, Request, Response};

#[derive(Clone, Copy)]
enum Script {
    /// Drop the first `n` connections on accept, then serve honestly.
    DeadThenHealthy(u64),
    /// Answer every mutation with a follower's READONLY error.
    Readonly,
    /// Answer every request with a semantic error a retry cannot fix.
    SemanticError,
    /// Serve honestly from the first connection.
    Healthy,
}

/// A scripted node speaking the real client protocol. Returns its address
/// and a connection counter.
fn spawn_fake(script: Script) -> (SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conns = Arc::new(AtomicU64::new(0));
    let conns_out = Arc::clone(&conns);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let conn = conns.fetch_add(1, Ordering::SeqCst);
            if matches!(script, Script::DeadThenHealthy(n) if conn < n) {
                continue; // dropped on the floor: the client sees EOF
            }
            let mut frame = Vec::new();
            let mut out = Vec::new();
            while let Ok(true) = read_frame(&mut stream, &mut frame) {
                let Ok(request) = Request::decode(&frame) else {
                    break;
                };
                let response = match (script, request) {
                    (Script::SemanticError, _) => Response::Err("value too large".to_owned()),
                    (Script::Readonly, Request::Set { .. } | Request::Del { .. }) => {
                        Response::Err("READONLY follower; primary is 127.0.0.1:9".to_owned())
                    }
                    (_, Request::Set { .. }) => Response::Ok,
                    (_, Request::Get { .. }) => Response::NotFound,
                    (_, Request::Del { .. }) => Response::NotFound,
                    (_, _) => Response::Ok,
                };
                response.encode(&mut out);
                if write_frame(&mut stream, &out).is_err() {
                    break;
                }
            }
        }
    });
    (addr, conns_out)
}

fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        max_attempts,
        seed: 7,
    }
}

#[test]
fn a_flapping_primary_and_readonly_follower_resolve_within_the_budget() {
    // The primary drops its first connection (as a freshly killed process
    // would); the follower has not promoted and answers READONLY. The
    // client must walk primary → follower → primary and land the write.
    let (primary, primary_conns) = spawn_fake(Script::DeadThenHealthy(1));
    let (follower, follower_conns) = spawn_fake(Script::Readonly);
    let spec = ClusterSpec::parse(&format!("{primary}~{follower}")).unwrap();
    let mut cluster = ClusterClient::new(&spec, fast_retry(8));

    cluster.set(42, b"hello").unwrap();
    assert_eq!(cluster.failovers(), 2, "primary → follower → primary");
    assert!(primary_conns.load(Ordering::SeqCst) >= 2);
    assert_eq!(follower_conns.load(Ordering::SeqCst), 1);

    // The surviving connection is reused: no further flips or dials.
    cluster.set(43, b"again").unwrap();
    assert_eq!(cluster.failovers(), 2);
    assert_eq!(primary_conns.load(Ordering::SeqCst), 2);
}

#[test]
fn a_dead_pair_fails_in_bounded_time() {
    // Addresses nothing listens on: bind, learn the port, release it.
    let free = |_| {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let (a, b) = (free(0), free(1));
    let spec = ClusterSpec::parse(&format!("{a}~{b}")).unwrap();
    let mut cluster = ClusterClient::new(&spec, fast_retry(5));

    let started = Instant::now();
    let err = cluster.set(7, b"x").unwrap_err();
    // 5 attempts = 4 sleeps of at most 10ms each, plus dial time.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "budget did not bound the retry loop"
    );
    assert!(
        err.kind() == std::io::ErrorKind::ConnectionRefused
            || err.kind() == std::io::ErrorKind::TimedOut,
        "surfaced the connection failure, got {err:?}"
    );
}

#[test]
fn semantic_errors_surface_immediately_without_failover() {
    let (node, conns) = spawn_fake(Script::SemanticError);
    let (standby, standby_conns) = spawn_fake(Script::Healthy);
    let spec = ClusterSpec::parse(&format!("{node}~{standby}")).unwrap();
    let mut cluster = ClusterClient::new(&spec, fast_retry(8));

    let err = cluster.set(1, b"x").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("value too large"));
    assert_eq!(cluster.failovers(), 0, "no flip on a non-retryable error");
    assert_eq!(conns.load(Ordering::SeqCst), 1);
    assert_eq!(standby_conns.load(Ordering::SeqCst), 0, "standby untouched");
}
