//! Prober-driven failover (DESIGN.md §15): killing a probed primary must
//! flip routing to the standby *before* any client-visible error.
//!
//! The setup mirrors the router: a background [`Prober`] PINGs each
//! slot's active address and flips shared [`ClusterHealth`] after three
//! consecutive failures; a [`ClusterClient`] built `with_health` defers
//! to that shared state on every attempt. When the primary dies, client
//! writes issued *during* the detection window must ride their retry
//! budget until the prober's flip lands — zero errors surface — and the
//! flip itself must be the prober's, not a private client failover.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4lru_cluster::{ClusterClient, ClusterHealth, ClusterSpec, ProbeConfig, Prober, RetryPolicy};
use p4lru_server::protocol::{read_frame, write_frame, Request, Response};

/// A killable fake node speaking the real client protocol (PING
/// included, so the prober can probe it). While `dead` is set, new
/// connections are dropped on accept and live connections are severed
/// before their next reply — the observable shape of `kill -9`.
fn spawn_node() -> (SocketAddr, Arc<AtomicBool>, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let dead = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let (dead_in, requests_in) = (Arc::clone(&dead), Arc::clone(&requests));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            if dead_in.load(Ordering::SeqCst) {
                continue; // dropped on the floor
            }
            let dead = Arc::clone(&dead_in);
            let requests = Arc::clone(&requests_in);
            std::thread::spawn(move || {
                let mut stream = stream;
                let mut frame = Vec::new();
                let mut out = Vec::new();
                while let Ok(true) = read_frame(&mut stream, &mut frame) {
                    if dead.load(Ordering::SeqCst) {
                        return; // sever mid-conversation
                    }
                    let Ok(request) = Request::decode(&frame) else {
                        return;
                    };
                    let response = match request {
                        Request::Ping => Response::Pong,
                        Request::Set { .. } => {
                            requests.fetch_add(1, Ordering::SeqCst);
                            Response::Ok
                        }
                        Request::Get { .. } | Request::Del { .. } => {
                            requests.fetch_add(1, Ordering::SeqCst);
                            Response::NotFound
                        }
                        _ => Response::Ok,
                    };
                    response.encode(&mut out);
                    if write_frame(&mut stream, &out).is_err() {
                        return;
                    }
                }
            });
        }
    });
    (addr, dead, requests)
}

#[test]
fn the_prober_flips_routing_before_any_client_visible_error() {
    let (primary, primary_dead, primary_requests) = spawn_node();
    let (standby, _standby_dead, standby_requests) = spawn_node();
    let spec = ClusterSpec::parse(&format!("{primary}~{standby}")).unwrap();

    let health = Arc::new(ClusterHealth::new(&spec));
    let prober = Prober::spawn(
        Arc::clone(&health),
        ProbeConfig {
            interval: Duration::from_millis(15),
            timeout: Duration::from_millis(100),
            fail_threshold: 3,
        },
    );

    // A retry budget that comfortably outlasts the detection window
    // (3 failed probes x 15ms): the client waits out the flip instead of
    // ever surfacing an error.
    let mut cluster = ClusterClient::with_health(
        &spec,
        RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            max_attempts: 40,
            seed: 11,
        },
        Arc::clone(&health),
    );

    // Healthy steady state: traffic lands on the primary.
    for key in 0..20u64 {
        cluster.set(key, b"before").unwrap();
    }
    assert_eq!(primary_requests.load(Ordering::SeqCst), 20);
    assert_eq!(standby_requests.load(Ordering::SeqCst), 0);
    let slot = health.slot(&primary.to_string()).unwrap();
    assert_eq!(slot.flips(), 0);
    assert!(slot.is_healthy(), "probes reach the live primary");

    // Kill the primary and keep writing through the detection window.
    // Every op must succeed: retries against the corpse are absorbed by
    // the budget until the prober flips the slot to the standby.
    primary_dead.store(true, Ordering::SeqCst);
    let killed_at = Instant::now();
    for key in 100..140u64 {
        cluster
            .set(key, b"during failover")
            .expect("no client-visible error across the kill");
    }
    let detection = killed_at.elapsed();

    // Routing moved because the *prober* moved it: the shared slot flipped
    // exactly once, and the client performed no private failovers.
    assert_eq!(slot.flips(), 1, "the prober flipped the slot");
    assert_eq!(slot.active(), standby.to_string());
    assert!(!slot.is_healthy() || slot.flips() == 1);
    assert_eq!(
        cluster.failovers(),
        0,
        "health-attached clients defer to the prober instead of flipping"
    );
    assert!(
        standby_requests.load(Ordering::SeqCst) >= 40,
        "the kill-window writes landed on the standby"
    );
    // Detection is probe-paced (3 x 15ms + RTTs), far under the ~2s a
    // client-side connect timeout would burn.
    assert!(
        detection < Duration::from_secs(5),
        "flip took {detection:?}"
    );

    // Steady state on the standby: no retries needed, no new flips.
    for key in 200..210u64 {
        cluster.set(key, b"after").unwrap();
    }
    assert_eq!(slot.flips(), 1);

    prober.stop();
}
