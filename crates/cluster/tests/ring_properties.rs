//! Property tests for the consistent-hash ring (DESIGN.md §14).
//!
//! The two promises a cluster leans on:
//!
//! * **stability** — the ring is a pure function of the member *set*; any
//!   construction history (bulk build, incremental adds, add-then-remove)
//!   yields identical routing;
//! * **bounded movement** — adding a node moves keys only *onto* it, and
//!   removing a node moves only *its* keys, in both cases no more than
//!   `2 · keys/N` of them (expected `keys/N`; the factor of two absorbs
//!   vnode placement variance).

use proptest::prelude::*;

use p4lru_cluster::{HashRing, DEFAULT_VNODES};

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:4190")).collect()
}

fn owners(ring: &HashRing, keys: u64) -> Vec<String> {
    (0..keys)
        .map(|k| ring.node_for(k).unwrap().to_owned())
        .collect()
}

proptest! {
    #[test]
    fn any_construction_history_yields_the_same_ring(n in 2usize..9, extra in 0u64..1000) {
        let members = names(n);
        let bulk = HashRing::new(&members, DEFAULT_VNODES);

        // Incremental build, back to front.
        let mut grown = HashRing::new(&members[n - 1..], DEFAULT_VNODES);
        for name in members[..n - 1].iter().rev() {
            grown.add(name);
        }

        // Overshoot and retract: add a stranger, then remove it.
        let mut detoured = HashRing::new(&members, DEFAULT_VNODES);
        let stranger = format!("192.168.9.{}:1", extra);
        detoured.add(&stranger);
        detoured.remove(&stranger);

        for key in (0..50_000u64).step_by(97) {
            let want = bulk.node_for(key);
            prop_assert_eq!(grown.node_for(key), want);
            prop_assert_eq!(detoured.node_for(key), want);
        }
    }

    #[test]
    fn adding_a_node_moves_at_most_twice_the_fair_share_and_only_onto_it(n in 1usize..8) {
        let keys = 4_000u64;
        let members = names(n);
        let mut ring = HashRing::new(&members, DEFAULT_VNODES);
        let before = owners(&ring, keys);
        let newcomer = format!("10.0.1.{n}:4190");
        ring.add(&newcomer);

        let mut moved = 0u64;
        for (key, old) in before.iter().enumerate() {
            let now = ring.node_for(key as u64).unwrap();
            if now != old {
                prop_assert_eq!(
                    now, &newcomer,
                    "key {} moved between surviving nodes", key
                );
                moved += 1;
            }
        }
        let bound = 2 * keys / (n as u64 + 1);
        prop_assert!(
            moved <= bound,
            "{moved} keys moved to the newcomer; bound is {bound} (2·keys/N)"
        );
        prop_assert!(moved > 0, "the newcomer must take over some keys");
    }

    #[test]
    fn removing_a_node_moves_exactly_its_keys_and_no_more_than_twice_fair_share(
        n in 2usize..9, victim_idx in 0usize..8,
    ) {
        let keys = 4_000u64;
        let members = names(n);
        let victim = members[victim_idx % n].clone();
        let mut ring = HashRing::new(&members, DEFAULT_VNODES);
        let before = owners(&ring, keys);
        ring.remove(&victim);

        let mut moved = 0u64;
        for (key, old) in before.iter().enumerate() {
            let now = ring.node_for(key as u64).unwrap();
            if *old == victim {
                prop_assert_ne!(now, &victim);
                moved += 1;
            } else {
                prop_assert_eq!(
                    now, old,
                    "key {} moved although its owner survived", key
                );
            }
        }
        let bound = 2 * keys / n as u64;
        prop_assert!(
            moved <= bound,
            "the victim owned {moved} keys; bound is {bound} (2·keys/N)"
        );
    }
}
