//! Bounded, jittered exponential backoff for cluster retries.
//!
//! Deterministic by construction: the delay for attempt `k` under seed `s`
//! is a pure function, so tests can assert exact schedules and two clients
//! with different seeds desynchronize instead of thundering back in
//! lockstep after a node death. Uses "equal jitter": attempt `k` draws
//! uniformly from `[raw/2, raw]` where `raw = min(cap, base · 2^k)` — the
//! schedule keeps its exponential spine (delays never collapse to zero)
//! while spreading each wave over half a period.

use std::time::Duration;

/// Retry schedule: how many attempts, and how long between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay before jitter.
    pub base: Duration,
    /// Ceiling on the un-jittered delay.
    pub cap: Duration,
    /// Total attempts (the first try counts; `3` = try, retry, retry).
    pub max_attempts: u32,
    /// Jitter seed; two clients with different seeds spread out.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(640),
            max_attempts: 8,
            seed: 0x9412_C0DE,
        }
    }
}

/// One retry sequence: hand out delays until the policy is exhausted.
#[derive(Clone, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Backoff {
    /// Starts a fresh sequence under `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        Self { policy, attempt: 0 }
    }

    /// The delay to sleep before the next retry, or `None` once the
    /// attempt budget is spent. The first call is attempt 0.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let delay = delay_for(&self.policy, self.attempt);
        self.attempt += 1;
        Some(delay)
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Rewinds to attempt 0 (after a success, so the next failure starts
    /// from the short end of the schedule again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// The pure schedule: equal jitter over an exponentially growing, capped
/// raw delay.
pub fn delay_for(policy: &RetryPolicy, attempt: u32) -> Duration {
    let base = policy.base.as_millis() as u64;
    let cap = policy.cap.as_millis() as u64;
    let raw = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
    let half = raw / 2;
    let jitter =
        mix(policy.seed ^ (attempt as u64).wrapping_mul(0xA24B_AED4_963E_E407)) % (raw - half + 1);
    Duration::from_millis(half + jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(8),
            cap: Duration::from_millis(100),
            max_attempts: 6,
            seed,
        }
    }

    #[test]
    fn delays_stay_inside_the_equal_jitter_envelope() {
        let p = policy(42);
        for attempt in 0..32 {
            let raw = 8u64.saturating_mul(1 << attempt.min(20)).min(100);
            let d = delay_for(&p, attempt).as_millis() as u64;
            assert!(
                d >= raw / 2 && d <= raw,
                "attempt {attempt}: {d}ms outside [{}, {raw}]",
                raw / 2
            );
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a: Vec<_> = (0..6).map(|k| delay_for(&policy(1), k)).collect();
        let b: Vec<_> = (0..6).map(|k| delay_for(&policy(1), k)).collect();
        let c: Vec<_> = (0..6).map(|k| delay_for(&policy(2), k)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seeds desynchronize");
    }

    #[test]
    fn budget_is_bounded_and_reset_restores_it() {
        let mut b = Backoff::new(policy(7));
        let mut delays = 0;
        while b.next_delay().is_some() {
            delays += 1;
        }
        // max_attempts counts tries; 6 tries = 5 sleeps between them.
        assert_eq!(delays, 5);
        assert_eq!(b.attempts(), 5);
        assert!(b.next_delay().is_none(), "exhausted stays exhausted");
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), Some(delay_for(&policy(7), 0)));
    }

    #[test]
    fn one_attempt_means_no_retries() {
        let mut b = Backoff::new(RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        });
        assert_eq!(b.next_delay(), None);
    }
}
