//! The consistent-hash ring: key → node routing with bounded movement.
//!
//! Each node contributes [`DEFAULT_VNODES`] points to a 64-bit ring; a key
//! routes to the first point clockwise of its hash. Point positions depend
//! only on `(node name, replica index)`, so two rings built over the same
//! node set — in any insertion order, via any add/remove history — are
//! byte-identical, and adding or removing one node moves only the keys
//! whose successor point changed: an expected `keys/N` fraction, never the
//! wholesale reshuffle a `hash % N` scheme would cause.
//!
//! Routing is a binary search over a sorted point array — no hashing of
//! node names on the lookup path, no allocation.

/// Virtual-node points each member contributes to the ring. More points
/// smooth the load split (the per-node share concentrates around `1/N`)
/// at the cost of a longer array to search; 64 keeps the worst node within
/// ~2x of the mean for the cluster sizes this crate targets.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over named nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Member names, sorted and unique.
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; ties broken by node name so
    /// the ring is a pure function of the member set.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

/// The finalizer from splitmix64: a full-avalanche bijection on `u64`, so
/// dense key spaces (0, 1, 2, …) spread uniformly around the ring.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the node name and replica index, then mixed: cheap, stable
/// across runs (no process-seeded hashing), and good enough dispersion once
/// the splitmix finalizer scrambles it.
fn point_hash(name: &str, replica: usize) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01B3);
    }
    h = (h ^ replica as u64).wrapping_mul(0x1000_0000_01B3);
    mix(h)
}

impl HashRing {
    /// Builds a ring over `names` with `vnodes` points per node. Duplicate
    /// names collapse; order is irrelevant.
    pub fn new<S: AsRef<str>>(names: &[S], vnodes: usize) -> Self {
        let mut ring = Self {
            nodes: Vec::new(),
            points: Vec::new(),
            vnodes: vnodes.max(1),
        };
        for name in names {
            let name = name.as_ref();
            if !ring.nodes.iter().any(|n| n == name) {
                ring.nodes.push(name.to_owned());
            }
        }
        ring.nodes.sort();
        ring.rebuild();
        ring
    }

    /// Adds a member (no-op if present). Only keys whose successor becomes
    /// one of the new node's points move — everything else stays put.
    pub fn add(&mut self, name: &str) {
        if self.nodes.iter().any(|n| n == name) {
            return;
        }
        self.nodes.push(name.to_owned());
        self.nodes.sort();
        self.rebuild();
    }

    /// Removes a member (no-op if absent). Only the removed node's keys
    /// move, to their next-clockwise surviving point.
    pub fn remove(&mut self, name: &str) {
        let before = self.nodes.len();
        self.nodes.retain(|n| n != name);
        if self.nodes.len() != before {
            self.rebuild();
        }
    }

    /// The node owning `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix(key);
        // First point at or after the key's hash, wrapping to the start.
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[at % self.points.len()];
        Some(&self.nodes[idx as usize])
    }

    /// Member names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (idx, name) in self.nodes.iter().enumerate() {
            for replica in 0..self.vnodes {
                self.points.push((point_hash(name, replica), idx as u32));
            }
        }
        // Tie-break by name (nodes are sorted, so index order is name
        // order): the ring must not depend on anything but the member set.
        self.points.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_total_and_deterministic() {
        let ring = HashRing::new(&["a:1", "b:1", "c:1"], DEFAULT_VNODES);
        for key in 0..1_000u64 {
            let owner = ring.node_for(key).unwrap();
            assert_eq!(ring.node_for(key).unwrap(), owner);
            assert!(ring.nodes().iter().any(|n| n == owner));
        }
    }

    #[test]
    fn construction_order_is_irrelevant() {
        let forward = HashRing::new(&["n0", "n1", "n2"], 32);
        let mut grown = HashRing::new(&["n2"], 32);
        grown.add("n0");
        grown.add("n1");
        for key in 0..500u64 {
            assert_eq!(forward.node_for(key), grown.node_for(key));
        }
    }

    #[test]
    fn every_node_owns_a_usable_share() {
        let names = ["n0", "n1", "n2", "n3"];
        let ring = HashRing::new(&names, DEFAULT_VNODES);
        let keys = 40_000u64;
        let mut owned = std::collections::HashMap::new();
        for key in 0..keys {
            *owned
                .entry(ring.node_for(key).unwrap().to_owned())
                .or_insert(0u64) += 1;
        }
        let mean = keys / names.len() as u64;
        for name in names {
            let share = owned.get(name).copied().unwrap_or(0);
            assert!(
                share > mean / 3 && share < mean * 3,
                "{name} owns {share} of {keys} (mean {mean})"
            );
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        let mut ring = HashRing::new(&["n0", "n1", "n2"], DEFAULT_VNODES);
        let before: Vec<String> = (0..2_000u64)
            .map(|k| ring.node_for(k).unwrap().to_owned())
            .collect();
        ring.remove("n1");
        for (key, old) in before.iter().enumerate() {
            let now = ring.node_for(key as u64).unwrap();
            if old != "n1" {
                assert_eq!(now, old, "key {key} moved although its owner survived");
            } else {
                assert_ne!(now, "n1");
            }
        }
    }

    #[test]
    fn empty_and_single_node_rings() {
        let mut ring = HashRing::new::<&str>(&[], DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.node_for(7), None);
        ring.add("only");
        assert_eq!(ring.node_for(7), Some("only"));
        assert_eq!(ring.len(), 1);
    }
}
