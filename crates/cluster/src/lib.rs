//! A consistent-hash cluster of p4lru serverd nodes (DESIGN.md §14).
//!
//! Three layers, all over the existing single-node server:
//!
//! * [`ring`] — the consistent-hash ring: key → slot with bounded movement
//!   on membership change (adding or removing a node moves an expected
//!   `keys/N` fraction, never a reshuffle).
//! * [`spec`] + [`client`] — static membership (`primary[~follower]` per
//!   slot) and a routing client that retries through node death: the slot
//!   name stays fixed on the ring while failover swaps which socket it
//!   answers on, so a promoted follower inherits its slot's keys exactly.
//! * [`backoff`] — bounded, jittered, deterministic retry schedules.
//! * [`health`] — router-side health probing: a background [`Prober`]
//!   PINGs every slot's active node, a consecutive-failure detector
//!   flips routing to the standby *before* the first client-visible
//!   timeout, and the shared [`ClusterHealth`] renders the router's
//!   per-slot `/metrics` families.
//!
//! Replication itself (WAL shipping, watermarks, promote-on-failure) lives
//! in `p4lru_server::repl`; this crate is the *routing* half: it decides
//! which node owns a key and which socket currently speaks for that node.
//!
//! Three binaries ride on the library: `p4lru_routerd`, a thin proxy that
//! speaks the ordinary client protocol and fans requests out across the
//! cluster (so unmodified clients get routing for free) while probing
//! slot health and exposing per-slot metrics; `cluster_loadgen`, a
//! closed-loop driver that can verify every acknowledged write across
//! kill-9 failovers; and `cluster_top`, a refreshing cluster-wide status
//! table merging every node's STATS with the router's view.

pub mod backoff;
pub mod client;
pub mod health;
pub mod ring;
pub mod spec;

pub use backoff::{Backoff, RetryPolicy};
pub use client::ClusterClient;
pub use health::{probe, router_families, ClusterHealth, ProbeConfig, Prober, SlotHealth};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use spec::{ClusterSpec, NodeSpec};
