//! `cluster_top`: one merged, refreshing status table for a whole p4lru
//! cluster.
//!
//! Polls every node named in `--cluster` (primaries *and* followers — each
//! node's client port answers STATS whatever its role) plus, optionally,
//! the router's merged view, and renders one row per node: role, durable
//! watermarks, replication lag, connections, hit rate, and the apply/fsync
//! stage p99s from the in-band tracer. The same poll drives two output
//! modes:
//!
//! * default — a terminal table, redrawn every `--interval-ms`, for a
//!   human watching a failover or a catch-up drain live;
//! * `--jsonl` — one JSON object per poll on stdout, for CI jobs that
//!   archive a cluster snapshot next to the run logs.
//!
//! A node that does not answer renders as `down` rather than killing the
//! poll: mid-failover is exactly when the table is most useful.

use std::process::ExitCode;
use std::time::Duration;

use p4lru_cluster::ClusterSpec;
use p4lru_server::metrics::StatsReport;
use p4lru_server::Client;
use serde::Serialize;

const USAGE: &str = "\
cluster_top — merged refreshing status table for a p4lru cluster

USAGE: cluster_top --cluster <spec> [OPTIONS]

OPTIONS:
  --cluster <spec>     comma-separated slots, each primary[~follower]
                       (client addresses, not replication addresses)
  --router <addr>      also poll a p4lru_routerd for its merged view
  --interval-ms <n>    poll period                  [default: 1000]
  --iterations <n>     stop after n polls (0 = run until interrupted)
                       [default: 0]
  --jsonl              emit one JSON object per poll instead of a table
  -h, --help           print this help
";

struct TopConfig {
    spec: ClusterSpec,
    router: Option<String>,
    interval: Duration,
    iterations: u64,
    jsonl: bool,
}

fn parse_args() -> Result<TopConfig, String> {
    let mut spec = None;
    let mut router = None;
    let mut interval = Duration::from_millis(1_000);
    let mut iterations = 0u64;
    let mut jsonl = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--jsonl" {
            jsonl = true;
            continue;
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--cluster" => spec = Some(ClusterSpec::parse(&value)?),
            "--router" => router = Some(value),
            "--interval-ms" => interval = Duration::from_millis(value.parse().map_err(bad)?),
            "--iterations" => iterations = value.parse().map_err(bad)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(TopConfig {
        spec: spec.ok_or("missing --cluster")?,
        router,
        interval,
        iterations,
        jsonl,
    })
}

/// One node's row: everything the table and the JSONL line show.
#[derive(Debug, Serialize)]
struct NodeRow {
    addr: String,
    /// `primary` / `follower` / `standalone` / `down`.
    role: String,
    up: bool,
    conns: u64,
    keys: u64,
    gets: u64,
    sets: u64,
    hit_rate: f64,
    /// Summed per-shard replication watermark (0 without replication).
    watermark: u64,
    /// Summed per-shard replication lag in sequence numbers.
    lag_seqs: u64,
    lag_bytes: u64,
    pull_age_ms: u64,
    apply_p99_us: f64,
    fsync_p99_us: f64,
}

impl NodeRow {
    fn down(addr: &str) -> Self {
        Self {
            addr: addr.to_owned(),
            role: "down".to_owned(),
            up: false,
            conns: 0,
            keys: 0,
            gets: 0,
            sets: 0,
            hit_rate: 0.0,
            watermark: 0,
            lag_seqs: 0,
            lag_bytes: 0,
            pull_age_ms: 0,
            apply_p99_us: 0.0,
            fsync_p99_us: 0.0,
        }
    }

    fn from_report(addr: &str, role_default: &str, report: &StatsReport) -> Self {
        let stage_p99 = |name: &str| {
            report
                .stages
                .iter()
                .find(|s| s.stage == name)
                .map(|s| s.p99_us)
                .unwrap_or(0.0)
        };
        let (role, watermark, lag_seqs, lag_bytes, pull_age_ms) = match &report.cluster {
            Some(c) => (
                c.role.clone(),
                c.watermarks.iter().sum(),
                c.lag_seqs.iter().sum(),
                c.lag_bytes,
                c.pull_age_ms,
            ),
            None => (role_default.to_owned(), 0, 0, 0, 0),
        };
        Self {
            addr: addr.to_owned(),
            role,
            up: true,
            conns: report.conns.current,
            keys: report.totals.store_len,
            gets: report.totals.gets,
            sets: report.totals.sets,
            hit_rate: report.totals.hit_rate,
            watermark,
            lag_seqs,
            lag_bytes,
            pull_age_ms,
            apply_p99_us: stage_p99("apply"),
            fsync_p99_us: stage_p99("fsync"),
        }
    }
}

/// One poll's full picture.
#[derive(Debug, Serialize)]
struct TopSample {
    tick: u64,
    nodes: Vec<NodeRow>,
    router: Option<NodeRow>,
}

/// STATS from one address; `None` when the node does not answer.
fn poll(addr: &str, role_default: &str) -> NodeRow {
    let report = Client::connect(addr).and_then(|mut c| c.stats());
    match report {
        Ok(report) => NodeRow::from_report(addr, role_default, &report),
        Err(_) => NodeRow::down(addr),
    }
}

fn sample(config: &TopConfig, tick: u64) -> TopSample {
    let mut nodes = Vec::new();
    for node in &config.spec.nodes {
        nodes.push(poll(&node.primary, "standalone"));
        if let Some(f) = &node.follower {
            nodes.push(poll(f, "standalone"));
        }
    }
    let router = config.router.as_deref().map(|addr| poll(addr, "router"));
    TopSample {
        tick,
        nodes,
        router,
    }
}

fn render_table(s: &TopSample) {
    // Clear + home: a refreshing table, not a scrolling log.
    print!("\x1b[2J\x1b[H");
    println!(
        "cluster_top — tick {} — {} node(s){}",
        s.tick,
        s.nodes.len(),
        if s.router.is_some() { " + router" } else { "" }
    );
    println!(
        "{:<22} {:<10} {:>5} {:>9} {:>10} {:>6} {:>10} {:>7} {:>8} {:>10} {:>10}",
        "NODE",
        "ROLE",
        "CONN",
        "KEYS",
        "GETS",
        "HIT%",
        "WATERMARK",
        "LAG",
        "AGE_MS",
        "APPLY_P99",
        "FSYNC_P99"
    );
    let mut rows: Vec<&NodeRow> = s.nodes.iter().collect();
    if let Some(r) = &s.router {
        rows.push(r);
    }
    for n in rows {
        if !n.up {
            println!("{:<22} {:<10} (no response)", n.addr, n.role);
            continue;
        }
        println!(
            "{:<22} {:<10} {:>5} {:>9} {:>10} {:>6.1} {:>10} {:>7} {:>8} {:>9.1}u {:>9.1}u",
            n.addr,
            n.role,
            n.conns,
            n.keys,
            n.gets,
            n.hit_rate * 100.0,
            n.watermark,
            n.lag_seqs,
            n.pull_age_ms,
            n.apply_p99_us,
            n.fsync_p99_us,
        );
    }
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut tick = 0u64;
    loop {
        tick += 1;
        let s = sample(&config, tick);
        if config.jsonl {
            match serde_json::to_string(&s) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("error: sample serialization failed: {e:?}"),
            }
        } else {
            render_table(&s);
        }
        if config.iterations != 0 && tick >= config.iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(config.interval);
    }
}
