//! Cluster load generator with acknowledged-write verification.
//!
//! Closed-loop worker threads drive a YCSB-B-style mix (95% GET / 5% SET
//! by default) through a [`ClusterClient`], each thread owning a disjoint
//! key partition so per-key history is totally ordered without locks.
//!
//! `--verify-acked` turns every thread into an auditor of the durability
//! contract (DESIGN.md §14): a SET the cluster *acknowledged* must be the
//! value every later GET observes — across retries, failovers, and a
//! kill -9 of the primary — while a SET that *errored* is indeterminate
//! (the crash may or may not have applied it), so either outcome is
//! accepted until the next acknowledged write supersedes it. Values
//! self-describe as `[key LE][nonce LE][zero padding]`, so a misrouted or
//! stale read is caught by inspection, and a final sweep re-reads every
//! acknowledged key after the load window (when a `--kill`ed primary's
//! follower has promoted).
//!
//! `--crash-ok` keeps the run alive through op errors (they are the point
//! of a failover drill); without it the first error fails the run.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use p4lru_cluster::{ClusterClient, ClusterSpec, RetryPolicy};
use p4lru_kvstore::VALUE_SIZE;

const USAGE: &str = "\
cluster_loadgen — closed-loop cluster driver with ack verification

USAGE: cluster_loadgen --cluster <spec> [OPTIONS]

OPTIONS:
  --cluster <spec>      comma-separated slots, each primary[~follower]
  --threads <n>         worker threads                [default: 2]
  --duration-ms <n>     load window per thread        [default: 2000]
  --keys <n>            key-space size                [default: 2000]
  --key-base <n>        first key (keeps clear of server pre-population)
                        [default: 1000000000]
  --read-pct <n>        GET percentage, rest SET      [default: 95]
  --seed <n>            RNG seed                      [default: 42]
  --retry-attempts <n>  op attempts incl. first try   [default: 14]
  --retry-cap-ms <n>    backoff ceiling               [default: 400]
  --verify-acked        audit the durability contract (see module docs)
  --crash-ok            op errors don't fail the run (failover drills)
  -h, --help            print this help
";

#[derive(Clone)]
struct Config {
    spec: ClusterSpec,
    threads: usize,
    duration: Duration,
    keys: u64,
    key_base: u64,
    read_pct: u64,
    seed: u64,
    retry: RetryPolicy,
    verify_acked: bool,
    crash_ok: bool,
}

fn parse_args() -> Result<Config, String> {
    let mut spec = None;
    let mut config = Config {
        spec: ClusterSpec { nodes: Vec::new() },
        threads: 2,
        duration: Duration::from_millis(2000),
        keys: 2000,
        key_base: 1_000_000_000,
        read_pct: 95,
        seed: 42,
        retry: RetryPolicy {
            cap: Duration::from_millis(400),
            max_attempts: 14,
            ..RetryPolicy::default()
        },
        verify_acked: false,
        crash_ok: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--verify-acked" => {
                config.verify_acked = true;
                continue;
            }
            "--crash-ok" => {
                config.crash_ok = true;
                continue;
            }
            _ => {}
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--cluster" => spec = Some(ClusterSpec::parse(&value)?),
            "--threads" => config.threads = value.parse().map_err(bad)?,
            "--duration-ms" => {
                config.duration = Duration::from_millis(value.parse().map_err(bad)?);
            }
            "--keys" => config.keys = value.parse().map_err(bad)?,
            "--key-base" => config.key_base = value.parse().map_err(bad)?,
            "--read-pct" => config.read_pct = value.parse().map_err(bad)?,
            "--seed" => config.seed = value.parse().map_err(bad)?,
            "--retry-attempts" => config.retry.max_attempts = value.parse().map_err(bad)?,
            "--retry-cap-ms" => {
                config.retry.cap = Duration::from_millis(value.parse().map_err(bad)?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    config.spec = spec.ok_or("missing --cluster")?;
    if config.threads == 0 || config.keys == 0 || config.read_pct > 100 {
        return Err("need threads >= 1, keys >= 1, read-pct <= 100".to_owned());
    }
    Ok(config)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// `[key LE][nonce LE][zeros]` — a value that names its own key and write.
fn value_for(key: u64, nonce: u64) -> [u8; VALUE_SIZE] {
    let mut v = [0u8; VALUE_SIZE];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&nonce.to_le_bytes());
    v
}

fn nonce_of(value: &[u8]) -> Option<(u64, u64)> {
    if value.len() != VALUE_SIZE {
        return None;
    }
    let key = u64::from_le_bytes(value[..8].try_into().unwrap());
    let nonce = u64::from_le_bytes(value[8..16].try_into().unwrap());
    Some((key, nonce))
}

#[derive(Default)]
struct WorkerOutcome {
    gets: u64,
    sets: u64,
    errors: u64,
    violations: u64,
}

/// Per-key audit state. `acked` is the contract: the nonce of the last
/// SET the cluster acknowledged. `limbo` holds nonces of later SETs that
/// errored — each may or may not have landed, so a read may legally
/// observe any of them *or* the acked value, until an ack supersedes all.
#[derive(Default)]
struct Audit {
    acked: HashMap<u64, u64>,
    limbo: HashMap<u64, Vec<u64>>,
}

impl Audit {
    fn on_acked_set(&mut self, key: u64, nonce: u64) {
        self.acked.insert(key, nonce);
        self.limbo.remove(&key);
    }

    fn on_failed_set(&mut self, key: u64, nonce: u64) {
        self.limbo.entry(key).or_default().push(nonce);
    }

    /// Checks one observation against the contract; returns a complaint
    /// if it is inconsistent.
    fn check(&self, key: u64, observed: Option<&[u8]>) -> Option<String> {
        let acked = self.acked.get(&key).copied();
        let in_limbo = |n: u64| self.limbo.get(&key).is_some_and(|l| l.contains(&n));
        match observed {
            // Absent is only legal when nothing was ever acknowledged.
            None => acked.map(|nonce| format!("key {key}: acked nonce {nonce} lost (NOT_FOUND)")),
            Some(bytes) => {
                let Some((vkey, nonce)) = nonce_of(bytes) else {
                    return Some(format!(
                        "key {key}: malformed value ({} bytes)",
                        bytes.len()
                    ));
                };
                if vkey != key {
                    return Some(format!("key {key}: value self-describes as key {vkey}"));
                }
                if acked == Some(nonce) || in_limbo(nonce) {
                    return None;
                }
                Some(format!(
                    "key {key}: observed nonce {nonce}, acked {acked:?}, limbo {:?}",
                    self.limbo.get(&key)
                ))
            }
        }
    }
}

fn worker(config: &Config, thread: usize) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    let mut cluster = ClusterClient::new(
        &config.spec,
        RetryPolicy {
            seed: config.seed ^ (thread as u64) << 17,
            ..config.retry
        },
    );
    // Disjoint per-thread partition: per-key order needs no locks.
    let lo = config.key_base + config.keys * thread as u64 / config.threads as u64;
    let hi = config.key_base + config.keys * (thread as u64 + 1) / config.threads as u64;
    let mut rng = config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (thread as u64 + 1);
    let mut audit = Audit::default();
    let mut nonce = 0u64;
    let mut complaints = 0u64;
    let mut complain = |out: &mut WorkerOutcome, what: String| {
        out.violations += 1;
        complaints += 1;
        if complaints <= 5 {
            eprintln!("cluster_loadgen[t{thread}]: VIOLATION {what}");
        }
    };

    let deadline = Instant::now() + config.duration;
    while Instant::now() < deadline {
        let key = lo + xorshift(&mut rng) % (hi - lo).max(1);
        if xorshift(&mut rng) % 100 < config.read_pct {
            match cluster.get(key) {
                Ok(observed) => {
                    out.gets += 1;
                    if config.verify_acked {
                        if let Some(what) = audit.check(key, observed.as_deref()) {
                            complain(&mut out, what);
                        }
                    }
                }
                Err(e) => {
                    out.errors += 1;
                    if !config.crash_ok {
                        complain(&mut out, format!("GET {key} failed: {e}"));
                    }
                }
            }
        } else {
            nonce += 1;
            match cluster.set(key, &value_for(key, nonce)) {
                Ok(()) => {
                    out.sets += 1;
                    audit.on_acked_set(key, nonce);
                }
                Err(e) => {
                    out.errors += 1;
                    audit.on_failed_set(key, nonce);
                    if !config.crash_ok {
                        complain(&mut out, format!("SET {key} failed: {e}"));
                    }
                }
            }
        }
    }

    // The final sweep: every acknowledged write must still be readable —
    // by now a killed primary's follower has promoted and the ClusterClient
    // retries will find it.
    if config.verify_acked {
        let keys: Vec<u64> = audit.acked.keys().copied().collect();
        for key in keys {
            match cluster.get(key) {
                Ok(observed) => {
                    if let Some(what) = audit.check(key, observed.as_deref()) {
                        complain(&mut out, format!("final sweep: {what}"));
                    }
                }
                Err(e) => complain(&mut out, format!("final sweep: GET {key} failed: {e}")),
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let config = &config;
                scope.spawn(move || worker(config, t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut total = WorkerOutcome::default();
    for o in &outcomes {
        total.gets += o.gets;
        total.sets += o.sets;
        total.errors += o.errors;
        total.violations += o.violations;
    }
    let ops = total.gets + total.sets;
    // The summary line CI greps: violations must be 0.
    println!(
        "cluster_loadgen: ops={ops} gets={} sets={} errors={} violations={} \
         ops_per_sec={:.0} elapsed_ms={}",
        total.gets,
        total.sets,
        total.errors,
        total.violations,
        ops as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed.as_millis(),
    );
    if total.violations > 0 || (!config.crash_ok && total.errors > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
