//! The cluster router daemon: a thin proxy that speaks the ordinary
//! client protocol and routes each key to its consistent-hash slot.
//!
//! Unmodified clients (loadgen, `p4lru_client`, anything speaking the
//! frame protocol) connect to the router exactly as they would to a single
//! serverd and get cluster routing, failover retries, and merged STATS for
//! free. Each connection gets its own [`ClusterClient`] — its own sockets
//! to the nodes — so connections scale the same way they do against a
//! single server and one stalled peer cannot head-of-line-block another.
//!
//! STATS answers with every node's shards merged into one report (shard
//! ids offset per node, totals re-summed); SHUTDOWN stops the *router*
//! only — nodes are owned by whoever started them.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use p4lru_cluster::{ClusterClient, ClusterSpec, RetryPolicy};
use p4lru_server::metrics::StatsReport;
use p4lru_server::protocol::{FrameReader, FrameWriter, Request, Response};

const USAGE: &str = "\
p4lru_routerd — consistent-hash router for a p4lru serverd cluster

USAGE: p4lru_routerd --cluster <spec> [OPTIONS]

OPTIONS:
  --cluster <spec>      comma-separated slots, each primary[~follower]
                        (e.g. 127.0.0.1:4190~127.0.0.1:4290,127.0.0.1:4191)
  --addr <host:port>    listen address            [default: 127.0.0.1:4195]
  --retry-base-ms <n>   first-retry backoff       [default: 10]
  --retry-cap-ms <n>    backoff ceiling           [default: 640]
  --retry-attempts <n>  attempts per op (first try included) [default: 8]
  -h, --help            print this help
";

struct RouterConfig {
    addr: String,
    spec: ClusterSpec,
    retry: RetryPolicy,
}

fn parse_args() -> Result<RouterConfig, String> {
    let mut addr = "127.0.0.1:4195".to_owned();
    let mut spec = None;
    let mut retry = RetryPolicy::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--addr" => addr = value,
            "--cluster" => spec = Some(ClusterSpec::parse(&value)?),
            "--retry-base-ms" => retry.base = Duration::from_millis(value.parse().map_err(bad)?),
            "--retry-cap-ms" => retry.cap = Duration::from_millis(value.parse().map_err(bad)?),
            "--retry-attempts" => retry.max_attempts = value.parse().map_err(bad)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let spec = spec.ok_or("missing --cluster")?;
    Ok(RouterConfig { addr, spec, retry })
}

/// Merges per-node reports into one: shards concatenated with node-offset
/// ids, totals re-derived. Tier/conn/reactor/cluster sections are
/// per-node concerns and stay out of the merged view.
fn merge_stats(reports: Vec<(String, StatsReport)>) -> StatsReport {
    let mut shards = Vec::new();
    for (_, report) in reports {
        let offset = shards.len() as u64;
        for mut s in report.shards {
            s.shard += offset;
            shards.push(s);
        }
    }
    StatsReport::from_shards(shards)
}

fn serve_conn(
    stream: TcpStream,
    spec: &ClusterSpec,
    retry: RetryPolicy,
    running: &AtomicBool,
) -> io::Result<bool> {
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = FrameWriter::new(stream);
    let mut cluster = ClusterClient::new(spec, retry);
    let mut frame = Vec::new();
    let mut payload = Vec::new();
    while running.load(Ordering::SeqCst) {
        if !reader.read_frame(&mut frame)? {
            return Ok(true); // clean disconnect
        }
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                Response::Err(e.to_string()).encode(&mut payload);
                writer.write_frame(&payload)?;
                writer.flush()?;
                return Ok(true);
            }
        };
        let response = match request {
            Request::Get { key } => match cluster.get(key) {
                Ok(Some(v)) => Response::Value(v),
                Ok(None) => Response::NotFound,
                Err(e) => Response::Err(format!("GET via {}: {e}", cluster.node_for(key))),
            },
            Request::Set { key, value } => match cluster.set(key, &value) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(format!("SET via {}: {e}", cluster.node_for(key))),
            },
            Request::Del { key } => match cluster.del(key) {
                Ok(true) => Response::Ok,
                Ok(false) => Response::NotFound,
                Err(e) => Response::Err(format!("DEL via {}: {e}", cluster.node_for(key))),
            },
            Request::Stats => match cluster.stats_all() {
                Ok(reports) => {
                    let merged = merge_stats(reports);
                    match serde_json::to_string(&merged) {
                        Ok(json) => Response::StatsJson(json),
                        Err(e) => Response::Err(format!("STATS encode: {e:?}")),
                    }
                }
                Err(e) => Response::Err(format!("STATS: {e}")),
            },
            Request::Shutdown => {
                Response::Ok.encode(&mut payload);
                writer.write_frame(&payload)?;
                writer.flush()?;
                running.store(false, Ordering::SeqCst);
                return Ok(false);
            }
        };
        response.encode(&mut payload);
        writer.write_frame(&payload)?;
        // Only flush when no further request is already buffered: pipelined
        // clients get coalesced writes, closed-loop clients get no added
        // latency.
        if !reader.has_buffered_frame() {
            writer.flush()?;
        }
    }
    Ok(true)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&config.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    // Parsed by cluster tooling, like serverd's listen line.
    println!(
        "p4lru_routerd listening on {addr} routing {} slots",
        config.spec.nodes.len()
    );
    let running = Arc::new(AtomicBool::new(true));
    let spec = Arc::new(config.spec);
    let mut workers = Vec::new();
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        let spec = Arc::clone(&spec);
        let running_conn = Arc::clone(&running);
        let retry = config.retry;
        workers.push(std::thread::spawn(move || {
            match serve_conn(stream, &spec, retry, &running_conn) {
                Ok(true) | Err(_) => {}
                Ok(false) => {
                    // SHUTDOWN: poke the accept loop awake so it notices.
                    let _ = TcpStream::connect(addr);
                }
            }
        }));
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    println!("p4lru_routerd: shutdown");
    ExitCode::SUCCESS
}
