//! The cluster router daemon: a thin proxy that speaks the ordinary
//! client protocol and routes each key to its consistent-hash slot.
//!
//! Unmodified clients (loadgen, `p4lru_client`, anything speaking the
//! frame protocol) connect to the router exactly as they would to a single
//! serverd and get cluster routing, failover retries, and merged STATS for
//! free. Each connection gets its own [`ClusterClient`] — its own sockets
//! to the nodes — so connections scale the same way they do against a
//! single server and one stalled peer cannot head-of-line-block another.
//!
//! Failover is *probed*, not discovered: a background [`Prober`] PINGs
//! every slot's active node and flips routing to the standby after
//! `--probe-fails` consecutive failures — before the first client-visible
//! timeout. All per-connection clients share one [`ClusterHealth`], so
//! one flip moves every connection, and `--metrics-addr` serves the
//! per-slot request/error/flip/probe families from the same state.
//!
//! The router is also a trace hop: it forwards a client's in-band
//! [`SpanContext`] upstream (hop +1) or originates one for every
//! `--trace-every`-th untraced request, and prints a `ROUTER trace=…`
//! breakdown (queue + upstream RTT) when a request crosses
//! `--slow-op-us` — grep the trace id to join it with serverd's
//! `SERVER trace=…` stage breakdown.
//!
//! STATS answers with every node's shards merged into one report (shard
//! ids offset per node, totals re-summed); SHUTDOWN stops the *router*
//! only — nodes are owned by whoever started them.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4lru_cluster::{
    router_families, ClusterClient, ClusterHealth, ClusterSpec, ProbeConfig, Prober, RetryPolicy,
};
use p4lru_obs::{Expo, HopKind, HopTrace, MetricsHttp, SpanContext, TraceIdGen};
use p4lru_server::metrics::StatsReport;
use p4lru_server::protocol::{FrameReader, FrameWriter, Request, Response};

const USAGE: &str = "\
p4lru_routerd — consistent-hash router for a p4lru serverd cluster

USAGE: p4lru_routerd --cluster <spec> [OPTIONS]

OPTIONS:
  --cluster <spec>        comma-separated slots, each primary[~follower]
                          (e.g. 127.0.0.1:4190~127.0.0.1:4290,127.0.0.1:4191)
  --addr <host:port>      listen address            [default: 127.0.0.1:4195]
  --retry-base-ms <n>     first-retry backoff       [default: 10]
  --retry-cap-ms <n>      backoff ceiling           [default: 640]
  --retry-attempts <n>    attempts per op (first try included) [default: 8]
  --metrics-addr <a>      serve per-slot Prometheus families at
                          http://<a>/metrics
  --probe-interval-ms <n> health-probe period       [default: 100]
  --probe-timeout-ms <n>  per-probe deadline        [default: 250]
  --probe-fails <n>       consecutive failures before a slot flips
                          (0 disables probing)      [default: 3]
  --trace-every <n>       originate an in-band trace for 1 in n requests
                          (0 disables origination; forwarded client
                          spans always propagate)   [default: 64]
  --slow-op-us <n>        print a ROUTER trace breakdown past this
                          end-to-end time           [default: 10000]
  -h, --help              print this help
";

struct RouterConfig {
    addr: String,
    spec: ClusterSpec,
    retry: RetryPolicy,
    metrics_addr: Option<String>,
    probe: ProbeConfig,
    probing: bool,
    trace_every: u64,
    slow_op_us: u64,
}

fn parse_args() -> Result<RouterConfig, String> {
    let mut addr = "127.0.0.1:4195".to_owned();
    let mut spec = None;
    let mut retry = RetryPolicy::default();
    let mut metrics_addr = None;
    let mut probe = ProbeConfig::default();
    let mut probing = true;
    let mut trace_every = 64u64;
    let mut slow_op_us = 10_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--addr" => addr = value,
            "--cluster" => spec = Some(ClusterSpec::parse(&value)?),
            "--retry-base-ms" => retry.base = Duration::from_millis(value.parse().map_err(bad)?),
            "--retry-cap-ms" => retry.cap = Duration::from_millis(value.parse().map_err(bad)?),
            "--retry-attempts" => retry.max_attempts = value.parse().map_err(bad)?,
            "--metrics-addr" => metrics_addr = Some(value),
            "--probe-interval-ms" => {
                probe.interval = Duration::from_millis(value.parse().map_err(bad)?)
            }
            "--probe-timeout-ms" => {
                probe.timeout = Duration::from_millis(value.parse().map_err(bad)?)
            }
            "--probe-fails" => {
                let n: u32 = value.parse().map_err(bad)?;
                probing = n > 0;
                probe.fail_threshold = n.max(1);
            }
            "--trace-every" => trace_every = value.parse().map_err(bad)?,
            "--slow-op-us" => slow_op_us = value.parse().map_err(bad)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let spec = spec.ok_or("missing --cluster")?;
    Ok(RouterConfig {
        addr,
        spec,
        retry,
        metrics_addr,
        probe,
        probing,
        trace_every,
        slow_op_us,
    })
}

/// Merges per-node reports into one: shards concatenated with node-offset
/// ids, totals re-derived. Tier/conn/reactor/cluster sections are
/// per-node concerns and stay out of the merged view.
fn merge_stats(reports: Vec<(String, StatsReport)>) -> StatsReport {
    let mut shards = Vec::new();
    for (_, report) in reports {
        let offset = shards.len() as u64;
        for mut s in report.shards {
            s.shard += offset;
            shards.push(s);
        }
    }
    StatsReport::from_shards(shards)
}

/// Everything a connection thread shares with the rest of the router.
struct Shared {
    spec: ClusterSpec,
    retry: RetryPolicy,
    running: AtomicBool,
    health: Arc<ClusterHealth>,
    trace_ids: TraceIdGen,
    trace_every: u64,
    /// Sampling clock for span origination (1 in `trace_every`).
    traced: std::sync::atomic::AtomicU64,
    slow_ns: u64,
}

impl Shared {
    /// The span to send upstream for this request: the client's own
    /// context forwarded one hop further, or (for 1 in `trace_every`
    /// untraced requests) a freshly originated one.
    fn span_for(&self, incoming: Option<SpanContext>) -> Option<SpanContext> {
        if let Some(span) = incoming {
            return Some(span.next_hop());
        }
        if self.trace_every == 0 {
            return None;
        }
        let n = self.traced.fetch_add(1, Ordering::Relaxed);
        if self.trace_every == 1 || n.is_multiple_of(self.trace_every) {
            Some(SpanContext::originate(self.trace_ids.next_id()))
        } else {
            None
        }
    }
}

fn serve_conn(stream: TcpStream, shared: &Shared) -> io::Result<bool> {
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = FrameWriter::new(stream);
    let mut cluster =
        ClusterClient::with_health(&shared.spec, shared.retry, Arc::clone(&shared.health));
    let mut frame = Vec::new();
    let mut payload = Vec::new();
    while shared.running.load(Ordering::SeqCst) {
        if !reader.read_frame(&mut frame)? {
            return Ok(true); // clean disconnect
        }
        let received = Instant::now();
        let incoming = reader.take_span();
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                Response::Err(e.to_string()).encode(&mut payload);
                writer.write_frame(&payload)?;
                writer.flush()?;
                return Ok(true);
            }
        };
        let span = match request {
            Request::Get { .. } | Request::Set { .. } | Request::Del { .. } => {
                shared.span_for(incoming)
            }
            _ => None,
        };
        let dispatched = Instant::now();
        let response = match request {
            Request::Get { key } => match cluster.get_spanned(key, span) {
                Ok(Some(v)) => Response::Value(v),
                Ok(None) => Response::NotFound,
                Err(e) => Response::Err(format!("GET via {}: {e}", cluster.node_for(key))),
            },
            Request::Set { key, value } => match cluster.set_spanned(key, &value, span) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(format!("SET via {}: {e}", cluster.node_for(key))),
            },
            Request::Del { key } => match cluster.del_spanned(key, span) {
                Ok(true) => Response::Ok,
                Ok(false) => Response::NotFound,
                Err(e) => Response::Err(format!("DEL via {}: {e}", cluster.node_for(key))),
            },
            // A PING probes the router itself: answered from this hop,
            // never forwarded (the prober talks to the nodes directly).
            Request::Ping => Response::Pong,
            Request::Stats => match cluster.stats_all() {
                Ok(reports) => {
                    let merged = merge_stats(reports);
                    match serde_json::to_string(&merged) {
                        Ok(json) => Response::StatsJson(json),
                        Err(e) => Response::Err(format!("STATS encode: {e:?}")),
                    }
                }
                Err(e) => Response::Err(format!("STATS: {e}")),
            },
            Request::Shutdown => {
                Response::Ok.encode(&mut payload);
                writer.write_frame(&payload)?;
                writer.flush()?;
                shared.running.store(false, Ordering::SeqCst);
                return Ok(false);
            }
        };
        if let Some(ctx) = span {
            let total = received.elapsed();
            if total.as_nanos() as u64 >= shared.slow_ns {
                let mut hop = HopTrace::new(ctx, HopKind::Router);
                hop.segment("queue", (dispatched - received).as_nanos() as u64);
                hop.segment("upstream", dispatched.elapsed().as_nanos() as u64);
                println!("[p4lru_routerd] slow op: {}", hop.breakdown());
            }
        }
        response.encode(&mut payload);
        writer.write_frame(&payload)?;
        // Only flush when no further request is already buffered: pipelined
        // clients get coalesced writes, closed-loop clients get no added
        // latency.
        if !reader.has_buffered_frame() {
            writer.flush()?;
        }
    }
    Ok(true)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&config.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    // Parsed by cluster tooling, like serverd's listen line.
    println!(
        "p4lru_routerd listening on {addr} routing {} slots",
        config.spec.nodes.len()
    );
    let health = Arc::new(ClusterHealth::new(&config.spec));
    let prober = config
        .probing
        .then(|| Prober::spawn(Arc::clone(&health), config.probe));
    let metrics_http = match &config.metrics_addr {
        Some(maddr) => {
            let health = Arc::clone(&health);
            match MetricsHttp::serve(maddr, move || {
                let mut e = Expo::new();
                router_families(&mut e, &health);
                e.finish()
            }) {
                Ok(h) => {
                    println!("p4lru_routerd metrics on http://{}/metrics", h.local_addr());
                    Some(h)
                }
                Err(e) => {
                    eprintln!("error: cannot bind metrics {maddr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        spec: config.spec,
        retry: config.retry,
        running: AtomicBool::new(true),
        health,
        trace_ids: TraceIdGen::new(),
        trace_every: config.trace_every,
        traced: std::sync::atomic::AtomicU64::new(0),
        slow_ns: config.slow_op_us.saturating_mul(1_000),
    });
    let mut workers = Vec::new();
    while shared.running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        let shared_conn = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || {
            match serve_conn(stream, &shared_conn) {
                Ok(true) | Err(_) => {}
                Ok(false) => {
                    // SHUTDOWN: poke the accept loop awake so it notices.
                    let _ = TcpStream::connect(addr);
                }
            }
        }));
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    if let Some(p) = prober {
        p.stop();
    }
    drop(metrics_http);
    println!("p4lru_routerd: shutdown");
    ExitCode::SUCCESS
}
