//! Router-side health probing: a background prober PINGs every slot's
//! active node and flips routing to the standby *before* the first
//! client-visible timeout (the ROADMAP's open failover item).
//!
//! The failure detector is deliberately simple and explainable: a slot
//! flips after [`ProbeConfig::fail_threshold`] *consecutive* probe
//! failures of its active address, and only if it has a standby to flip
//! to. One successful probe resets the streak. Probes are full protocol
//! round trips (connect + PING + PONG) under a hard timeout, so "the
//! port accepts but the daemon is wedged" counts as down, and a dead
//! peer costs a bounded wait, never a blocked prober.
//!
//! [`ClusterHealth`] is the shared truth: the prober writes it, every
//! per-connection [`crate::ClusterClient`] reads it before each attempt,
//! and the router's `/metrics` endpoint renders it. When health state is
//! attached, the *health* choice of active address is authoritative —
//! connection-level clients retry against it rather than flipping
//! privately, so one detector's decision moves every connection at once.

use std::io;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use p4lru_obs::{AtomicHistogram, Expo};
use p4lru_server::client::Client;

use crate::spec::ClusterSpec;

/// Prober tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Time between probe rounds.
    pub interval: Duration,
    /// Per-probe deadline (connect + PING + PONG).
    pub timeout: Duration,
    /// Consecutive failures before a slot flips to its standby.
    pub fail_threshold: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(100),
            timeout: Duration::from_millis(250),
            fail_threshold: 3,
        }
    }
}

/// One slot's shared health state and counters.
#[derive(Debug)]
pub struct SlotHealth {
    /// The slot's name (its primary address on the ring).
    pub primary: String,
    /// The slot's standby, if it has one.
    pub follower: Option<String>,
    /// Which address is active: false = primary, true = follower.
    on_follower: AtomicBool,
    /// Whether the last probe of the active address succeeded.
    healthy: AtomicBool,
    fail_streak: AtomicU32,
    flips: AtomicU64,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    probe_rtt: AtomicHistogram,
}

impl SlotHealth {
    fn new(primary: String, follower: Option<String>) -> Self {
        Self {
            primary,
            follower,
            on_follower: AtomicBool::new(false),
            // Optimistic until the first probe says otherwise: routing
            // must work before (and without) a prober.
            healthy: AtomicBool::new(true),
            fail_streak: AtomicU32::new(0),
            flips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            probe_rtt: AtomicHistogram::new(),
        }
    }

    /// The address this slot currently routes to.
    pub fn active(&self) -> &str {
        if self.on_follower.load(Ordering::Acquire) {
            self.follower.as_deref().unwrap_or(&self.primary)
        } else {
            &self.primary
        }
    }

    /// Whether the active address answered its last probe.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Failovers performed on this slot.
    pub fn flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }

    /// Flips active between primary and standby (no-op without one).
    /// Returns the new active address when a flip happened.
    pub fn flip(&self) -> Option<&str> {
        self.follower.as_ref()?;
        self.on_follower.fetch_xor(true, Ordering::AcqRel);
        self.flips.fetch_add(1, Ordering::Relaxed);
        self.fail_streak.store(0, Ordering::Relaxed);
        Some(self.active())
    }

    /// Records one routed request (router data path).
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed routed request (after retries).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies one probe result; returns `Some(new_active)` when the
    /// failure streak crossed the threshold and the slot flipped.
    fn record_probe(&self, result: &io::Result<Duration>, threshold: u32) -> Option<&str> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(rtt) => {
                self.probe_rtt.record_ns(rtt.as_nanos() as u64);
                self.fail_streak.store(0, Ordering::Relaxed);
                self.healthy.store(true, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.probe_failures.fetch_add(1, Ordering::Relaxed);
                let streak = self.fail_streak.fetch_add(1, Ordering::Relaxed) + 1;
                self.healthy.store(false, Ordering::Relaxed);
                if streak >= threshold {
                    self.flip()
                } else {
                    None
                }
            }
        }
    }
}

/// Shared health for every slot of a cluster, keyed by slot name.
#[derive(Debug)]
pub struct ClusterHealth {
    slots: Vec<SlotHealth>,
}

impl ClusterHealth {
    /// Health state for `spec`, everything optimistic-primary.
    pub fn new(spec: &ClusterSpec) -> Self {
        let mut slots: Vec<SlotHealth> = spec
            .nodes
            .iter()
            .map(|n| SlotHealth::new(n.primary.clone(), n.follower.clone()))
            .collect();
        slots.sort_by(|a, b| a.primary.cmp(&b.primary));
        Self { slots }
    }

    /// The health entry for a slot name, if it exists.
    pub fn slot(&self, name: &str) -> Option<&SlotHealth> {
        self.slots
            .binary_search_by(|s| s.primary.as_str().cmp(name))
            .ok()
            .map(|i| &self.slots[i])
    }

    /// Every slot, sorted by name.
    pub fn slots(&self) -> &[SlotHealth] {
        &self.slots
    }

    /// Total failovers across all slots.
    pub fn total_flips(&self) -> u64 {
        self.slots.iter().map(SlotHealth::flips).sum()
    }
}

/// One probe: connect, PING, await PONG, all under `timeout`.
pub fn probe(addr: &str, timeout: Duration) -> io::Result<Duration> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable address"))?;
    let mut client = Client::connect_timeout(&sock, timeout)?;
    client.ping()
}

/// The background prober driving the failure detector.
pub struct Prober {
    running: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prober {
    /// Spawns the probe loop over `health`. Each round probes every
    /// slot's *active* address; threshold-crossing failures flip the
    /// slot and print the (greppable) flip line.
    pub fn spawn(health: Arc<ClusterHealth>, config: ProbeConfig) -> Self {
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let handle = std::thread::Builder::new()
            .name("p4lru-prober".to_owned())
            .spawn(move || {
                while flag.load(Ordering::SeqCst) {
                    for slot in health.slots() {
                        if !flag.load(Ordering::SeqCst) {
                            return;
                        }
                        let active = slot.active().to_owned();
                        let result = probe(&active, config.timeout);
                        if let Some(new_active) = slot.record_probe(&result, config.fail_threshold)
                        {
                            // The flip line cluster tooling (and CI) greps.
                            println!(
                                "[p4lru-prober] slot {} flipped {} -> {} after {} failed probes",
                                slot.primary, active, new_active, config.fail_threshold
                            );
                        }
                    }
                    std::thread::sleep(config.interval);
                }
            })
            .expect("spawn prober thread");
        Self {
            running,
            handle: Some(handle),
        }
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One row of the counter-family table: name, help text, and the
/// slot-field reader it renders.
type CounterRow = (&'static str, &'static str, fn(&SlotHealth) -> u64);

/// Renders the router's per-slot Prometheus families from shared health
/// (the `p4lru_routerd --metrics-addr` endpoint body).
pub fn router_families(e: &mut Expo, health: &ClusterHealth) {
    e.meta(
        "p4lru_router_slot_healthy",
        "gauge",
        "1 when the slot's active address answered its last probe",
    );
    for s in health.slots() {
        e.sample(
            "p4lru_router_slot_healthy",
            &[("slot", &s.primary)],
            if s.is_healthy() { 1.0 } else { 0.0 },
        );
    }
    e.meta(
        "p4lru_router_slot_on_follower",
        "gauge",
        "1 when the slot currently routes to its standby",
    );
    for s in health.slots() {
        e.sample(
            "p4lru_router_slot_on_follower",
            &[("slot", &s.primary)],
            if s.on_follower.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            },
        );
    }
    let counters: [CounterRow; 5] = [
        (
            "p4lru_router_slot_requests_total",
            "requests routed through the slot",
            |s| s.requests.load(Ordering::Relaxed),
        ),
        (
            "p4lru_router_slot_errors_total",
            "requests that failed after retries",
            |s| s.errors.load(Ordering::Relaxed),
        ),
        (
            "p4lru_router_slot_flips_total",
            "failovers between primary and standby",
            |s| s.flips(),
        ),
        (
            "p4lru_router_slot_probes_total",
            "health probes sent to the slot's active address",
            |s| s.probes.load(Ordering::Relaxed),
        ),
        (
            "p4lru_router_slot_probe_failures_total",
            "health probes that failed or timed out",
            |s| s.probe_failures.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, read) in counters {
        e.meta(name, "counter", help);
        for s in health.slots() {
            e.sample(name, &[("slot", &s.primary)], read(s) as f64);
        }
    }
    e.meta(
        "p4lru_router_probe_rtt_seconds",
        "histogram",
        "probe round-trip time",
    );
    for s in health.slots() {
        e.histogram(
            "p4lru_router_probe_rtt_seconds",
            &[("slot", &s.primary)],
            &s.probe_rtt.snapshot(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::parse("127.0.0.1:9101~127.0.0.1:9201,127.0.0.1:9102").unwrap()
    }

    #[test]
    fn threshold_consecutive_failures_flip_only_slots_with_standbys() {
        let health = ClusterHealth::new(&spec());
        let with_standby = health.slot("127.0.0.1:9101").unwrap();
        let bare = health.slot("127.0.0.1:9102").unwrap();
        let fail: io::Result<Duration> = Err(io::ErrorKind::ConnectionRefused.into());
        let ok: io::Result<Duration> = Ok(Duration::from_micros(80));

        assert!(with_standby.record_probe(&fail, 3).is_none());
        assert!(with_standby.record_probe(&fail, 3).is_none());
        assert_eq!(
            with_standby.record_probe(&fail, 3),
            Some("127.0.0.1:9201"),
            "third consecutive failure flips"
        );
        assert_eq!(with_standby.active(), "127.0.0.1:9201");
        assert_eq!(with_standby.flips(), 1);
        assert!(!with_standby.is_healthy());

        // A success heals and resets the streak.
        assert!(with_standby.record_probe(&ok, 3).is_none());
        assert!(with_standby.is_healthy());
        assert!(with_standby.record_probe(&fail, 3).is_none());
        assert!(with_standby.record_probe(&fail, 3).is_none());

        // No standby: the streak grows but routing cannot move.
        for _ in 0..10 {
            assert!(bare.record_probe(&fail, 3).is_none());
        }
        assert_eq!(bare.active(), "127.0.0.1:9102");
        assert_eq!(bare.flips(), 0);
    }

    #[test]
    fn an_interleaved_success_resets_the_streak() {
        let health = ClusterHealth::new(&spec());
        let slot = health.slot("127.0.0.1:9101").unwrap();
        let fail: io::Result<Duration> = Err(io::ErrorKind::TimedOut.into());
        let ok: io::Result<Duration> = Ok(Duration::from_micros(50));
        for _ in 0..5 {
            assert!(slot.record_probe(&fail, 3).is_none() || slot.flips() > 0);
            slot.record_probe(&ok, 3);
        }
        assert_eq!(slot.flips(), 0, "2 failures never reach a threshold of 3");
    }

    #[test]
    fn probing_a_dead_port_fails_within_the_timeout() {
        // A port nothing listens on: refused immediately on loopback.
        let start = std::time::Instant::now();
        let e = probe("127.0.0.1:1", Duration::from_millis(200)).unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(2), "bounded: {e}");
    }

    #[test]
    fn families_render_per_slot() {
        let health = ClusterHealth::new(&spec());
        health.slot("127.0.0.1:9101").unwrap().record_request();
        let mut e = Expo::new();
        router_families(&mut e, &health);
        let text = e.finish();
        assert!(
            text.contains("p4lru_router_slot_healthy{slot=\"127.0.0.1:9101\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("p4lru_router_slot_requests_total{slot=\"127.0.0.1:9101\"} 1"),
            "{text}"
        );
        assert!(text.contains("p4lru_router_slot_probes_total"), "{text}");
        assert!(
            text.contains("p4lru_router_probe_rtt_seconds_bucket"),
            "{text}"
        );
    }
}
