//! The cluster client: ring routing plus failover-aware retries.
//!
//! A [`ClusterClient`] owns one lazy connection per cluster slot and routes
//! every key through the shared [`HashRing`]. Failure handling is scoped to
//! the slot: when a node stops answering — the connection drops, or a
//! not-yet-promoted follower answers `READONLY` — the client flips the
//! slot's active address between its primary and standby and retries under
//! a bounded, jittered [`Backoff`]. Keys never move between slots on
//! failure: the ring name is the *slot*, and failover only swaps which
//! socket the slot currently answers on (DESIGN.md §14).
//!
//! Errors that a retry cannot fix (a malformed request, an oversized
//! value) surface immediately; only connection-shaped failures and
//! `READONLY` redirects consume the retry budget.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use p4lru_obs::SpanContext;
use p4lru_server::client::Client;
use p4lru_server::metrics::StatsReport;

use crate::backoff::{Backoff, RetryPolicy};
use crate::health::ClusterHealth;
use crate::ring::HashRing;
use crate::spec::ClusterSpec;

/// One slot's connection state: which address is believed live, and the
/// cached connection to it.
struct Slot {
    primary: String,
    follower: Option<String>,
    active: String,
    client: Option<Client>,
    /// Failovers performed on this slot (flips of the active address).
    flips: u64,
}

impl Slot {
    fn flip(&mut self) {
        if let Some(f) = &self.follower {
            self.active = if self.active == self.primary {
                f.clone()
            } else {
                self.primary.clone()
            };
            self.flips += 1;
        }
    }
}

/// A routing client over a static [`ClusterSpec`].
pub struct ClusterClient {
    ring: HashRing,
    slots: HashMap<String, Slot>,
    retry: RetryPolicy,
    /// Shared prober-maintained health. When present its choice of
    /// active address is authoritative: this client adopts it before
    /// every attempt instead of flipping privately, so the prober's
    /// pre-timeout failover moves every connection at once.
    health: Option<Arc<ClusterHealth>>,
}

/// True for errors where trying the slot's other address can help: the
/// connection died, the peer vanished, or a follower told us it is not
/// the primary.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::NotConnected
            | io::ErrorKind::AddrNotAvailable
    ) || e.to_string().contains("READONLY")
}

impl ClusterClient {
    /// Builds a client over `spec`; connections open lazily on first use.
    pub fn new(spec: &ClusterSpec, retry: RetryPolicy) -> Self {
        Self::build(spec, retry, None)
    }

    /// Builds a client that defers failover decisions to shared
    /// prober-maintained health (the router's per-connection clients).
    pub fn with_health(spec: &ClusterSpec, retry: RetryPolicy, health: Arc<ClusterHealth>) -> Self {
        Self::build(spec, retry, Some(health))
    }

    fn build(spec: &ClusterSpec, retry: RetryPolicy, health: Option<Arc<ClusterHealth>>) -> Self {
        let mut slots = HashMap::new();
        for node in &spec.nodes {
            slots.insert(
                node.primary.clone(),
                Slot {
                    primary: node.primary.clone(),
                    follower: node.follower.clone(),
                    active: node.primary.clone(),
                    client: None,
                    flips: 0,
                },
            );
        }
        Self {
            ring: spec.ring(),
            slots,
            retry,
            health,
        }
    }

    /// The slot a key routes to.
    pub fn node_for(&self, key: u64) -> &str {
        self.ring
            .node_for(key)
            .expect("a parsed ClusterSpec is never empty")
    }

    /// Slot names (ring order is irrelevant; these are sorted).
    pub fn nodes(&self) -> &[String] {
        self.ring.nodes()
    }

    /// Total failover flips across all slots.
    pub fn failovers(&self) -> u64 {
        self.slots.values().map(|s| s.flips).sum()
    }

    /// Reads a key from its slot.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        self.get_spanned(key, None)
    }

    /// Writes a key to its slot.
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        self.set_spanned(key, value, None)
    }

    /// Deletes a key from its slot.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        self.del_spanned(key, None)
    }

    /// Reads a key, forwarding an in-band trace context upstream.
    pub fn get_spanned(
        &mut self,
        key: u64,
        span: Option<SpanContext>,
    ) -> io::Result<Option<Vec<u8>>> {
        let name = self.node_for(key).to_owned();
        self.on_slot(&name, |c| {
            c.set_next_span(span);
            c.get(key)
        })
    }

    /// Writes a key, forwarding an in-band trace context upstream.
    pub fn set_spanned(
        &mut self,
        key: u64,
        value: &[u8],
        span: Option<SpanContext>,
    ) -> io::Result<()> {
        let name = self.node_for(key).to_owned();
        self.on_slot(&name, |c| {
            c.set_next_span(span);
            c.set(key, value)
        })
    }

    /// Deletes a key, forwarding an in-band trace context upstream.
    pub fn del_spanned(&mut self, key: u64, span: Option<SpanContext>) -> io::Result<bool> {
        let name = self.node_for(key).to_owned();
        self.on_slot(&name, |c| {
            c.set_next_span(span);
            c.del(key)
        })
    }

    /// Fetches every slot's stats report, labeled by slot name.
    pub fn stats_all(&mut self) -> io::Result<Vec<(String, StatsReport)>> {
        let names: Vec<String> = self.ring.nodes().to_vec();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let report = self.on_slot(&name, |c| c.stats())?;
            out.push((name, report));
        }
        Ok(out)
    }

    /// Asks every slot's live node to shut down; best effort.
    pub fn shutdown_all(&mut self) {
        let names: Vec<String> = self.ring.nodes().to_vec();
        for name in names {
            let _ = self.on_slot(&name, |c| c.shutdown());
        }
    }

    /// Runs `f` against the slot's live node, flipping between its
    /// primary and standby under the retry policy until `f` succeeds,
    /// the budget runs out, or the error is one retrying cannot fix.
    pub fn on_slot<T>(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Client) -> io::Result<T>,
    ) -> io::Result<T> {
        let slot = self
            .slots
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no slot {name}")))?;
        let shared = self.health.as_deref().and_then(|h| h.slot(name));
        if let Some(s) = shared {
            s.record_request();
        }
        let mut backoff = Backoff::new(self.retry);
        loop {
            // Under shared health the prober's choice is authoritative:
            // adopt it (dropping the stale connection) before every try.
            if let Some(s) = shared {
                let active = s.active();
                if slot.active != active {
                    slot.active = active.to_owned();
                    slot.client = None;
                }
            }
            let attempt = match &mut slot.client {
                Some(c) => f(c),
                None => match Client::connect(slot.active.as_str()) {
                    Ok(c) => f(slot.client.insert(c)),
                    Err(e) => Err(e),
                },
            };
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) => {
                    // The connection's framing state is suspect after any
                    // error; reconnect rather than resynchronize.
                    slot.client = None;
                    if !is_retryable(&e) {
                        if let Some(s) = shared {
                            s.record_error();
                        }
                        return Err(e);
                    }
                    if shared.is_none() {
                        slot.flip();
                    }
                    match backoff.next_delay() {
                        Some(d) => std::thread::sleep(d),
                        None => {
                            if let Some(s) = shared {
                                s.record_error();
                            }
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_shaped_errors_retry_and_payload_errors_do_not() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
        ] {
            assert!(is_retryable(&io::Error::new(kind, "x")), "{kind:?}");
        }
        assert!(is_retryable(&io::Error::new(
            io::ErrorKind::InvalidData,
            "SET: unexpected response Err(\"READONLY follower; primary is 127.0.0.1:9\")",
        )));
        assert!(!is_retryable(&io::Error::new(
            io::ErrorKind::InvalidData,
            "SET: unexpected response Err(\"value too large\")",
        )));
    }

    #[test]
    fn routing_is_stable_per_key() {
        let spec = ClusterSpec::parse("127.0.0.1:1,127.0.0.1:2,127.0.0.1:3").unwrap();
        let client = ClusterClient::new(&spec, RetryPolicy::default());
        for key in 0..200u64 {
            assert_eq!(client.node_for(key), client.node_for(key));
        }
    }
}
