//! Static cluster membership: a comma-separated list of node slots.
//!
//! Each slot is `primary[~follower]` — a serverd address, optionally paired
//! with the address of the replica that will take over if the primary dies
//! (see DESIGN.md §14). The **primary address is the slot's identity**: it
//! names the slot on the hash ring, so a failover swaps which socket a slot
//! talks to without moving a single key.
//!
//! Example: `127.0.0.1:4190~127.0.0.1:4290,127.0.0.1:4191`.

use crate::ring::{HashRing, DEFAULT_VNODES};

/// One slot in the cluster: a primary address and an optional standby.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// The serverd address clients talk to first; also the slot's ring name.
    pub primary: String,
    /// A replica's client address, tried when the primary stops answering
    /// (its server promotes itself; see `--failover-ms`).
    pub follower: Option<String>,
}

impl NodeSpec {
    /// The slot's stable identity on the ring.
    pub fn name(&self) -> &str {
        &self.primary
    }
}

/// A parsed cluster membership list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// The slots, in spec order.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Parses `primary[~follower],primary[~follower],…`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut nodes = Vec::new();
        for slot in spec.split(',') {
            let slot = slot.trim();
            if slot.is_empty() {
                continue;
            }
            let (primary, follower) = match slot.split_once('~') {
                Some((p, f)) => (p.trim(), Some(f.trim())),
                None => (slot, None),
            };
            if primary.is_empty() || !primary.contains(':') {
                return Err(format!("bad node address {slot:?}: want host:port"));
            }
            if let Some(f) = follower {
                if f.is_empty() || !f.contains(':') {
                    return Err(format!("bad follower address in {slot:?}: want host:port"));
                }
            }
            if nodes.iter().any(|n: &NodeSpec| n.primary == primary) {
                return Err(format!("duplicate node {primary}"));
            }
            nodes.push(NodeSpec {
                primary: primary.to_owned(),
                follower: follower.map(str::to_owned),
            });
        }
        if nodes.is_empty() {
            return Err("empty cluster spec".to_owned());
        }
        Ok(Self { nodes })
    }

    /// Builds the routing ring over the slots' identities.
    pub fn ring(&self) -> HashRing {
        let names: Vec<&str> = self.nodes.iter().map(NodeSpec::name).collect();
        HashRing::new(&names, DEFAULT_VNODES)
    }

    /// Looks a slot up by its ring name.
    pub fn node(&self, name: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.primary == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_paired_slots() {
        let spec = ClusterSpec::parse("127.0.0.1:4190~127.0.0.1:4290, 127.0.0.1:4191").unwrap();
        assert_eq!(spec.nodes.len(), 2);
        assert_eq!(spec.nodes[0].primary, "127.0.0.1:4190");
        assert_eq!(spec.nodes[0].follower.as_deref(), Some("127.0.0.1:4290"));
        assert_eq!(spec.nodes[1].follower, None);
        assert_eq!(spec.ring().len(), 2);
        assert!(spec.node("127.0.0.1:4191").is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("no-port").is_err());
        assert!(ClusterSpec::parse("a:1~").is_err());
        assert!(ClusterSpec::parse("a:1,a:1").is_err());
    }
}
