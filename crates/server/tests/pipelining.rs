//! Pipelined-connection ordering tests (DESIGN.md §9).
//!
//! The server's contract is that responses arrive in request order even
//! though requests fan out to shard threads that complete out of order. A
//! single connection queues interleaved GET/SET/DEL bursts across every
//! shard without reading a single reply, then drains and checks each reply
//! against a sequential model — any reordering, dropped, or duplicated
//! reply shows up as a model mismatch at an exact request index.

use std::collections::{HashMap, VecDeque};

use proptest::collection::vec;
use proptest::prelude::*;

use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;
use p4lru_server::protocol::Response;
use p4lru_server::server::{shard_of, Server, ServerConfig};

const ITEMS: u64 = 100;

fn tiny_config(shards: usize) -> ServerConfig {
    ServerConfig {
        items: ITEMS,
        units_per_shard: 64,
        shards,
        ..ServerConfig::default()
    }
}

/// What the store actually keeps: values are fixed 64-byte records, so a
/// SET pads (or truncates) to 64 bytes and a GET returns all 64.
fn pad64(value: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; 64];
    let n = value.len().min(64);
    out[..n].copy_from_slice(&value[..n]);
    out
}

fn populated_model() -> HashMap<u64, Vec<u8>> {
    (0..ITEMS).map(|k| (k, record_for(k).to_vec())).collect()
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum TestOp {
    Get(u64),
    /// key, fill byte, length
    Set(u64, u8, usize),
    Del(u64),
}

/// Applies `op` to the model and returns the response the server must give.
fn expected(model: &mut HashMap<u64, Vec<u8>>, op: TestOp) -> Response {
    match op {
        TestOp::Get(key) => match model.get(&key) {
            Some(v) => Response::Value(v.clone()),
            None => Response::NotFound,
        },
        TestOp::Set(key, fill, len) => {
            model.insert(key, pad64(&vec![fill; len]));
            Response::Ok
        }
        TestOp::Del(key) => {
            if model.remove(&key).is_some() {
                Response::Ok
            } else {
                Response::NotFound
            }
        }
    }
}

fn send(client: &mut Client, op: TestOp) -> std::io::Result<()> {
    match op {
        TestOp::Get(key) => client.send_get(key),
        TestOp::Set(key, fill, len) => client.send_set(key, &vec![fill; len]),
        TestOp::Del(key) => client.send_del(key),
    }
}

#[test]
fn pipelined_replies_arrive_in_request_order_across_all_shards() {
    let shards = 4;
    let server = Server::spawn(&tiny_config(shards)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A fixed interleaving of every opcode over keys that are a mix of
    // populated and absent, queued as one burst with zero reads.
    let mut model = populated_model();
    let mut covered = vec![false; shards];
    let mut want = Vec::new();
    let mut ops = Vec::new();
    for i in 0u64..96 {
        let key = (i * 37) % 150;
        covered[shard_of(key, shards)] = true;
        let op = match i % 3 {
            0 => TestOp::Get(key),
            1 => TestOp::Set(key, i as u8, 1 + (i as usize % 64)),
            _ => TestOp::Del(key),
        };
        ops.push(op);
        want.push(expected(&mut model, op));
        send(&mut client, op).unwrap();
    }
    assert!(
        covered.iter().all(|&c| c),
        "the burst must interleave across every shard: {covered:?}"
    );

    client.flush().unwrap();
    for (i, want) in want.iter().enumerate() {
        let got = client.recv().unwrap();
        assert_eq!(&got, want, "reply {i} (request {:?}) out of order", ops[i]);
    }

    // The connection is still healthy for ordinary traffic afterwards.
    assert_eq!(client.get(0).unwrap(), model.get(&0).cloned());
    server.shutdown();
}

#[test]
fn burst_deeper_than_the_server_window_still_completes_in_order() {
    // The server reads at most `pipeline_window` requests ahead per
    // connection; a client that queues far more must still get every reply,
    // in order, via backpressure (the server simply stops reading).
    let config = ServerConfig {
        pipeline_window: 4,
        ..tiny_config(2)
    };
    let server = Server::spawn(&config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut model = populated_model();
    let mut want = Vec::new();
    for i in 0u64..256 {
        let op = TestOp::Get(i % 120);
        want.push(expected(&mut model, op));
        send(&mut client, op).unwrap();
    }
    client.flush().unwrap();
    for (i, want) in want.iter().enumerate() {
        assert_eq!(&client.recv().unwrap(), want, "reply {i}");
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings at random pipeline depths against a sequential
    /// model: the pipelined server must be observationally identical to a
    /// one-request-at-a-time server.
    #[test]
    fn random_pipelined_interleavings_match_the_sequential_model(
        raw in vec((0u8..3, 0u64..200, any::<u8>(), 0usize..80), 1..250),
        depth in 1usize..80,
        shards in 1usize..5,
    ) {
        let server = Server::spawn(&tiny_config(shards)).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut model = populated_model();
        let mut inflight: VecDeque<(usize, TestOp, Response)> = VecDeque::new();

        for (i, &(kind, key, fill, len)) in raw.iter().enumerate() {
            let op = match kind {
                0 => TestOp::Get(key),
                1 => TestOp::Set(key, fill, len),
                _ => TestOp::Del(key),
            };
            let want = expected(&mut model, op);
            send(&mut client, op).unwrap();
            inflight.push_back((i, op, want));
            if inflight.len() == depth {
                let (i, op, want) = inflight.pop_front().unwrap();
                let got = client.recv().unwrap();
                prop_assert_eq!(got, want, "reply {} (request {:?})", i, op);
            }
        }
        while let Some((i, op, want)) = inflight.pop_front() {
            let got = client.recv().unwrap();
            prop_assert_eq!(got, want, "reply {} (request {:?})", i, op);
        }
        server.shutdown();
    }
}
