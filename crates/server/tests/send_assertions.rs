//! Compile-time thread-safety assertions for the types the server moves
//! across threads: each shard thread takes ownership of a [`Shard`] (and
//! therefore of its `P4Lru3Array` and `Database`), so all three must be
//! `Send`. If a future field (an `Rc`, a raw pointer cache, …) broke that,
//! this test would fail to *compile* rather than letting the server rot.

use p4lru_core::array::P4Lru3Array;
use p4lru_kvstore::{Addr48, Database};
use p4lru_server::metrics::{ShardMetrics, StatsReport};
use p4lru_server::Shard;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn shard_building_blocks_are_send() {
    assert_send::<P4Lru3Array<u64, Addr48>>();
    assert_send::<Database>();
    assert_send::<Shard>();
}

#[test]
fn stats_types_cross_threads_both_ways() {
    // Metrics are shared via Arc (needs Sync); snapshots are sent back over
    // channels (needs Send).
    assert_sync::<ShardMetrics>();
    assert_send::<ShardMetrics>();
    assert_send::<StatsReport>();
}
