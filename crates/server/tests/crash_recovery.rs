//! Kill-9 crash-recovery test: under `--sync always`, no acknowledged write
//! may be lost, no matter when the server dies.
//!
//! The test drives a real `p4lru_serverd` child process with live SET/DEL
//! traffic, SIGKILLs it mid-load, vandalizes the WAL tails the way a crash
//! mid-append would (a torn trailing record), restarts the daemon on the
//! same data dir, and then audits every acknowledged operation against the
//! recovered store.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("p4lru-kill9-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns `p4lru_serverd` on a free port and parses the bound address from
/// its stdout (no port race).
fn spawn_serverd(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_p4lru_serverd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--items",
            "1000",
            "--units",
            "64",
            "--sync",
            "always",
            "--snapshot-every",
            "512",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("serverd spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serverd printed its listen line before EOF")
            .expect("serverd stdout is readable");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after 'listening on'")
                .parse()
                .expect("listen address parses");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// Appends a garbage record-header fragment to the newest WAL segment —
/// exactly what a crash in the middle of an un-acked append leaves behind.
fn tear_wal_tail(shard_dir: &Path) {
    let newest = std::fs::read_dir(shard_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .max()
        .expect("shard dir has at least one wal segment");
    let mut bytes = std::fs::read(&newest).unwrap();
    bytes.extend_from_slice(&[81, 0, 0, 0, 0xAA, 0xBB, 0xCC]);
    std::fs::write(&newest, bytes).unwrap();
}

#[test]
fn kill9_mid_load_loses_no_acknowledged_write() {
    let tmp = TempDir::new();
    let data_dir = tmp.0.join("data");
    let (mut child, addr) = spawn_serverd(&data_dir);

    // Writer thread: fresh keys (outside the populated 0..1000 space) with
    // occasional deletes, recording only *acknowledged* operations. Runs
    // until the SIGKILL severs the connection.
    //
    // The operation that *fails* (the one in flight when the SIGKILL lands)
    // is indeterminate: the server may have applied and logged it without
    // its ack ever reaching us, and recovery legitimately replays every
    // valid record in the WAL — fsynced or not (kill -9 preserves the page
    // cache). The durability contract is one-sided: acked ⇒ durable; not
    // acked ⇒ unknown. An earlier version of this test got that wrong and
    // asserted the prior acked state of the in-flight key, which flaked
    // ~1/13 runs whenever the kill severed a DEL's ack after the server
    // had already logged it (the "lost" key was always `1_000_000 + i/2`
    // for the final `i % 7 == 3` iteration — the victim of the in-flight
    // DEL). The in-flight key is returned separately and audited only for
    // present-implies-correct-value.
    let writer = {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            // key -> should it exist after recovery?
            let mut acked: HashMap<u64, bool> = HashMap::new();
            let in_flight;
            let mut i = 0u64;
            loop {
                let key = 1_000_000 + i;
                if client.set(key, &record_for(key)).is_err() {
                    in_flight = key;
                    break;
                }
                acked.insert(key, true);
                if i % 7 == 3 {
                    // Delete an earlier key; a recovered store must not
                    // resurrect it.
                    let victim = 1_000_000 + i / 2;
                    match client.del(victim) {
                        Ok(_) => {
                            acked.insert(victim, false);
                        }
                        Err(_) => {
                            in_flight = victim;
                            break;
                        }
                    }
                }
                i += 1;
                // No stop condition needed: every iteration is a blocking
                // round-trip, so the SIGKILL's socket teardown surfaces as
                // an error on the very next operation.
            }
            (acked, in_flight)
        })
    };

    // Let real load build up (several commits and at least one snapshot
    // cadence worth of appends), then kill -9 mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(700));
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap the server");
    let (mut acked, in_flight) = writer.join().expect("writer thread");
    // The in-flight op's outcome is unknowable; drop the key from the
    // strict audit (it is checked separately below).
    acked.remove(&in_flight);
    assert!(
        acked.len() > 20,
        "need meaningful load before the kill, got {} acked ops",
        acked.len()
    );

    // Simulate the torn final append a less polite crash leaves behind.
    tear_wal_tail(&data_dir.join("shard-000"));
    tear_wal_tail(&data_dir.join("shard-001"));

    // Restart on the same data dir and audit every acknowledged op.
    let (mut child, addr) = spawn_serverd(&data_dir);
    let mut client = Client::connect(addr).expect("verifier connects");
    let (mut live, mut deleted) = (0u64, 0u64);
    for (&key, &should_exist) in &acked {
        let got = client.get(key).expect("GET after recovery");
        if should_exist {
            assert_eq!(
                got.as_deref(),
                Some(&record_for(key)[..]),
                "acknowledged SET of key {key} was lost or corrupted"
            );
            live += 1;
        } else {
            assert_eq!(got, None, "acknowledged DEL of key {key} was resurrected");
            deleted += 1;
        }
    }
    assert!(live > 0 && deleted > 0, "both op kinds must be audited");

    // The in-flight key may or may not have been applied, but if it is
    // present it must carry the correct record, never a torn one.
    if let Some(v) = client.get(in_flight).expect("GET in-flight key") {
        assert_eq!(
            &v[..],
            &record_for(in_flight)[..],
            "in-flight key {in_flight} recovered with a corrupt value"
        );
    }

    // Pre-populated keys still present (snapshot path).
    assert_eq!(
        client.get(17).expect("GET populated key").as_deref(),
        Some(&record_for(17)[..])
    );

    let stats = client.stats().expect("STATS after recovery");
    assert!(
        stats.totals.recovery_replayed > 0,
        "recovery must have replayed WAL records"
    );
    assert_eq!(
        stats.totals.recovery_torn, 2,
        "both shards' torn tails must be detected and skipped"
    );
    assert!(
        stats.totals.recovery_us > 0,
        "recovery duration is reported"
    );

    client.shutdown().expect("clean shutdown");
    drop(client);
    child.wait().expect("server exits after SHUTDOWN");
}
