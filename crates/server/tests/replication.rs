//! Replication integration tests: WAL shipping from a primary to a live
//! follower, snapshot catch-up when the primary has pruned its history, the
//! follower's read-only contract, and the headline failover audit — kill -9
//! a primary under `--replicate ack` load and verify that no acknowledged
//! write is missing from the promoted follower.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;
use p4lru_server::repl::ReplConfig;
use p4lru_server::server::{Server, ServerConfig};

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "p4lru-repl-{label}-{}-{:x}",
            std::process::id(),
            &raw const label as usize
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_config(data_dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        items: 200,
        units_per_shard: 64,
        data_dir: Some(data_dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn primary_config(data_dir: &Path, ack: bool) -> ServerConfig {
    let mut config = base_config(data_dir);
    config.repl = Some(ReplConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        ack,
        ..ReplConfig::default()
    });
    config
}

fn follower_config(data_dir: &Path, primary_repl: SocketAddr) -> ServerConfig {
    let mut config = base_config(data_dir);
    config.repl = Some(ReplConfig {
        follow: Some(primary_repl.to_string()),
        failover: Duration::from_millis(600),
        ..ReplConfig::default()
    });
    config
}

/// Polls `check` against fresh STATS until it passes or the deadline hits.
fn wait_for(client: &mut Client, what: &str, check: impl Fn(&p4lru_server::StatsReport) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = client.stats().expect("STATS while waiting");
        if check(&report) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn follower_catches_up_and_stays_read_only() {
    let tmp = TempDir::new("catchup");
    let primary = Server::spawn(&primary_config(&tmp.0.join("a"), false)).unwrap();
    let repl_addr = primary.repl_addr().expect("primary ships WAL");
    let follower = Server::spawn(&follower_config(&tmp.0.join("b"), repl_addr)).unwrap();

    let mut p = Client::connect(primary.local_addr()).unwrap();
    for key in 1_000..1_032u64 {
        p.set(key, &record_for(key)).unwrap();
    }
    p.del(1_003).unwrap();
    p.del(1_017).unwrap();

    // 34 mutations must arrive; the follower acks its durable watermark
    // back on every pull, so the primary's counters see shipping too.
    let mut f = Client::connect(follower.local_addr()).unwrap();
    wait_for(&mut f, "34 records applied", |r| {
        r.cluster.as_ref().map(|c| c.records_applied) == Some(34)
    });

    for key in 1_000..1_032u64 {
        let got = f.get(key).expect("follower GET");
        if key == 1_003 || key == 1_017 {
            assert_eq!(got, None, "replicated DEL of {key} must hold");
        } else {
            assert_eq!(
                got.as_deref(),
                Some(&record_for(key)[..]),
                "replicated SET of {key} must hold"
            );
        }
    }

    // The follower refuses client mutations and names its primary.
    let err = f
        .set(9, &record_for(9))
        .expect_err("follower SET must fail");
    let msg = err.to_string();
    assert!(msg.contains("READONLY"), "got {msg:?}");
    assert!(msg.contains(&repl_addr.to_string()), "got {msg:?}");
    assert!(f.del(9).is_err(), "follower DEL must fail");
    assert_eq!(
        f.get(7).unwrap().as_deref(),
        Some(&record_for(7)[..]),
        "follower reads stay open"
    );

    let fc = f
        .stats()
        .unwrap()
        .cluster
        .expect("follower cluster section");
    assert_eq!(fc.role, "follower");
    assert!(!fc.ack_mode);
    assert_eq!(fc.promotions, 0);
    assert_eq!(fc.snapshots_installed, 0, "live tailing needs no snapshot");
    assert_eq!(fc.watermarks.iter().sum::<u64>(), 34);

    // The follower's durable watermark flows back on its next pull, so the
    // primary's copy trails by at most one pull interval.
    wait_for(&mut p, "durable watermark echoed to the primary", |r| {
        r.cluster
            .as_ref()
            .is_some_and(|c| c.watermarks.iter().sum::<u64>() == 34)
    });
    let pc = p.stats().unwrap().cluster.expect("primary cluster section");
    assert_eq!(pc.role, "primary");
    assert_eq!(pc.records_shipped, 34);
    assert!(pc.bytes_shipped > 0);
    assert!(pc.pulls_served > 0);

    primary.shutdown();
    follower.shutdown();
}

#[test]
fn follower_bootstraps_from_a_shipped_snapshot_when_history_is_pruned() {
    let tmp = TempDir::new("snapcatchup");
    let mut config = primary_config(&tmp.0.join("a"), false);
    // A tiny snapshot cadence prunes the WAL history almost immediately, so
    // a fresh follower's from-the-beginning cursor cannot be served from
    // records and must take the snapshot path.
    config.durability.snapshot_every = 16;
    let primary = Server::spawn(&config).unwrap();
    let mut p = Client::connect(primary.local_addr()).unwrap();
    for key in 5_000..5_080u64 {
        p.set(key, &record_for(key)).unwrap();
    }

    let follower = Server::spawn(&follower_config(
        &tmp.0.join("b"),
        primary.repl_addr().unwrap(),
    ))
    .unwrap();
    let mut f = Client::connect(follower.local_addr()).unwrap();
    wait_for(&mut f, "snapshot install + tail catch-up", |r| {
        r.cluster
            .as_ref()
            .is_some_and(|c| c.snapshots_installed >= 1 && c.watermarks.iter().sum::<u64>() == 80)
    });

    for key in 5_000..5_080u64 {
        assert_eq!(
            f.get(key).expect("follower GET").as_deref(),
            Some(&record_for(key)[..]),
            "key {key} must survive the snapshot + tail path"
        );
    }
    assert!(
        p.stats().unwrap().cluster.unwrap().snapshots_shipped >= 1,
        "the primary must have shipped at least one snapshot"
    );

    primary.shutdown();
    follower.shutdown();
}

/// Spawns a `p4lru_serverd` child with replication flags and parses the
/// client listen address and (when primary) the replication address from
/// its stdout.
fn spawn_node(data_dir: &Path, repl_args: &[&str]) -> (Child, SocketAddr, Option<SocketAddr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_p4lru_serverd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--items",
            "200",
            "--units",
            "64",
            "--sync",
            "always",
            "--data-dir",
        ])
        .arg(data_dir)
        .args(repl_args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("serverd spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut repl_addr = None;
    while addr.is_none() || repl_addr.is_none() {
        let Some(line) = lines.next() else {
            break; // a follower prints no "shipping on" line
        };
        let line = line.expect("serverd stdout is readable");
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = Some(
                rest.split_whitespace()
                    .next()
                    .unwrap()
                    .parse()
                    .expect("listen address parses"),
            );
        }
        if let Some(rest) = line.split("shipping on ").nth(1) {
            repl_addr = Some(
                rest.split_whitespace()
                    .next()
                    .unwrap()
                    .parse()
                    .expect("replication address parses"),
            );
        }
        // Both interesting lines print before the daemon blocks serving, a
        // follower's role line carries no address to wait for.
        if addr.is_some() && line.contains("role=follower") {
            break;
        }
    }
    std::thread::spawn(move || for _ in lines {});
    (
        child,
        addr.expect("serverd printed its listen line"),
        repl_addr,
    )
}

#[test]
fn kill9_primary_under_ack_load_loses_no_acknowledged_write() {
    let tmp = TempDir::new("failover");
    let (mut primary, primary_addr, repl_addr) = spawn_node(
        &tmp.0.join("a"),
        &[
            "--repl-addr",
            "127.0.0.1:0",
            "--replicate",
            "ack",
            "--ack-timeout-ms",
            "4000",
        ],
    );
    let repl_addr = repl_addr.expect("primary prints its replication address");
    let follow = repl_addr.to_string();
    let (mut follower, follower_addr, _) = spawn_node(
        &tmp.0.join("b"),
        &["--follow", &follow, "--failover-ms", "500"],
    );

    // Writer against the primary: every *acknowledged* op is, by the ack
    // contract, durable on the follower before the ack was released. The
    // op in flight when the SIGKILL lands is indeterminate (same one-sided
    // contract as the crash-recovery test) and is audited separately.
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(primary_addr).expect("writer connects");
        let mut acked: HashMap<u64, bool> = HashMap::new();
        let in_flight;
        let mut i = 0u64;
        loop {
            let key = 1_000_000 + i;
            if client.set(key, &record_for(key)).is_err() {
                in_flight = key;
                break;
            }
            acked.insert(key, true);
            if i % 7 == 3 {
                let victim = 1_000_000 + i / 2;
                match client.del(victim) {
                    Ok(_) => {
                        acked.insert(victim, false);
                    }
                    Err(_) => {
                        in_flight = victim;
                        break;
                    }
                }
            }
            i += 1;
        }
        (acked, in_flight)
    });

    std::thread::sleep(Duration::from_millis(900));
    primary.kill().expect("SIGKILL the primary");
    primary.wait().expect("reap the primary");
    let (mut acked, in_flight) = writer.join().expect("writer thread");
    acked.remove(&in_flight);
    assert!(
        acked.len() > 10,
        "need meaningful acked load before the kill, got {}",
        acked.len()
    );

    // The follower notices the dead primary and promotes itself.
    let mut f = Client::connect(follower_addr).expect("survivor connects");
    wait_for(&mut f, "follower promotion", |r| {
        r.cluster.as_ref().map(|c| c.role.as_str()) == Some("primary")
    });
    let cluster = f.stats().unwrap().cluster.unwrap();
    assert_eq!(cluster.promotions, 1);

    // The audit: every acknowledged write is on the promoted node.
    let (mut live, mut deleted) = (0u64, 0u64);
    for (&key, &should_exist) in &acked {
        let got = f.get(key).expect("GET on the promoted follower");
        if should_exist {
            assert_eq!(
                got.as_deref(),
                Some(&record_for(key)[..]),
                "replication-acked SET of key {key} is missing after failover"
            );
            live += 1;
        } else {
            assert_eq!(
                got, None,
                "replication-acked DEL of key {key} was resurrected by failover"
            );
            deleted += 1;
        }
    }
    assert!(live > 0 && deleted > 0, "both op kinds must be audited");

    // If the in-flight op made it across, it must be intact, never torn.
    if let Some(v) = f.get(in_flight).expect("GET in-flight key") {
        assert_eq!(&v[..], &record_for(in_flight)[..]);
    }

    // A promoted node accepts writes: it *is* the primary now.
    f.set(42_000, &record_for(42_000))
        .expect("promoted follower takes writes");
    assert_eq!(
        f.get(42_000).unwrap().as_deref(),
        Some(&record_for(42_000)[..])
    );

    f.shutdown().expect("clean shutdown");
    drop(f);
    follower.wait().expect("survivor exits after SHUTDOWN");
}
