//! Replication-lag telemetry integration test (DESIGN.md §15).
//!
//! A real follower is pointed at a scripted fake primary that ships one
//! ten-record batch and then *withholds* the up-to-date confirmation —
//! the shape of a primary that is slow to ship the rest of its backlog.
//! The follower must:
//!
//! * report the shipped-but-unconfirmed distance as nonzero
//!   `repl_lag_seqs` (held steady across polls, not a one-poll blip),
//!   with the `lag_bytes` estimate and pull/apply histograms populated;
//! * render the same numbers as `p4lru_repl_*` Prometheus families on its
//!   own `/metrics` endpoint — the follower role serves the replication
//!   section too, not just the primary;
//! * drain the gauge to exactly zero once the primary finally confirms
//!   `UP_TO_DATE`.

#![cfg(unix)]

use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4lru_durable::record::encode_into;
use p4lru_durable::WalOp;
use p4lru_kvstore::db::record_for;
use p4lru_obs::http::http_get;
use p4lru_server::client::Client;
use p4lru_server::repl::{
    read_repl_frame, write_repl_frame, PullRequest, PullResponse, ReplConfig,
};
use p4lru_server::server::{Server, ServerConfig};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "p4lru-repllag-{label}-{}-{:x}",
            std::process::id(),
            &raw const label as usize
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Encodes `n` SET records starting at sequence `first` in on-disk WAL
/// framing — exactly what an honest primary would ship.
fn batch(first: u64, n: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    for seq in first..first + n {
        encode_into(
            &mut bytes,
            seq,
            &WalOp::Set {
                key: 9_000 + seq,
                record: record_for(9_000 + seq),
            },
        );
    }
    bytes
}

/// A fake primary that ships records 1..=10 on the first pull and then
/// stalls: until `caught_up` flips, every later pull gets an *empty*
/// records frame (keeps the connection alive, confirms nothing), after
/// which it answers `UP_TO_DATE`. The ten-record shipment stays
/// unconfirmed — the follower's lag gauge must hold at 10 the whole time.
fn spawn_stalling_primary() -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let caught_up = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&caught_up);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut frame = Vec::new();
            let mut out = Vec::new();
            while let Ok(true) = read_repl_frame(&mut stream, &mut frame) {
                let Ok(req) = PullRequest::decode(&frame) else {
                    break;
                };
                let response = if req.from_seq == 1 {
                    PullResponse::Records {
                        first_seq: 1,
                        last_seq: 10,
                        bytes: batch(1, 10),
                    }
                } else if gate.load(Ordering::SeqCst) {
                    PullResponse::UpToDate
                } else {
                    // Alive but confirming nothing: an empty shipment at
                    // the follower's own cursor.
                    PullResponse::Records {
                        first_seq: req.from_seq,
                        last_seq: req.from_seq.saturating_sub(1),
                        bytes: Vec::new(),
                    }
                };
                response.encode(&mut out);
                if write_repl_frame(&mut stream, &out).is_err() {
                    break;
                }
            }
        }
    });
    (addr, caught_up)
}

fn follower_config(data_dir: &Path, primary: SocketAddr) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 1,
        items: 50,
        units_per_shard: 64,
        data_dir: Some(data_dir.to_path_buf()),
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        repl: Some(ReplConfig {
            follow: Some(primary.to_string()),
            // This test is about the gauge, never about promotion.
            failover: Duration::from_secs(60),
            pull_interval: Duration::from_millis(25),
            ..ReplConfig::default()
        }),
        ..ServerConfig::default()
    }
}

/// Polls fresh STATS until `check` passes or the deadline hits.
fn wait_for(client: &mut Client, what: &str, check: impl Fn(&p4lru_server::StatsReport) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = client.stats().expect("STATS while waiting");
        if check(&report) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_stalled_follower_reports_its_lag_and_drains_it_on_catch_up() {
    let (fake_primary, caught_up) = spawn_stalling_primary();
    let tmp = TempDir::new("gauge");
    let follower = Server::spawn(&follower_config(&tmp.0, fake_primary)).unwrap();
    let mut f = Client::connect(follower.local_addr()).unwrap();

    // Phase 1: the batch lands but is never confirmed — the gauge must
    // read the shipped distance, not zero.
    wait_for(&mut f, "the ten-record shipment to apply", |r| {
        r.cluster.as_ref().map(|c| c.records_applied) == Some(10)
    });
    let cluster = f.stats().unwrap().cluster.unwrap();
    assert_eq!(cluster.lag_seqs, vec![10], "shipped-but-unconfirmed lag");
    assert!(
        cluster.lag_bytes > 0,
        "lag_bytes estimates from the batch's record sizes"
    );
    assert!(cluster.pull_rtt.count > 0, "pull RTTs were measured");
    assert!(cluster.batch_apply.count >= 1, "the apply was timed");
    assert_eq!(cluster.watermarks, vec![10], "the batch is durably applied");

    // Not a one-poll blip: the follower keeps pulling (and keeps getting
    // nothing confirmed), and the gauge holds.
    std::thread::sleep(Duration::from_millis(300));
    let held = f.stats().unwrap().cluster.unwrap();
    assert_eq!(
        held.lag_seqs,
        vec![10],
        "lag holds while the primary stalls"
    );
    assert!(
        held.pull_rtt.count > cluster.pull_rtt.count,
        "the pull loop stayed live through the stall"
    );

    // Satellite check: the follower's own /metrics renders the replication
    // section — lag gauges, histograms, and the role family all present.
    let metrics = follower.metrics_addr().expect("metrics endpoint");
    let (status, body) = http_get(metrics, "/metrics").unwrap();
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("p4lru_cluster_role{role=\"follower\"} 1\n"));
    assert!(body.contains("p4lru_repl_lag_seqs{shard=\"0\"} 10\n"));
    assert!(body.contains("# TYPE p4lru_repl_lag_bytes gauge"));
    assert!(body.contains("p4lru_repl_pull_age_ms"));
    assert!(body.contains("# TYPE p4lru_repl_pull_rtt_seconds histogram"));
    assert!(body.contains("p4lru_repl_batch_apply_seconds_count 1\n"));
    assert!(body.contains("p4lru_cluster_records_applied_total 10\n"));

    // Phase 2: the primary confirms UP_TO_DATE; the gauge drains to zero
    // and the replicated data is all present.
    caught_up.store(true, Ordering::SeqCst);
    wait_for(&mut f, "the lag gauge to drain", |r| {
        r.cluster
            .as_ref()
            .is_some_and(|c| c.lag_seqs.iter().sum::<u64>() == 0)
    });
    let drained = f.stats().unwrap().cluster.unwrap();
    assert_eq!(drained.lag_bytes, 0, "no lag, no bytes estimate");
    assert_eq!(drained.records_applied, 10);
    assert_eq!(drained.role, "follower");
    assert_eq!(drained.promotions, 0, "the stall never looked like a death");
    for seq in 1..=10u64 {
        let key = 9_000 + seq;
        assert_eq!(
            f.get(key).unwrap().as_deref(),
            Some(&record_for(key)[..]),
            "replicated record {seq} readable on the follower"
        );
    }

    let (_, body) = http_get(metrics, "/metrics").unwrap();
    assert!(body.contains("p4lru_repl_lag_seqs{shard=\"0\"} 0\n"));
    assert!(body.contains("p4lru_repl_lag_bytes 0\n"));

    follower.shutdown();
}
