//! End-to-end observability tests: the `/metrics` endpoint against a live
//! server (exposition validity + agreement with STATS), slow-op traces
//! covering all eight lifecycle stages, and the background JSONL sampler.

use std::collections::BTreeMap;
use std::time::Duration;

use p4lru_obs::http::http_get;
use p4lru_obs::trace::STAGES;
use p4lru_obs::ObsConfig;
use p4lru_server::client::Client;
use p4lru_server::expose::SampleLine;
use p4lru_server::server::{Server, ServerConfig};

fn obs_config() -> ServerConfig {
    ServerConfig {
        items: 2_000,
        units_per_shard: 128,
        shards: 2,
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        // Trace every request (production default samples 1 in 64) so the
        // assertions below can count ops exactly.
        obs: ObsConfig {
            sample_every: 1,
            ..ObsConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Drives a deterministic little workload over one connection: GET hits,
/// absent GETs, SETs, DELs — every op-type and every outcome path.
fn drive(client: &mut Client) {
    for key in 0..50 {
        client.get(key).unwrap().expect("populated key");
    }
    for key in 0..10 {
        client.get(1_000_000 + key).unwrap();
    }
    for key in 0..20 {
        client.set(key, b"rewritten").unwrap();
    }
    for key in 40..45 {
        client.del(key).unwrap();
    }
}

/// A parsed exposition sample: metric name, sorted labels, value.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses (and validates) the Prometheus text format: every line must be a
/// well-formed `# HELP`/`# TYPE` comment or a `name{labels} value` sample.
fn parse_exposition(text: &str) -> (Vec<Sample>, BTreeMap<String, String>) {
    let mut samples = Vec::new();
    let mut types = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kw, rest) = rest.split_once(' ').expect("comment keyword");
            assert!(kw == "HELP" || kw == "TYPE", "unknown comment {line:?}");
            let (name, detail) = rest.split_once(' ').expect("comment body");
            assert!(valid_metric_name(name), "bad name in {line:?}");
            if kw == "TYPE" {
                assert!(
                    ["counter", "gauge", "histogram"].contains(&detail),
                    "bad type in {line:?}"
                );
                types.insert(name.to_owned(), detail.to_owned());
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            v => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value {line:?}: {e}")),
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let mut labels = BTreeMap::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(valid_metric_name(k), "bad label name in {line:?}");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("quoted label value");
                    labels.insert(k.to_owned(), v.to_owned());
                }
                (name.to_owned(), labels)
            }
        };
        assert!(valid_metric_name(&name), "bad metric name in {line:?}");
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    (samples, types)
}

fn sum_of(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

#[test]
fn metrics_endpoint_matches_stats_and_is_valid_exposition() {
    let server = Server::spawn(&obs_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    drive(&mut client);

    // The workload is quiesced (every reply read back), so a STATS request
    // and a /metrics scrape now see the same counters.
    let stats = client.stats().unwrap();
    let addr = server.metrics_addr().expect("metrics endpoint configured");
    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert!(status.contains("200"), "{status}");

    let (samples, types) = parse_exposition(&body);
    assert_eq!(
        types.get("p4lru_hits_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("p4lru_store_len").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types.get("p4lru_request_seconds").map(String::as_str),
        Some("histogram")
    );

    // Scalar families agree with STATS exactly.
    let t = &stats.totals;
    assert_eq!(sum_of(&samples, "p4lru_hits_total") as u64, t.hits);
    assert_eq!(sum_of(&samples, "p4lru_misses_total") as u64, t.misses);
    assert_eq!(sum_of(&samples, "p4lru_absent_total") as u64, t.absent);
    assert_eq!(sum_of(&samples, "p4lru_sets_total") as u64, t.sets);
    assert_eq!(sum_of(&samples, "p4lru_dels_total") as u64, t.dels);
    assert_eq!(sum_of(&samples, "p4lru_store_len") as u64, t.store_len);

    // The index families: the height gauge reflects a populated B+Tree
    // (totals take the max across shards, samples are per-shard), and the
    // descent-hits counter sums across shards into the STATS total.
    assert_eq!(
        types.get("p4lru_index_height").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types
            .get("p4lru_index_descent_hits_total")
            .map(String::as_str),
        Some("counter")
    );
    let heights: Vec<u64> = samples
        .iter()
        .filter(|s| s.name == "p4lru_index_height")
        .map(|s| s.value as u64)
        .collect();
    assert_eq!(heights.len(), 2, "one height gauge per shard");
    assert!(heights.iter().all(|&h| h >= 1), "{heights:?}");
    assert_eq!(heights.iter().copied().max().unwrap(), t.index_height);
    assert_eq!(
        sum_of(&samples, "p4lru_index_descent_hits_total") as u64,
        t.index_descent_hits
    );
    assert!(
        t.index_descent_hits > 0,
        "sequential misses over 0..50 share leaves, so the descent cache hits"
    );

    // The latency histograms agree with the STATS latency summaries: the
    // per-(shard, op) _count lines sum to the summary counts.
    let count_for = |op: &str| -> u64 {
        samples
            .iter()
            .filter(|s| {
                s.name == "p4lru_request_seconds_count"
                    && s.labels.get("op").map(String::as_str) == Some(op)
            })
            .map(|s| s.value as u64)
            .sum()
    };
    assert_eq!(count_for("get"), t.get_latency.count);
    assert_eq!(count_for("set"), t.set_latency.count);
    assert_eq!(count_for("del"), t.del_latency.count);
    assert!(t.get_latency.count > 0, "traced GETs must be recorded");

    // Histogram buckets: per label-set (minus `le`), cumulative counts are
    // non-decreasing in emission order and the +Inf bucket equals _count.
    let mut by_series: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    for s in &samples {
        if !s.name.ends_with("_bucket") {
            continue;
        }
        let mut key_labels = s.labels.clone();
        let le = key_labels.remove("le").expect("bucket has le");
        let key = format!("{}{:?}", s.name, key_labels);
        by_series.entry(key).or_default().push((le, s.value));
    }
    assert!(!by_series.is_empty(), "no histogram buckets rendered");
    for (key, buckets) in &by_series {
        for pair in buckets.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{key}: buckets not cumulative: {buckets:?}"
            );
        }
        let (last_le, last_v) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf", "{key}: last bucket must be +Inf");
        let name = key.split('{').next().unwrap().trim_end_matches("_bucket");
        // Matching _count sample (same labels minus le).
        let want_labels: BTreeMap<String, String> = {
            let mut l = BTreeMap::new();
            if let Some(series) = samples.iter().find(|s| {
                s.name == format!("{name}_bucket")
                    && format!("{}{:?}", s.name, {
                        let mut k = s.labels.clone();
                        k.remove("le");
                        k
                    }) == *key
            }) {
                l = series.labels.clone();
                l.remove("le");
            }
            l
        };
        let count = samples
            .iter()
            .find(|s| s.name == format!("{name}_count") && s.labels == want_labels)
            .unwrap_or_else(|| panic!("{key}: no _count sample"));
        assert_eq!(*last_v, count.value, "{key}: +Inf != _count");
    }

    // Stage summaries ride on STATS, in pipeline order, decode excluded.
    assert_eq!(stats.stages.len(), 7);
    assert_eq!(stats.stages[0].stage, "route");
    assert!(stats.stages.iter().all(|s| s.count > 0));

    // Unknown paths 404, bad methods 405 — the endpoint is not a file server.
    let (status, _) = http_get(addr, "/nope").unwrap();
    assert!(status.contains("404"), "{status}");

    drop(client);
    server.shutdown();
}

#[test]
fn slow_op_traces_cover_all_eight_stages_in_order() {
    let server = Server::spawn(&ServerConfig {
        obs: ObsConfig {
            slow_op_us: 0, // every request is a "slow op"
            sample_every: 1,
            ..ObsConfig::default()
        },
        ..obs_config()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for key in 0..10 {
        client.get(key).unwrap();
        client.set(key, b"x").unwrap();
    }
    drop(client);

    // The pump finishes a trace just *after* the flush that answered the
    // client, so the last op's trace may still be a few instructions away.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.tracer().finished_count() < 20 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    let slow = server.tracer().slow_traces();
    assert!(slow.len() >= 10, "threshold 0 makes every op slow");
    for trace in &slow {
        let mut prev = 0;
        for stage in STAGES {
            let at = trace.stamp_ns(stage);
            assert!(at > 0, "{stage:?} unstamped in {trace:?}");
            assert!(
                at >= prev,
                "{stage:?} went backwards in {}",
                trace.breakdown()
            );
            prev = at;
        }
        assert!((trace.shard as usize) < 2);
        let line = trace.breakdown();
        assert!(line.contains("shard="), "{line}");
        assert!(line.contains(" flush+"), "{line}");
    }
    assert_eq!(server.tracer().slow_op_count() as usize, {
        // Every keyed op was traced and slow (STATS/inline ops are not).
        20
    });
    server.shutdown();
}

#[test]
fn disabled_tracing_serves_metrics_without_latency_series() {
    let server = Server::spawn(&ServerConfig {
        obs: ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        },
        ..obs_config()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    drive(&mut client);
    let stats = client.stats().unwrap();
    assert!(stats.stages.is_empty(), "no stage summaries when off");
    assert_eq!(stats.totals.get_latency.count, 0);
    assert!(stats.totals.gets > 0, "counters still work");

    let addr = server.metrics_addr().unwrap();
    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert!(status.contains("200"));
    assert!(!body.contains("p4lru_stage_seconds"));
    assert!(!body.contains("p4lru_traced_requests_total"));
    assert!(body.contains("p4lru_hits_total"));

    drop(client);
    assert_eq!(server.tracer().finished_count(), 0);
    server.shutdown();
}

#[test]
fn sampler_writes_monotone_jsonl_lines() {
    let path = std::env::temp_dir().join(format!("p4lru-obs-sampler-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::spawn(&ServerConfig {
        sample_interval: Some(Duration::from_millis(20)),
        sample_path: Some(path.clone()),
        ..obs_config()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    drive(&mut client);
    std::thread::sleep(Duration::from_millis(70));
    // A second burst the later samples must reflect (fresh keys — `drive`
    // deleted some of the ones it touched).
    for key in 100..170 {
        client.get(key).unwrap().expect("populated key");
    }
    drop(client);
    server.shutdown(); // fires the sampler's final flush tick

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<SampleLine> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e:?}")))
        .collect();
    assert!(lines.len() >= 2, "interval ticks plus the shutdown flush");
    for pair in lines.windows(2) {
        assert!(pair[1].tick > pair[0].tick, "ticks advance");
        assert!(pair[1].gets >= pair[0].gets, "cumulative GETs are monotone");
        assert!(pair[1].sets >= pair[0].sets);
        assert_eq!(
            pair[1].gets_delta,
            pair[1].gets - pair[0].gets,
            "delta is the difference of consecutive cumulatives"
        );
    }
    let last = lines.last().unwrap();
    assert_eq!(last.gets, 130, "both bursts' GETs all sampled");
    assert!(last.traced > 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn volatile_sampler_without_a_path_is_refused() {
    let err = Server::spawn(&ServerConfig {
        sample_interval: Some(Duration::from_millis(20)),
        sample_path: None,
        data_dir: None,
        ..obs_config()
    })
    .map(|s| s.shutdown())
    .expect_err("no sample path and no data dir to default into");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
