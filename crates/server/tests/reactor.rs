//! Reactor front-end integration tests (DESIGN.md §12).
//!
//! The reactor multiplexes every connection onto a fixed pool of event-loop
//! threads, but its observable contract is identical to the threads
//! front-end: per-connection responses in request order, pipelining capped
//! by the server window, SHUTDOWN honored, STATS/`/metrics` served. These
//! tests drive it with blocking clients — a thousand of them at once — so
//! any edge-triggered stall (a reply that never flushes, a read that never
//! resumes) shows up as a hang or an out-of-order reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use p4lru_kvstore::db::record_for;
use p4lru_obs::http::http_get;
use p4lru_server::client::Client;
use p4lru_server::protocol::Response;
use p4lru_server::server::{Frontend, Server, ServerConfig};

const ITEMS: u64 = 200;

fn reactor_config() -> ServerConfig {
    ServerConfig {
        items: ITEMS,
        units_per_shard: 64,
        shards: 2,
        frontend: Frontend::Reactor,
        io_threads: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn reactor_serves_pipelined_bursts_in_request_order() {
    let server = Server::spawn(&reactor_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // One deep burst mixing every opcode, no reads until the end; SETs
    // rewrite the deterministic contents so GET checks stay exact.
    let mut want = Vec::new();
    for i in 0u64..200 {
        let key = (i * 37) % ITEMS;
        match i % 3 {
            0 => {
                client.send_get(key).unwrap();
                want.push(Response::Value(record_for(key).to_vec()));
            }
            1 => {
                client.send_set(key, &record_for(key)).unwrap();
                want.push(Response::Ok);
            }
            _ => {
                client.send_get(key).unwrap();
                want.push(Response::Value(record_for(key).to_vec()));
            }
        }
    }
    client.flush().unwrap();
    for (i, want) in want.iter().enumerate() {
        assert_eq!(&client.recv().unwrap(), want, "reply {i} out of order");
    }
    let stats = server.shutdown();
    assert_eq!(stats.conns.frontend, "reactor");
    assert_eq!(stats.totals.gets + stats.totals.sets, 200);
    assert!(!stats.reactor.is_empty(), "per-io-thread loop stats");
}

#[test]
fn burst_deeper_than_the_window_backpressures_not_deadlocks() {
    let server = Server::spawn(&ServerConfig {
        pipeline_window: 4,
        ..reactor_config()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0u64..256 {
        client.send_get(i % ITEMS).unwrap();
    }
    client.flush().unwrap();
    for i in 0u64..256 {
        assert_eq!(
            client.recv().unwrap(),
            Response::Value(record_for(i % ITEMS).to_vec()),
            "reply {i}"
        );
    }
    server.shutdown();
}

#[test]
fn thousand_concurrent_connections_hold_and_answer_in_order() {
    const CONNS_PER_THREAD: usize = 125;
    const THREADS: usize = 8;
    const OPS_PER_CONN: u64 = 16;

    let server = Server::spawn(&ServerConfig {
        max_conns: 2048,
        ..reactor_config()
    })
    .unwrap();
    let addr = server.local_addr();
    // Two rendezvous: one with every connection open (so the main thread
    // can observe the full complement holding), one releasing the load.
    let all_connected = Arc::new(Barrier::new(THREADS + 1));
    let release = Arc::new(Barrier::new(THREADS + 1));
    let ops_done = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let all_connected = Arc::clone(&all_connected);
            let release = Arc::clone(&release);
            let ops_done = Arc::clone(&ops_done);
            thread::spawn(move || {
                let mut clients: Vec<Client> = (0..CONNS_PER_THREAD)
                    .map(|_| Client::connect(addr).expect("connect"))
                    .collect();
                all_connected.wait();
                release.wait();
                // Pipeline a mixed burst on every connection, then drain
                // each in order.
                for (c, client) in clients.iter_mut().enumerate() {
                    for i in 0..OPS_PER_CONN {
                        let key = (t as u64 * 1_009 + c as u64 * 31 + i) % ITEMS;
                        if i % 4 == 3 {
                            client.send_set(key, &record_for(key)).unwrap();
                        } else {
                            client.send_get(key).unwrap();
                        }
                    }
                    client.flush().unwrap();
                }
                for (c, client) in clients.iter_mut().enumerate() {
                    for i in 0..OPS_PER_CONN {
                        let key = (t as u64 * 1_009 + c as u64 * 31 + i) % ITEMS;
                        let want = if i % 4 == 3 {
                            Response::Ok
                        } else {
                            Response::Value(record_for(key).to_vec())
                        };
                        assert_eq!(
                            client.recv().unwrap(),
                            want,
                            "thread {t} conn {c} reply {i}"
                        );
                    }
                }
                ops_done.fetch_add(CONNS_PER_THREAD as u64 * OPS_PER_CONN, Ordering::Relaxed);
            })
        })
        .collect();

    all_connected.wait();
    let held = server.stats().conns;
    assert_eq!(
        held.current,
        (THREADS * CONNS_PER_THREAD) as u64,
        "all 1000 connections in service at once"
    );
    release.wait();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let stats = server.shutdown();
    let expected_ops = ops_done.load(Ordering::Relaxed);
    assert_eq!(
        expected_ops,
        (THREADS * CONNS_PER_THREAD) as u64 * OPS_PER_CONN
    );
    assert_eq!(stats.totals.gets + stats.totals.sets, expected_ops);
    assert_eq!(
        stats.conns.accepted_total,
        (THREADS * CONNS_PER_THREAD) as u64
    );
    assert_eq!(stats.conns.rejected_total, 0);
    let loop_conns: u64 = stats.reactor.iter().map(|l| l.connections).sum();
    assert_eq!(loop_conns, 0, "every connection deregistered at the end");
}

fn rejection_past_max_conns(frontend: Frontend) {
    let server = Server::spawn(&ServerConfig {
        frontend,
        max_conns: 2,
        ..reactor_config()
    })
    .unwrap();
    let addr = server.local_addr();
    // Occupy both slots and prove they are in service.
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert!(a.get(1).unwrap().is_some());
    assert!(b.get(2).unwrap().is_some());
    // The third connection gets one protocol-level ERR frame, then EOF.
    let mut c = Client::connect(addr).unwrap();
    let err = c.get(3).expect_err("past the limit there is no service");
    let _ = err;
    let stats = server.stats();
    assert_eq!(stats.conns.frontend, frontend.name());
    assert_eq!(stats.conns.current, 2);
    assert_eq!(stats.conns.rejected_total, 1);
    // Dropping one admitted connection frees a slot for a newcomer.
    drop(a);
    let mut d = loop {
        // The gauge decrements when the server notices the close; retry
        // until the slot is visibly free.
        let mut d = Client::connect(addr).unwrap();
        match d.get(4) {
            Ok(_) => break d,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert!(d.get(5).unwrap().is_some());
    server.shutdown();
}

#[test]
fn connections_past_the_limit_get_an_err_frame_threads() {
    rejection_past_max_conns(Frontend::Threads);
}

#[test]
fn connections_past_the_limit_get_an_err_frame_reactor() {
    rejection_past_max_conns(Frontend::Reactor);
}

#[test]
fn rejected_connection_reads_the_limit_error_text() {
    let server = Server::spawn(&ServerConfig {
        max_conns: 1,
        ..reactor_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    assert!(a.get(1).unwrap().is_some());
    // Raw read: the rejected connection's single frame is a protocol ERR
    // naming the limit.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    // The reject frame may race the read; the server writes it before
    // closing, so a blocking read sees frame-then-EOF.
    assert!(p4lru_server::protocol::read_frame(&mut stream, &mut frame).unwrap());
    match Response::decode(&frame).unwrap() {
        Response::Err(msg) => assert!(
            msg.contains("connection limit"),
            "rejection must say why: {msg:?}"
        ),
        other => panic!("expected ERR, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_opcode_stops_a_reactor_server() {
    let server = Server::spawn(&reactor_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Queue work ahead of SHUTDOWN: everything before the ack must still
    // answer, in order, before the server stops.
    client.send_get(7).unwrap();
    client.send_set(9, &record_for(9)).unwrap();
    client.flush().unwrap();
    assert_eq!(
        client.recv().unwrap(),
        Response::Value(record_for(7).to_vec())
    );
    assert_eq!(client.recv().unwrap(), Response::Ok);
    client.shutdown().unwrap();
    drop(client);
    let stats = server.wait(); // returns only if the opcode stopped it
    assert_eq!(stats.totals.gets, 1);
    assert_eq!(stats.totals.sets, 1);
}

#[test]
fn metrics_endpoint_exposes_connection_and_reactor_families() {
    let server = Server::spawn(&ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        max_conns: 1,
        ..reactor_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let mut a = Client::connect(addr).unwrap();
    assert!(a.get(1).unwrap().is_some());
    // Force one rejection so the counter is nonzero in the scrape.
    let mut c = Client::connect(addr).unwrap();
    let _ = c.get(2).expect_err("second connection is over the limit");

    let metrics = server.metrics_addr().expect("metrics endpoint configured");
    let (status, body) = http_get(metrics, "/metrics").unwrap();
    assert!(status.contains("200"), "{status}");
    for family in [
        "p4lru_connections{frontend=\"reactor\"} 1",
        "p4lru_connections_total{frontend=\"reactor\"} 1",
        "p4lru_conn_rejected_total{frontend=\"reactor\"} 1",
        "p4lru_reactor_turns_total{io_thread=\"0\"}",
        "p4lru_reactor_turns_total{io_thread=\"1\"}",
        "p4lru_reactor_events_total{io_thread=\"0\"}",
        "p4lru_reactor_wakeups_total{io_thread=\"0\"}",
        "p4lru_reactor_messages_total{io_thread=\"0\"}",
        "p4lru_reactor_connections{io_thread=",
    ] {
        assert!(body.contains(family), "missing {family:?} in:\n{body}");
    }
    server.shutdown();
}
