//! Replication wire-format hostility tests (DESIGN.md §14).
//!
//! Two directions of distrust:
//!
//! * the **primary's listener** is poked with garbage (client-protocol
//!   magic, torn headers, malformed pulls, out-of-range shards, stale
//!   cursors) and must answer each with a clean close or an ERR response —
//!   never damage, never a hang;
//! * a **real follower** is pointed at a *scripted fake primary* that ships
//!   a CRC-corrupt batch, a torn (mid-record truncated) batch, and a
//!   wrong-position batch before finally behaving. Every bad shipment must
//!   be rejected wholesale — follower state untouched, cursor unmoved —
//!   and the good shipment must then apply cleanly on a fresh connection.

#![cfg(unix)]

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p4lru_durable::record::encode_into;
use p4lru_durable::WalOp;
use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;
use p4lru_server::repl::{
    read_repl_frame, write_repl_frame, PullRequest, PullResponse, ReplConfig, REPL_MAGIC,
};
use p4lru_server::server::{Server, ServerConfig};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "p4lru-replwire-{label}-{}-{:x}",
            std::process::id(),
            &raw const label as usize
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn one_shard_config(data_dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 1,
        items: 50,
        units_per_shard: 64,
        data_dir: Some(data_dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn pull(stream: &mut TcpStream, req: &PullRequest) -> PullResponse {
    let mut buf = Vec::new();
    req.encode(&mut buf);
    write_repl_frame(stream, &buf).unwrap();
    let mut frame = Vec::new();
    assert!(
        read_repl_frame(stream, &mut frame).unwrap(),
        "listener answered"
    );
    PullResponse::decode(&frame).unwrap()
}

#[test]
fn repl_listener_survives_garbage_and_answers_stale_pulls() {
    let tmp = TempDir::new("listener");
    let mut config = one_shard_config(&tmp.0);
    config.repl = Some(ReplConfig {
        listen: Some("127.0.0.1:0".to_owned()),
        ..ReplConfig::default()
    });
    let server = Server::spawn(&config).unwrap();
    let repl_addr = server.repl_addr().unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for key in 500..510u64 {
        c.set(key, &record_for(key)).unwrap();
    }

    let mut s = TcpStream::connect(repl_addr).unwrap();

    // A fresh cursor sees the ten records, CRC-valid and dense.
    match pull(
        &mut s,
        &PullRequest {
            shard: 0,
            from_seq: 1,
            durable_seq: 0,
            max_bytes: 1 << 20,
        },
    ) {
        PullResponse::Records {
            first_seq,
            last_seq,
            bytes,
        } => {
            assert_eq!((first_seq, last_seq), (1, 10));
            let records = p4lru_durable::reader::decode_batch(&bytes, 1).unwrap();
            assert_eq!(records.len(), 10);
        }
        other => panic!("expected records, got {other:?}"),
    }

    // A stale cursor (past the tail) is UP_TO_DATE, not an error and not a
    // replay from the wrong position.
    assert_eq!(
        pull(
            &mut s,
            &PullRequest {
                shard: 0,
                from_seq: 10_000,
                durable_seq: 9_999,
                max_bytes: 1 << 20,
            },
        ),
        PullResponse::UpToDate
    );

    // An out-of-range shard and a malformed payload each get an ERR frame
    // on a connection that stays usable.
    assert!(matches!(
        pull(
            &mut s,
            &PullRequest {
                shard: 7,
                from_seq: 1,
                durable_seq: 0,
                max_bytes: 1 << 20,
            },
        ),
        PullResponse::Err(_)
    ));
    write_repl_frame(&mut s, &[0xEE, 1, 2, 3]).unwrap();
    let mut frame = Vec::new();
    assert!(read_repl_frame(&mut s, &mut frame).unwrap());
    assert!(matches!(
        PullResponse::decode(&frame).unwrap(),
        PullResponse::Err(_)
    ));

    // Client-protocol magic on the replication port: closed, fast.
    let mut wrong = TcpStream::connect(repl_addr).unwrap();
    std::io::Write::write_all(&mut wrong, &[0xB1, 4, 0, 0, 0, 1, 2, 3, 4]).unwrap();
    wrong
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = [0u8; 16];
    assert_eq!(wrong.read(&mut sink).unwrap_or(0), 0, "peer closed");

    // A torn header (connection dropped mid-frame) leaves no mark: the
    // next connection is served normally.
    let mut torn = TcpStream::connect(repl_addr).unwrap();
    std::io::Write::write_all(&mut torn, &[REPL_MAGIC, 25, 0]).unwrap();
    drop(torn);
    let mut again = TcpStream::connect(repl_addr).unwrap();
    assert!(matches!(
        pull(
            &mut again,
            &PullRequest {
                shard: 0,
                from_seq: 11,
                durable_seq: 10,
                max_bytes: 1 << 20,
            },
        ),
        PullResponse::UpToDate
    ));

    server.shutdown();
}

/// Encodes `n` SET records starting at sequence `first` in on-disk WAL
/// framing — exactly what an honest primary would ship.
fn good_batch(first: u64, n: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    for seq in first..first + n {
        encode_into(
            &mut bytes,
            seq,
            &WalOp::Set {
                key: 9_000 + seq,
                record: record_for(9_000 + seq),
            },
        );
    }
    bytes
}

/// A scripted fake primary: each accepted connection serves shard 0's first
/// pull from the script (corrupt CRC → torn record → wrong position → good
/// batch), then UP_TO_DATE forever. A real follower must reject the first
/// three wholesale and apply the fourth.
fn spawn_scripted_primary() -> (SocketAddr, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conns = Arc::new(AtomicU64::new(0));
    let conns_out = Arc::clone(&conns);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let conn = conns.fetch_add(1, Ordering::SeqCst);
            let mut frame = Vec::new();
            let mut out = Vec::new();
            let mut served_records = false;
            while let Ok(true) = read_repl_frame(&mut stream, &mut frame) {
                let Ok(req) = PullRequest::decode(&frame) else {
                    break;
                };
                let response = if served_records || req.from_seq > 3 {
                    PullResponse::UpToDate
                } else {
                    served_records = true;
                    match conn {
                        0 => {
                            // CRC-corrupt: valid framing, one flipped
                            // payload byte.
                            let mut bytes = good_batch(req.from_seq, 3);
                            bytes[12] ^= 0xFF;
                            PullResponse::Records {
                                first_seq: req.from_seq,
                                last_seq: req.from_seq + 2,
                                bytes,
                            }
                        }
                        1 => {
                            // Torn: the last record is cut mid-payload, the
                            // way a crashed primary's tail would look.
                            let mut bytes = good_batch(req.from_seq, 3);
                            bytes.truncate(bytes.len() - 7);
                            PullResponse::Records {
                                first_seq: req.from_seq,
                                last_seq: req.from_seq + 2,
                                bytes,
                            }
                        }
                        2 => {
                            // Wrong position: intact records, but not the
                            // run the follower asked for.
                            PullResponse::Records {
                                first_seq: req.from_seq + 5,
                                last_seq: req.from_seq + 7,
                                bytes: good_batch(req.from_seq + 5, 3),
                            }
                        }
                        _ => PullResponse::Records {
                            first_seq: req.from_seq,
                            last_seq: req.from_seq + 2,
                            bytes: good_batch(req.from_seq, 3),
                        },
                    }
                };
                response.encode(&mut out);
                if write_repl_frame(&mut stream, &out).is_err() {
                    break;
                }
            }
        }
    });
    (addr, conns_out)
}

#[test]
fn corrupt_torn_and_misplaced_shipments_never_damage_the_follower() {
    let (fake_primary, conns) = spawn_scripted_primary();
    let tmp = TempDir::new("hostile");
    let mut config = one_shard_config(&tmp.0);
    config.repl = Some(ReplConfig {
        follow: Some(fake_primary.to_string()),
        // Far above the scripted rejection phase: this test is about
        // validation, not promotion.
        failover: Duration::from_secs(30),
        ..ReplConfig::default()
    });
    let follower = Server::spawn(&config).unwrap();
    let mut f = Client::connect(follower.local_addr()).unwrap();

    // The follower must chew through the three hostile connections and
    // apply the fourth, honest one.
    let deadline = Instant::now() + Duration::from_secs(10);
    let cluster = loop {
        let report = f.stats().unwrap();
        let cluster = report.cluster.clone().unwrap();
        if cluster.records_applied == 3 {
            break cluster;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up: {cluster:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    assert_eq!(
        cluster.pull_rejects, 3,
        "each hostile shipment counts one wholesale rejection"
    );
    assert_eq!(cluster.watermarks, vec![3]);
    assert_eq!(cluster.snapshots_installed, 0);
    assert!(
        conns.load(Ordering::SeqCst) >= 4,
        "three reconnects happened"
    );

    // The store holds exactly the honest records — nothing from the
    // corrupt, torn, or misplaced shipments leaked in.
    for seq in 1..=3u64 {
        let key = 9_000 + seq;
        assert_eq!(
            f.get(key).unwrap().as_deref(),
            Some(&record_for(key)[..]),
            "honest record {seq} applied"
        );
    }
    assert_eq!(
        f.get(9_000 + 6).unwrap(),
        None,
        "misplaced run never applied"
    );

    // And the follower remains a healthy replica: no spurious promotion.
    assert_eq!(cluster.role, "follower");
    assert_eq!(cluster.promotions, 0);

    follower.shutdown();
}
