//! A blocking protocol client over buffered framed I/O.
//!
//! The classic methods ([`Client::get`], [`Client::set`], …) are one
//! request in flight: send, flush, wait. The pipelined surface
//! ([`Client::send_get`]/[`Client::send_set`]/[`Client::send_del`] +
//! [`Client::flush`] + [`Client::recv`]) queues many requests per `write`
//! syscall and reads the in-order replies back later — the server
//! guarantees responses arrive in request order, so the caller only needs
//! to remember what it sent.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use p4lru_obs::SpanContext;

use crate::metrics::StatsReport;
use crate::protocol::{
    encode_del, encode_get, encode_set, FrameReader, FrameWriter, Request, Response,
};

/// A blocking protocol client. Reused buffers keep the per-request cost to
/// the syscalls, and pipelining amortizes even those.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    frame: Vec<u8>,
    payload: Vec<u8>,
    /// In-band trace context to attach to the next queued request
    /// ([`Client::set_next_span`]); consumed by one send.
    next_span: Option<SpanContext>,
}

fn unexpected(what: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what}: unexpected response {got:?}"),
    )
}

impl Client {
    /// Connects (with `TCP_NODELAY`, as a closed-loop client needs).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::over(stream)
    }

    /// Connects with a connect deadline and per-operation read/write
    /// timeouts — the health prober's constructor, where a dead peer must
    /// cost a bounded wait, never a blocked thread.
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::over(stream)
    }

    fn over(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(stream),
            writer: FrameWriter::new(write_half),
            frame: Vec::new(),
            payload: Vec::new(),
            next_span: None,
        })
    }

    /// Attaches an in-band trace context to the next queued request (one
    /// request only — a span describes one hop of one request). Routers
    /// and the tier proxy use this to forward the context they received.
    pub fn set_next_span(&mut self, span: Option<SpanContext>) {
        self.next_span = span;
    }

    fn write_payload(&mut self) -> io::Result<()> {
        match self.next_span.take() {
            Some(span) => self.writer.write_frame_spanned(&self.payload, &span),
            None => self.writer.write_frame(&self.payload),
        }
    }

    /// Queues a GET without flushing (pipelined path).
    pub fn send_get(&mut self, key: u64) -> io::Result<()> {
        encode_get(key, &mut self.payload);
        self.write_payload()
    }

    /// Queues a SET without flushing (pipelined path; borrows the value, no
    /// per-request allocation).
    pub fn send_set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        encode_set(key, value, &mut self.payload);
        self.write_payload()
    }

    /// Queues a DEL without flushing (pipelined path).
    pub fn send_del(&mut self, key: u64) -> io::Result<()> {
        encode_del(key, &mut self.payload);
        self.write_payload()
    }

    /// Queues any request without flushing.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        request.encode(&mut self.payload);
        self.write_payload()
    }

    /// Pushes every queued request onto the wire.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Reads the next in-order response, flushing any queued requests first
    /// (so a recv can never deadlock against the client's own buffer).
    pub fn recv(&mut self) -> io::Result<Response> {
        if self.writer.pending() > 0 {
            self.writer.flush()?;
        }
        if !self.reader.read_frame(&mut self.frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ));
        }
        Ok(Response::decode(&self.frame)?)
    }

    fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Reads a key's value.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Writes a key's value.
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        self.send_set(key, value)?;
        match self.recv()? {
            Response::Ok => Ok(()),
            other => Err(unexpected("SET", &other)),
        }
    }

    /// Deletes a key, returning whether it existed.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        match self.call(&Request::Del { key })? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(unexpected("DEL", &other)),
        }
    }

    /// Fetches the raw STATS JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::StatsJson(json) => Ok(json),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Fetches and parses the STATS report.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        let json = self.stats_json()?;
        serde_json::from_str(&json).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad STATS JSON: {e:?}"))
        })
    }

    /// Asks the server to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }

    /// One liveness round trip, returning its RTT. Answered inline by the
    /// server (no shard dispatch), so the RTT measures connection + server
    /// front-of-pipe health, not cache load.
    pub fn ping(&mut self) -> io::Result<Duration> {
        let start = Instant::now();
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(start.elapsed()),
            other => Err(unexpected("PING", &other)),
        }
    }
}
