//! A minimal blocking client: one TCP connection, one request in flight.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::metrics::StatsReport;
use crate::protocol::{read_frame, write_frame, Request, Response};

/// A blocking protocol client. Reused buffers keep the per-request cost to
/// the two syscalls.
pub struct Client {
    stream: TcpStream,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

fn unexpected(what: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what}: unexpected response {got:?}"),
    )
}

impl Client {
    /// Connects (with `TCP_NODELAY`, as a closed-loop client needs).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            frame: Vec::new(),
            payload: Vec::new(),
        })
    }

    fn call(&mut self, request: &Request) -> io::Result<Response> {
        request.encode(&mut self.payload);
        write_frame(&mut self.stream, &self.payload)?;
        if !read_frame(&mut self.stream, &mut self.frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ));
        }
        Ok(Response::decode(&self.frame)?)
    }

    /// Reads a key's value.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Writes a key's value.
    pub fn set(&mut self, key: u64, value: &[u8]) -> io::Result<()> {
        match self.call(&Request::Set {
            key,
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("SET", &other)),
        }
    }

    /// Deletes a key, returning whether it existed.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        match self.call(&Request::Del { key })? {
            Response::Ok => Ok(true),
            Response::NotFound => Ok(false),
            other => Err(unexpected("DEL", &other)),
        }
    }

    /// Fetches the raw STATS JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::StatsJson(json) => Ok(json),
            other => Err(unexpected("STATS", &other)),
        }
    }

    /// Fetches and parses the STATS report.
    pub fn stats(&mut self) -> io::Result<StatsReport> {
        let json = self.stats_json()?;
        serde_json::from_str(&json).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad STATS JSON: {e:?}"))
        })
    }

    /// Asks the server to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("SHUTDOWN", &other)),
        }
    }
}
