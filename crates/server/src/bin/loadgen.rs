//! The closed-loop benchmark client: replays a YCSB workload against a
//! running `p4lru_serverd`, prints throughput and latency percentiles, and
//! writes a `FigureResult`-shaped JSON file for the report tooling.
//!
//! Crash-recovery harness duty (DESIGN.md §8): `--crash-ok --acked-log`
//! keeps loading while the server is kill-9'd and records every
//! acknowledged SET; after a restart, `--verify-acked` replays that log and
//! fails if any acknowledged write was lost.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use p4lru_kvstore::db::record_for;
use p4lru_server::client::Client;
use p4lru_server::loadgen::{run, to_figure_json, LoadgenConfig};
use p4lru_server::openloop::{run_open_loop, sweep_to_figure_json, OpenLoopConfig};

const USAGE: &str = "\
loadgen — closed-loop YCSB benchmark for p4lru_serverd

USAGE: loadgen [OPTIONS]

OPTIONS:
  --addr <host:port>     server address          [default: 127.0.0.1:4190]
  --threads <n>          worker threads          [default: 4]
  --seconds <s>          run duration            [default: 5]
  --items <n>            YCSB key-space size     [default: 100000]
  --alpha <a>            Zipf skew               [default: 0.9]
  --read-fraction <f>    fraction of reads       [default: 0.95]
  --pipeline <depth>     in-flight requests per connection; 1 = closed loop
                         [default: 1]
  --seed <n>             workload seed           [default: 4269]

OPEN-LOOP MODE (coordinated-omission-safe; --rate switches it on):
  --rate <ops/s>         offered load, paced by a fixed schedule; latency is
                         measured from each op's *intended* send instant
  --conns <n>            connections to hold open   [default: 64]
  --io-threads <n>       client-side event-loop threads [default: 2]
  --open-window <n>      max in-flight ops per connection [default: 32]

  --out <path>           write FigureResult JSON [default: results/server_bench.json]
  --no-out               skip writing the JSON file
  --no-verify            skip read verification
  --shutdown             send SHUTDOWN to the server afterwards
  --expect-hits          exit nonzero unless the server reports cache hits
  --crash-ok             a worker hitting a connection error ends its run
                         instead of failing (server kill tests)
  --acked-log <path>     write every acknowledged SET key to this file
                         (one decimal key per line)
  --verify-acked <path>  skip the load phase; GET every key in the file and
                         exit nonzero if any acknowledged write was lost
  -h, --help             print this help
";

struct Args {
    config: LoadgenConfig,
    out: Option<PathBuf>,
    shutdown: bool,
    expect_hits: bool,
    acked_log: Option<PathBuf>,
    verify_acked: Option<PathBuf>,
    /// `Some(rate)` switches to the open-loop generator.
    rate: Option<f64>,
    conns: usize,
    io_threads: usize,
    open_window: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: LoadgenConfig::default(),
        out: Some(PathBuf::from("results/server_bench.json")),
        shutdown: false,
        expect_hits: false,
        acked_log: None,
        verify_acked: None,
        rate: None,
        conns: 64,
        io_threads: 2,
        open_window: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--no-out" => {
                args.out = None;
                continue;
            }
            "--no-verify" => {
                args.config.verify = false;
                continue;
            }
            "--shutdown" => {
                args.shutdown = true;
                continue;
            }
            "--expect-hits" => {
                args.expect_hits = true;
                continue;
            }
            "--crash-ok" => {
                args.config.crash_ok = true;
                continue;
            }
            _ => {}
        }
        const VALUE_FLAGS: &[&str] = &[
            "--addr",
            "--threads",
            "--seconds",
            "--items",
            "--alpha",
            "--read-fraction",
            "--pipeline",
            "--seed",
            "--out",
            "--acked-log",
            "--verify-acked",
            "--rate",
            "--conns",
            "--io-threads",
            "--open-window",
        ];
        if !VALUE_FLAGS.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag}"));
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        fn bad<E: std::fmt::Debug>(flag: &str) -> impl Fn(E) -> String + '_ {
            move |e| format!("bad value for {flag}: {e:?}")
        }
        match flag.as_str() {
            "--addr" => args.config.addr = value,
            "--threads" => args.config.threads = value.parse().map_err(bad(&flag))?,
            "--seconds" => args.config.seconds = value.parse().map_err(bad(&flag))?,
            "--items" => args.config.items = value.parse().map_err(bad(&flag))?,
            "--alpha" => args.config.alpha = value.parse().map_err(bad(&flag))?,
            "--read-fraction" => args.config.read_fraction = value.parse().map_err(bad(&flag))?,
            "--pipeline" => args.config.pipeline = value.parse().map_err(bad(&flag))?,
            "--seed" => args.config.seed = value.parse().map_err(bad(&flag))?,
            "--out" => args.out = Some(PathBuf::from(value)),
            "--acked-log" => {
                args.config.record_acked = true;
                args.acked_log = Some(PathBuf::from(value));
            }
            "--verify-acked" => args.verify_acked = Some(PathBuf::from(value)),
            "--rate" => args.rate = Some(value.parse().map_err(bad(&flag))?),
            "--conns" => args.conns = value.parse().map_err(bad(&flag))?,
            "--io-threads" => args.io_threads = value.parse().map_err(bad(&flag))?,
            "--open-window" => args.open_window = value.parse().map_err(bad(&flag))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// GETs every key the acked log names and checks its contents. Any missing
/// or mismatched key is a lost acknowledged write — the one thing a durable
/// server must never do.
fn verify_acked(addr: &str, path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut keys: Vec<u64> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        keys.push(
            line.trim()
                .parse()
                .map_err(|e| format!("bad key {line:?} in {}: {e:?}", path.display()))?,
        );
    }
    // The log may name a key several times (rewrites); one check suffices.
    keys.sort_unstable();
    keys.dedup();
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let (mut verified, mut missing, mut mismatched) = (0u64, 0u64, 0u64);
    for &key in &keys {
        match client
            .get(key)
            .map_err(|e| format!("GET {key} failed: {e}"))?
        {
            Some(value) if value == record_for(key) => verified += 1,
            Some(_) => mismatched += 1,
            None => missing += 1,
        }
    }
    println!(
        "  verify-acked: {verified} verified, {missing} missing, {mismatched} mismatched \
         (of {} distinct acked keys)",
        keys.len()
    );
    if missing > 0 || mismatched > 0 {
        return Err(format!(
            "{missing} acknowledged writes missing and {mismatched} mismatched after recovery"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let summary = if let Some(path) = &args.verify_acked {
        println!(
            "loadgen: verifying acked writes from {} against {}",
            path.display(),
            args.config.addr
        );
        if let Err(e) = verify_acked(&args.config.addr, path) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        None
    } else if let Some(rate) = args.rate {
        let open = OpenLoopConfig {
            addr: args.config.addr.clone(),
            conns: args.conns,
            rate,
            seconds: args.config.seconds,
            items: args.config.items,
            alpha: args.config.alpha,
            read_fraction: args.config.read_fraction,
            seed: args.config.seed,
            io_threads: args.io_threads,
            window: args.open_window,
        };
        println!(
            "loadgen: open loop, {} conns at {:.0} ops/s offered for {}s against {}",
            open.conns, open.rate, open.seconds, open.addr
        );
        let point = match run_open_loop(&open) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: open-loop run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  {} ops ({:.0} achieved of {:.0} offered ops/s): p50 {:.1} us, \
             p95 {:.1} us, p99 {:.1} us (CO-safe), max send lag {} us",
            point.ops,
            point.achieved_ops_s,
            point.offered_ops_s,
            point.p50_us,
            point.p95_us,
            point.p99_us,
            point.max_send_lag_us
        );
        if point.aborted_conns > 0 {
            eprintln!(
                "warning: {} connections did not drain cleanly",
                point.aborted_conns
            );
        }
        if point.not_found > 0 || point.corrupt > 0 {
            eprintln!(
                "warning: {} reads found nothing, {} reads mismatched",
                point.not_found, point.corrupt
            );
        }
        // The open-loop figure gets its own default file so a closed-loop
        // figure written earlier survives.
        let out = match &args.out {
            Some(p) if p.as_path() == Path::new("results/server_bench.json") => {
                Some(PathBuf::from("results/server_openloop.json"))
            }
            other => other.clone(),
        };
        if let Some(out) = out {
            if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
            let json = sweep_to_figure_json(&open, std::slice::from_ref(&point), &[]);
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", out.display());
        }
        None
    } else {
        println!(
            "loadgen: {} threads x {}s against {} (items={}, alpha={}, read_fraction={}, pipeline={})",
            args.config.threads,
            args.config.seconds,
            args.config.addr,
            args.config.items,
            args.config.alpha,
            args.config.read_fraction,
            args.config.pipeline
        );
        let summary = match run(&args.config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: loadgen run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  {} ops in {:.2}s: {:.0} ops/s, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
            summary.ops,
            summary.elapsed_s,
            summary.throughput_ops_s,
            summary.p50_us,
            summary.p95_us,
            summary.p99_us
        );
        if summary.not_found > 0 || summary.corrupt > 0 {
            eprintln!(
                "warning: {} reads found nothing, {} reads mismatched",
                summary.not_found, summary.corrupt
            );
        }
        if summary.aborted_workers > 0 {
            println!(
                "  {} workers stopped early on connection errors (--crash-ok)",
                summary.aborted_workers
            );
        }
        if let Some(path) = &args.acked_log {
            let mut text = String::with_capacity(summary.acked_sets.len() * 8);
            for key in &summary.acked_sets {
                text.push_str(&key.to_string());
                text.push('\n');
            }
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "  logged {} acked SETs to {}",
                summary.acked_sets.len(),
                path.display()
            );
        }
        Some(summary)
    };

    // One extra connection for STATS (and SHUTDOWN, if asked).
    let mut notes = Vec::new();
    let mut hits = None;
    match Client::connect(&*args.config.addr) {
        Ok(mut control) => {
            match control.stats() {
                Ok(stats) => {
                    let t = &stats.totals;
                    println!(
                        "  server: gets={} hits={} misses={} absent={} hit_rate={:.3} store_len={}",
                        t.gets, t.hits, t.misses, t.absent, t.hit_rate, t.store_len
                    );
                    if t.batches > 0 {
                        println!(
                            "  batching: batches={} mean_batch={:.2} max_batch={} queue_depth={}",
                            t.batches, t.batch_mean, t.batch_max, t.queue_depth
                        );
                    }
                    if t.wal_appends > 0 || t.recovery_replayed > 0 {
                        println!(
                            "  durability: wal_appends={} wal_fsyncs={} mean_fsync_us={:.1} snapshots={} recovery_replayed={} recovery_ms={:.1}",
                            t.wal_appends,
                            t.wal_fsyncs,
                            t.wal_fsync_ns as f64 / t.wal_fsyncs.max(1) as f64 / 1e3,
                            t.snapshots,
                            t.recovery_replayed,
                            t.recovery_us as f64 / 1e3,
                        );
                    }
                    if t.get_latency.count > 0 {
                        println!(
                            "  server-side latency (decode→flush): GET p50={:.1}us p95={:.1}us p99={:.1}us, SET p99={:.1}us",
                            t.get_latency.p50_us,
                            t.get_latency.p95_us,
                            t.get_latency.p99_us,
                            t.set_latency.p99_us,
                        );
                    }
                    if !stats.stages.is_empty() {
                        let line = stats
                            .stages
                            .iter()
                            .map(|s| format!("{}={:.1}us", s.stage, s.p99_us))
                            .collect::<Vec<_>>()
                            .join(" ");
                        println!("  stage p99s: {line}");
                    }
                    hits = Some(t.hits);
                    notes.push(format!(
                        "server: shards={} gets={} hits={} misses={} absent={} sets={} evictions={} index_visits={} hit_rate={:.4} store_len={}",
                        stats.shards.len(), t.gets, t.hits, t.misses, t.absent, t.sets, t.evictions, t.index_visits, t.hit_rate, t.store_len
                    ));
                    if t.batches > 0 {
                        notes.push(format!(
                            "batching: batches={} mean_batch={:.2} max_batch={} queue_depth={}",
                            t.batches, t.batch_mean, t.batch_max, t.queue_depth
                        ));
                    }
                    if t.wal_appends > 0 {
                        notes.push(format!(
                            "durability: wal_appends={} wal_fsyncs={} snapshots={} recovery_replayed={}",
                            t.wal_appends, t.wal_fsyncs, t.snapshots, t.recovery_replayed
                        ));
                    }
                    if t.get_latency.count > 0 {
                        notes.push(format!(
                            "server_latency: get_p50_us={:.1} get_p95_us={:.1} get_p99_us={:.1} set_p99_us={:.1}",
                            t.get_latency.p50_us,
                            t.get_latency.p95_us,
                            t.get_latency.p99_us,
                            t.set_latency.p99_us
                        ));
                    }
                }
                Err(e) => eprintln!("warning: STATS failed: {e}"),
            }
            if args.shutdown {
                match control.shutdown() {
                    Ok(()) => println!("  server acknowledged shutdown"),
                    Err(e) => eprintln!("warning: SHUTDOWN failed: {e}"),
                }
            }
        }
        Err(e) => eprintln!("warning: control connection failed: {e}"),
    }

    if let Some(summary) = &summary {
        if let Some(out) = &args.out {
            if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
            let json = to_figure_json(&args.config, summary, &notes);
            if let Err(e) = std::fs::write(out, json) {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", out.display());
        }
    }

    if args.expect_hits && hits.unwrap_or(0) == 0 {
        eprintln!("error: --expect-hits: server reported no cache hits");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
