//! The server daemon: binds, serves, and exits cleanly on the SHUTDOWN
//! opcode (printing final per-shard stats).
//!
//! With `--data-dir` the daemon is durable: writes go through a per-shard
//! WAL (sync policy from `--sync`), snapshots are sealed every
//! `--snapshot-every` appends, and a restart against the same directory
//! recovers the store instead of repopulating it.
//!
//! Observability: `--metrics-addr` serves Prometheus text at `/metrics`,
//! `--slow-op-us` logs per-stage breakdowns of slow requests to stderr,
//! `--sample-interval-ms` appends stats deltas as JSONL, and `--trace off`
//! turns request stamping off entirely (the overhead-measurement baseline).

use std::process::ExitCode;
use std::time::Duration;

use p4lru_durable::SyncPolicy;
use p4lru_server::repl::ReplConfig;
use p4lru_server::server::{Server, ServerConfig, StartMode};

const USAGE: &str = "\
p4lru_serverd — sharded P4LRU cache service

USAGE: p4lru_serverd [OPTIONS]

OPTIONS:
  --addr <host:port>    listen address       [default: 127.0.0.1:4190]
  --shards <n>          shard threads        [default: 4]
  --items <n>           pre-populated keys   [default: 100000]
  --units <n>           cache units/shard    [default: 4096]
  --seed <n>            cache hash seed      [default: 0x9412C0DE]
  --window <n>          max in-flight requests per connection (pipelining)
                        [default: 64]
  --frontend <kind>     connection front-end: threads (one thread per
                        connection) | reactor (epoll event loops)
                        [default: threads]
  --io-threads <n>      reactor event-loop threads   [default: 2]
  --max-conns <n>       connection limit; connections past it get one ERR
                        frame and are closed          [default: 8192]
  --data-dir <path>     durability root (WAL + snapshots); a dir that was
                        written before is recovered, and --items is ignored
  --sync <policy>       WAL sync policy: always | every=<n> | interval=<ms>
                        [default: always]
  --snapshot-every <n>  appends between snapshots; 0 disables
                        [default: 100000]
  --commit-latency-us <n>
                        modeled device commit latency added after every
                        fsync (0 = physical device speed)  [default: 0]
  --trace <on|off>      request-lifecycle tracing  [default: on]
  --trace-sample <n>    trace one request in n (1 = every request)
                        [default: 64]
  --slow-op-us <n>      slow-op threshold (microseconds); crossing it logs
                        the request's per-stage breakdown to stderr
                        [default: 10000]
  --metrics-addr <a>    serve Prometheus text-format at http://<a>/metrics
  --sample-interval-ms <n>
                        append a stats JSONL line every n ms (to
                        --sample-file, or <data-dir>/samples.jsonl)
  --sample-file <path>  where the sampler writes its JSONL

REPLICATION (requires --data-dir; see DESIGN.md §14):
  --repl-addr <a>       serve WAL shipping to followers on this address
                        (port 0 picks a free port, printed at startup)
  --follow <host:port>  start as a follower pulling from this primary's
                        replication address
  --replicate <mode>    async (acks don't wait) | ack (mutation acks wait
                        for the follower's durable watermark) [default: async]
  --ack-timeout-ms <n>  how long an ack-mode primary holds a batch's acks
                        before erroring them          [default: 2000]
  --pull-interval-ms <n>
                        follower idle delay between pulls  [default: 5]
  --failover-ms <n>     follower promotes itself after this long without
                        reaching the primary          [default: 750]
  -h, --help            print this help
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4190".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--shards" => config.shards = value.parse().map_err(bad)?,
            "--items" => config.items = value.parse().map_err(bad)?,
            "--units" => config.units_per_shard = value.parse().map_err(bad)?,
            "--seed" => config.seed = value.parse().map_err(bad)?,
            "--window" => config.pipeline_window = value.parse().map_err(bad)?,
            "--frontend" => {
                config.frontend = value
                    .parse()
                    .map_err(|e| format!("bad value for {flag}: {e}"))?;
            }
            "--io-threads" => config.io_threads = value.parse().map_err(bad)?,
            "--max-conns" => config.max_conns = value.parse().map_err(bad)?,
            "--data-dir" => config.data_dir = Some(value.into()),
            "--sync" => {
                config.durability.sync = value
                    .parse::<SyncPolicy>()
                    .map_err(|e| format!("bad value for {flag}: {e}"))?;
            }
            "--snapshot-every" => config.durability.snapshot_every = value.parse().map_err(bad)?,
            "--commit-latency-us" => {
                config.durability.commit_latency =
                    Duration::from_micros(value.parse().map_err(bad)?);
            }
            "--trace" => {
                config.obs.enabled = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad value for --trace: {other} (on|off)")),
                };
            }
            "--trace-sample" => config.obs.sample_every = value.parse().map_err(bad)?,
            "--slow-op-us" => {
                config.obs.slow_op_us = value.parse().map_err(bad)?;
                config.log_slow = true;
            }
            "--metrics-addr" => config.metrics_addr = Some(value),
            "--sample-interval-ms" => {
                config.sample_interval = Some(Duration::from_millis(value.parse().map_err(bad)?));
            }
            "--sample-file" => config.sample_path = Some(value.into()),
            "--repl-addr" => {
                config.repl.get_or_insert_with(ReplConfig::default).listen = Some(value);
            }
            "--follow" => {
                config.repl.get_or_insert_with(ReplConfig::default).follow = Some(value);
            }
            "--replicate" => {
                config.repl.get_or_insert_with(ReplConfig::default).ack = match value.as_str() {
                    "async" => false,
                    "ack" => true,
                    other => return Err(format!("bad value for --replicate: {other} (async|ack)")),
                };
            }
            "--ack-timeout-ms" => {
                config
                    .repl
                    .get_or_insert_with(ReplConfig::default)
                    .ack_timeout = Duration::from_millis(value.parse().map_err(bad)?);
            }
            "--pull-interval-ms" => {
                config
                    .repl
                    .get_or_insert_with(ReplConfig::default)
                    .pull_interval = Duration::from_millis(value.parse().map_err(bad)?);
            }
            "--failover-ms" => {
                config.repl.get_or_insert_with(ReplConfig::default).failover =
                    Duration::from_millis(value.parse().map_err(bad)?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(rc) = &config.repl {
        if rc.listen.is_none() && rc.follow.is_none() {
            return Err(
                "replication flags need --repl-addr (primary) and/or --follow (follower)"
                    .to_owned(),
            );
        }
        if config.data_dir.is_none() {
            return Err("replication ships the WAL, so it requires --data-dir".to_owned());
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Each connection costs two fds (stream + dup'd write half); ask for
    // headroom above the connection limit before any sockets open.
    match p4lru_reactor::raise_nofile_limit(2 * config.max_conns as u64 + 256) {
        Ok(_) => {}
        Err(e) => eprintln!("warning: could not raise fd limit: {e}"),
    }
    let server = match Server::spawn(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let capacity = config.shards * config.units_per_shard * 3;
    match server.start_mode() {
        StartMode::Volatile => {}
        StartMode::Fresh => println!(
            "durability: fresh data dir at {} (sync={})",
            config
                .data_dir
                .as_deref()
                .unwrap_or_else(|| "?".as_ref())
                .display(),
            config.durability.sync,
        ),
        StartMode::Recovered => {
            let t = server.stats().totals;
            println!(
                "durability: recovered {} records ({} wal records replayed, \
                 torn_tails={}) in {:.1} ms",
                t.store_len,
                t.recovery_replayed,
                t.recovery_torn,
                t.recovery_us as f64 / 1e3,
            );
        }
    }
    println!(
        "p4lru_serverd listening on {} ({} shards, {} items, {} cached addrs, \
         frontend={}, max_conns={})",
        server.local_addr(),
        config.shards,
        config.items,
        capacity,
        config.frontend.name(),
        config.max_conns
    );
    if let Some(addr) = server.metrics_addr() {
        println!("metrics: http://{addr}/metrics");
    }
    if let (Some(role), Some(rc)) = (server.role(), config.repl.as_ref()) {
        // Parsed by cluster tooling (port 0 on --repl-addr picks a free
        // port, and this line is where it learns which one).
        let mode = if rc.ack { "ack" } else { "async" };
        let mut line = format!("replication: role={} mode={mode}", role.name());
        if let Some(addr) = server.repl_addr() {
            line.push_str(&format!(" shipping on {addr}"));
        }
        if let Some(primary) = rc.follow.as_deref() {
            line.push_str(&format!(" following {primary}"));
        }
        println!("{line}");
    }
    let stats = server.wait();
    println!("shutdown: final stats");
    for s in &stats.shards {
        println!(
            "  shard {}: gets={} hits={} misses={} absent={} sets={} dels={} evictions={} hit_rate={:.3} store_len={}",
            s.shard, s.gets, s.hits, s.misses, s.absent, s.sets, s.dels, s.evictions, s.hit_rate, s.store_len
        );
    }
    let t = &stats.totals;
    println!(
        "  total: gets={} hits={} hit_rate={:.3} index_visits={}",
        t.gets, t.hits, t.hit_rate, t.index_visits
    );
    if t.wal_appends > 0 {
        println!(
            "  durability: wal_appends={} wal_fsyncs={} mean_fsync_us={:.1} max_fsync_us={:.1} snapshots={}",
            t.wal_appends,
            t.wal_fsyncs,
            t.wal_fsync_ns as f64 / t.wal_fsyncs.max(1) as f64 / 1e3,
            t.wal_fsync_max_ns as f64 / 1e3,
            t.snapshots,
        );
    }
    if t.get_latency.count > 0 {
        println!(
            "  server-side GET latency: p50={:.1}us p95={:.1}us p99={:.1}us (n={})",
            t.get_latency.p50_us, t.get_latency.p95_us, t.get_latency.p99_us, t.get_latency.count,
        );
    }
    if !stats.stages.is_empty() {
        let line = stats
            .stages
            .iter()
            .map(|s| format!("{}={:.1}us", s.stage, s.p99_us))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  stage p99s: {line}");
    }
    ExitCode::SUCCESS
}
