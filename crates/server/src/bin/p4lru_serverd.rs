//! The server daemon: binds, serves, and exits cleanly on the SHUTDOWN
//! opcode (printing final per-shard stats).

use std::process::ExitCode;

use p4lru_server::server::{Server, ServerConfig};

const USAGE: &str = "\
p4lru_serverd — sharded P4LRU cache service

USAGE: p4lru_serverd [OPTIONS]

OPTIONS:
  --addr <host:port>   listen address       [default: 127.0.0.1:4190]
  --shards <n>         shard threads        [default: 4]
  --items <n>          pre-populated keys   [default: 100000]
  --units <n>          cache units/shard    [default: 4096]
  --seed <n>           cache hash seed      [default: 0x9412C0DE]
  -h, --help           print this help
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4190".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e| format!("bad value for {flag}: {e:?}");
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--shards" => config.shards = value.parse().map_err(bad)?,
            "--items" => config.items = value.parse().map_err(bad)?,
            "--units" => config.units_per_shard = value.parse().map_err(bad)?,
            "--seed" => config.seed = value.parse().map_err(bad)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::spawn(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let capacity = config.shards * config.units_per_shard * 3;
    println!(
        "p4lru_serverd listening on {} ({} shards, {} items, {} cached addrs)",
        server.local_addr(),
        config.shards,
        config.items,
        capacity
    );
    let stats = server.wait();
    println!("shutdown: final stats");
    for s in &stats.shards {
        println!(
            "  shard {}: gets={} hits={} misses={} absent={} sets={} dels={} evictions={} hit_rate={:.3}",
            s.shard, s.gets, s.hits, s.misses, s.absent, s.sets, s.dels, s.evictions, s.hit_rate
        );
    }
    let t = &stats.totals;
    println!(
        "  total: gets={} hits={} hit_rate={:.3} index_visits={}",
        t.gets, t.hits, t.hit_rate, t.index_visits
    );
    ExitCode::SUCCESS
}
