//! One shard: a P4LRU front cache write-through to its own slice of the
//! backing store.
//!
//! This is the software analogue of the paper's LruTable deployment (§3.1):
//! the switch holds a small LRU cache in front of the servers, and a miss
//! takes the *slow path* — here, a B+Tree index walk in
//! [`p4lru_kvstore::Database`] — after which the looked-up record's address
//! is installed in the cache (the §3.1 placeholder is the install; in a
//! single-threaded shard the install is atomic with the lookup, so the
//! placeholder's "reserve, then fill" dance collapses into one step — see
//! DESIGN.md §7). Like LruIndex (§3.2), the cache stores the record's
//! 48-bit *address*, not its value: a hit skips the index walk and reads
//! the slab directly.
//!
//! A shard is single-threaded by construction — the server gives each shard
//! thread exclusive ownership, mirroring how one pipeline owns its
//! registers — so the cache needs no interior locking (see the thread-safety
//! notes on [`p4lru_core::array::LruArray`]).
//!
//! With durability enabled (DESIGN.md §8), every SET/DEL appends to the
//! shard's write-ahead log *before* mutating the in-memory store, and the
//! server's request loop withholds acknowledgements until [`Shard::commit`]
//! has applied the sync policy — so under `sync=always` no acknowledged
//! write can be lost to a crash. Pipelined connections (DESIGN.md §9) are
//! what make the batches between commits deep: [`Shard::commit_batch`]
//! records each batch's size so STATS can report how much one fsync is
//! actually amortizing.

use std::io;
use std::path::Path;
use std::sync::Arc;

use p4lru_core::array::P4Lru3Array;
use p4lru_core::unit::Outcome;
use p4lru_durable::{DurabilityConfig, Recovery, ShardLog, WalOp, WalRecord};
use p4lru_kvstore::slab::Record;
use p4lru_kvstore::{Addr48, Database, VALUE_SIZE};

use crate::metrics::{ShardMetrics, ShardSnapshot};

/// A shard: front cache, backing store, counters, and (optionally) the
/// durability engine.
#[derive(Debug)]
pub struct Shard {
    cache: P4Lru3Array<u64, Addr48>,
    db: Database,
    metrics: Arc<ShardMetrics>,
    log: Option<ShardLog>,
}

fn overwrite(slot: &mut Addr48, addr: Addr48) {
    *slot = addr;
}

impl Shard {
    /// A shard with `units` three-entry cache units, an empty store, and no
    /// durability (in-memory only).
    pub fn new(units: usize, seed: u64) -> Self {
        Self {
            cache: P4Lru3Array::with_seed(units, seed),
            db: Database::default(),
            metrics: Arc::new(ShardMetrics::default()),
            log: None,
        }
    }

    /// Attaches a durability engine to a freshly populated shard: seals an
    /// initial snapshot of the current store (so the population survives a
    /// crash) and opens the WAL. Call after [`Shard::load`]-ing the initial
    /// records and before serving traffic.
    pub fn enable_durability_fresh(
        &mut self,
        dir: &Path,
        config: &DurabilityConfig,
    ) -> io::Result<()> {
        self.log = Some(ShardLog::init_fresh(dir, &self.db, config)?);
        Ok(())
    }

    /// Rebuilds a shard from its durability directory: latest snapshot plus
    /// WAL tail, with the front cache re-warmed by installing the address
    /// of every key the replay touched (oldest first, so the most recently
    /// written keys end up most recently used).
    pub fn recover(
        units: usize,
        seed: u64,
        dir: &Path,
        config: &DurabilityConfig,
    ) -> io::Result<Self> {
        let (log, recovery) = ShardLog::recover(dir, config)?;
        let Recovery {
            db,
            replayed_keys,
            replayed,
            torn_tail,
            duration,
            ..
        } = recovery;
        let mut shard = Self {
            cache: P4Lru3Array::with_seed(units, seed),
            db,
            metrics: Arc::new(ShardMetrics::default()),
            log: Some(log),
        };
        for key in replayed_keys {
            // Deleted keys are simply absent by now; survivors get their
            // (fresh) slab address installed, warming the cache with what
            // was hot at crash time. Warm-up installs bypass the eviction
            // counter — they are not request-driven traffic.
            if let Some(found) = shard.db.lookup_by_key(key) {
                let addr = found.addr;
                shard.cache.update(key, addr, overwrite);
            }
        }
        shard.metrics.recovery(replayed, torn_tail, duration);
        shard.metrics.store_len_set(shard.db.len());
        shard.sync_index_stats();
        Ok(shard)
    }

    /// The shard's metrics handle (share with the STATS path).
    pub fn metrics(&self) -> Arc<ShardMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Front-cache capacity in entries.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of records in the backing store.
    pub fn store_len(&self) -> usize {
        self.db.len()
    }

    /// Whether this shard writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.log.is_some()
    }

    /// Bulk-loads a record without touching counters, the cache, or the WAL
    /// (initial population — made durable by the initial snapshot that
    /// [`Shard::enable_durability_fresh`] seals afterwards).
    pub fn load(&mut self, key: u64, record: Record) {
        self.db.insert(key, record);
        self.metrics.store_len_set(self.db.len());
        self.sync_index_stats();
    }

    /// Reads `key`. A cache hit reads the slab directly by cached address
    /// and refreshes the entry's recency; a miss walks the index and
    /// installs the address.
    pub fn get(&mut self, key: u64) -> Option<Record> {
        if let Some(&addr) = self.cache.get(&key) {
            let record = *self.db.lookup_by_addr(addr);
            self.cache.update(key, addr, overwrite);
            self.metrics.hit();
            return Some(record);
        }
        let out = match self.db.lookup_by_key(key) {
            Some(found) => {
                let (addr, visits) = (found.addr, found.index_visits);
                let record = *found.record;
                self.metrics.miss(visits);
                self.install(key, addr);
                Some(record)
            }
            None => {
                self.metrics.absent();
                None
            }
        };
        self.sync_index_stats();
        out
    }

    /// Write-through SET: the WAL (when durable) sees the record first, then
    /// the backing store, then the cache (write-allocate — the written key
    /// becomes most recently used, matching YCSB's read-your-writes access
    /// pattern). The record is durable only after [`Shard::commit`].
    pub fn set(&mut self, key: u64, record: Record) -> io::Result<()> {
        if let Some(log) = &mut self.log {
            log.append_set(key, record)?;
            self.metrics.wal_append();
        }
        // One find-or-insert walk resolves probe, insert, and address —
        // the seed-era path walked the index twice (probe, then insert)
        // and a third time to learn a new key's address.
        let u = self.db.upsert(key, record);
        if u.existed {
            // The record was overwritten in place, so any cached address
            // is still valid; the walk cost is not charged (seed parity:
            // in-place overwrites reported 0 visits).
            self.metrics.set(0);
        } else {
            self.metrics.set(u.index_visits);
        }
        self.install(key, u.addr);
        self.metrics.store_len_set(self.db.len());
        self.sync_index_stats();
        Ok(())
    }

    /// Deletes `key`, returning whether it existed.
    ///
    /// The cached address **must** be invalidated before the store frees the
    /// record: the slab reuses freed addresses, so a stale cache entry would
    /// later serve some other key's record.
    pub fn del(&mut self, key: u64) -> io::Result<bool> {
        if let Some(log) = &mut self.log {
            log.append_del(key)?;
            self.metrics.wal_append();
        }
        self.metrics.del();
        self.cache.remove(&key);
        let existed = self.db.remove(key);
        self.metrics.store_len_set(self.db.len());
        self.sync_index_stats();
        Ok(existed)
    }

    /// [`Shard::commit`] plus batch accounting: records `batch_len` in the
    /// batch-size histogram counters (STATS `batches`/`batch_mean`/
    /// `batch_max`) next to the fsync it amortizes. The shard loop calls
    /// this once per drained batch — pipelined connections are what make
    /// `batch_len` grow past 1, and the ratio `batch_ops / batches` is the
    /// direct measure of how much group commit is actually grouping.
    pub fn commit_batch(&mut self, batch_len: usize) -> io::Result<()> {
        self.metrics.batch_committed(batch_len);
        self.commit()
    }

    /// Batch boundary: applies the sync policy to pending WAL appends and
    /// seals a snapshot when the cadence says so. The server must call this
    /// before releasing the batch's acknowledgements.
    pub fn commit(&mut self) -> io::Result<()> {
        let Some(log) = &mut self.log else {
            return Ok(());
        };
        if let Some(took) = log.commit()? {
            self.metrics.wal_fsync(took);
        }
        if log.should_snapshot() {
            log.snapshot(&self.db)?;
            self.metrics.snapshot_taken();
            // The snapshot's full scan flagged every index leaf as
            // scanned; re-apply leaf-mode decisions now, in this quiescent
            // moment, instead of letting the next writes pay for it.
            self.db.optimize_index();
        }
        Ok(())
    }

    /// Forces everything appended so far to disk (clean shutdown).
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(log) = &mut self.log {
            let took = log.sync()?;
            self.metrics.wal_fsync(took);
        }
        Ok(())
    }

    /// Sequence number of this shard's last WAL append (`0` without
    /// durability — replication requires a WAL, so a non-durable shard
    /// never reports progress).
    pub fn last_seq(&self) -> u64 {
        self.log.as_ref().map(ShardLog::last_seq).unwrap_or(0)
    }

    /// Applies one WAL record shipped from a primary: re-append it to the
    /// local WAL under the *same* sequence number, then mutate the store the
    /// same way the original request did. Returns `Ok(false)` for a record
    /// at or below the local sequence (a re-delivered pull after a broken
    /// connection — skipping keeps the apply idempotent), `Ok(true)` when
    /// applied, and an error for a sequence gap (the puller must resync its
    /// cursor) or a shard without durability.
    pub fn apply_replicated(&mut self, rec: &WalRecord) -> io::Result<bool> {
        let Some(log) = &mut self.log else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "replication requires a durable shard",
            ));
        };
        if rec.seq <= log.last_seq() {
            return Ok(false);
        }
        log.append_replicated(rec.seq, &rec.op)?;
        self.metrics.wal_append();
        match rec.op {
            WalOp::Set { key, record } => {
                let u = self.db.upsert(key, record);
                self.metrics.set(if u.existed { 0 } else { u.index_visits });
                self.install(key, u.addr);
            }
            WalOp::Del { key } => {
                self.metrics.del();
                // Same invalidate-before-free order as [`Shard::del`]: the
                // slab reuses freed addresses.
                self.cache.remove(&key);
                self.db.remove(key);
            }
        }
        self.metrics.store_len_set(self.db.len());
        self.sync_index_stats();
        Ok(true)
    }

    /// Replaces this shard's entire state with a snapshot shipped from a
    /// primary (catch-up after the primary pruned the WAL history behind
    /// this follower's cursor). The snapshot bytes are validated (magic,
    /// CRC, sequence) and installed crash-atomically before the local WAL
    /// is truncated; the front cache starts cold.
    pub fn install_shipped_snapshot(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        let Some(log) = &mut self.log else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "replication requires a durable shard",
            ));
        };
        let entries = log.reset_to_snapshot(seq, bytes)?;
        self.db = Database::from_sorted_entries(entries);
        self.cache.drain();
        self.metrics.store_len_set(self.db.len());
        self.sync_index_stats();
        Ok(())
    }

    /// A snapshot of this shard's counters.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        self.metrics.snapshot(shard)
    }

    /// When this shard's WAL last appended a record (`None` without
    /// durability or before the first append) — the tracer's `wal_append`
    /// span hook, read by the shard loop right after a mutation so the
    /// stamp reflects when the buffered write actually happened.
    pub fn last_wal_append_at(&self) -> Option<std::time::Instant> {
        self.log.as_ref().and_then(|log| log.last_append_at())
    }

    fn install(&mut self, key: u64, addr: Addr48) {
        if let Outcome::Evicted { .. } = self.cache.update(key, addr, overwrite) {
            self.metrics.eviction();
        }
    }

    /// Mirrors the index gauges (tree height, descent-cache hits) into the
    /// metrics after an operation touched the index.
    fn sync_index_stats(&self) {
        self.metrics
            .index_stats(self.db.index_height(), self.db.index_descent_hits());
    }
}

/// Pads or truncates arbitrary value bytes to the store's record size.
pub fn record_from_bytes(value: &[u8]) -> Record {
    let mut r = [0u8; VALUE_SIZE];
    let n = value.len().min(VALUE_SIZE);
    r[..n].copy_from_slice(&value[..n]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4lru_durable::SyncPolicy;
    use p4lru_kvstore::db::record_for;
    use std::sync::atomic::Ordering;

    fn loaded_shard(items: u64) -> Shard {
        let mut shard = Shard::new(64, 0xBEEF);
        for k in 0..items {
            shard.load(k, record_for(k));
        }
        shard
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(label: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "p4lru-shard-{label}-{}-{:x}",
                std::process::id(),
                &raw const label as usize
            ));
            std::fs::create_dir_all(&path).unwrap();
            Self(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn get_miss_then_hit() {
        let mut shard = loaded_shard(100);
        assert_eq!(shard.get(7), Some(record_for(7)));
        assert_eq!(shard.get(7), Some(record_for(7)));
        assert_eq!(shard.get(999), None);
        let s = shard.snapshot(0);
        assert_eq!((s.hits, s.misses, s.absent), (1, 1, 1));
        assert_eq!(s.gets, 3);
        assert!(s.index_visits > 0, "a miss walks the index");
        assert_eq!(s.store_len, 100);
        assert_eq!(s.wal_appends, 0, "no WAL without durability");
    }

    #[test]
    fn commit_batch_records_the_group_commit_sizes() {
        let mut shard = loaded_shard(8);
        shard.set(100, record_for(100)).unwrap();
        shard.commit_batch(1).unwrap();
        shard.set(101, record_for(101)).unwrap();
        shard.set(102, record_for(102)).unwrap();
        shard.set(103, record_for(103)).unwrap();
        shard.commit_batch(3).unwrap();
        let snap = shard.snapshot(0);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batch_ops, 4);
        assert_eq!(snap.batch_max, 3);
        assert!((snap.batch_mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_new_and_existing_keys() {
        let mut shard = loaded_shard(10);
        shard.set(3, record_for(103)).unwrap(); // existing: in-place
        assert_eq!(shard.get(3), Some(record_for(103)));
        shard.set(500, record_for(500)).unwrap(); // new key
        assert_eq!(shard.get(500), Some(record_for(500)));
        assert_eq!(shard.store_len(), 11);
        let s = shard.snapshot(0);
        assert_eq!(s.sets, 2);
        // Both SETs installed the address, so both GETs hit.
        assert_eq!((s.hits, s.misses), (2, 0));
        assert_eq!(s.store_len, 11);
    }

    #[test]
    fn del_invalidates_the_cached_address() {
        let mut shard = loaded_shard(10);
        assert_eq!(shard.get(4), Some(record_for(4))); // cache addr of key 4
        assert!(shard.del(4).unwrap());
        assert!(!shard.del(4).unwrap(), "second delete finds nothing");
        // The slab reuses key 4's freed slot for the next insert; a stale
        // cached address would now serve key 777's record under key 4.
        shard.set(777, record_for(777)).unwrap();
        assert_eq!(shard.get(4), None, "deleted key must stay deleted");
        assert_eq!(shard.get(777), Some(record_for(777)));
    }

    #[test]
    fn eviction_is_counted_when_the_cache_overflows() {
        let mut shard = Shard::new(1, 1); // one unit: 3 entries total
        for k in 0..10 {
            shard.load(k, record_for(k));
        }
        for k in 0..10 {
            assert_eq!(shard.get(k), Some(record_for(k)));
        }
        let s = shard.snapshot(0);
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 7, "10 installs into 3 slots evict 7");
    }

    #[test]
    fn metrics_handle_is_shared() {
        let mut shard = loaded_shard(5);
        let handle = shard.metrics();
        shard.get(1);
        assert_eq!(handle.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn record_from_bytes_pads_and_truncates() {
        assert_eq!(record_from_bytes(b"ab")[..2], *b"ab");
        assert_eq!(record_from_bytes(b"ab")[2..], [0u8; VALUE_SIZE - 2]);
        let long = vec![7u8; VALUE_SIZE + 9];
        assert_eq!(record_from_bytes(&long), [7u8; VALUE_SIZE]);
    }

    #[test]
    fn durable_shard_survives_a_simulated_crash() {
        let tmp = TempDir::new("crash");
        let config = DurabilityConfig {
            sync: SyncPolicy::Always,
            ..DurabilityConfig::default()
        };
        {
            let mut shard = loaded_shard(20);
            shard.enable_durability_fresh(&tmp.0, &config).unwrap();
            assert!(shard.is_durable());
            shard.set(100, record_for(100)).unwrap();
            shard.set(5, record_for(505)).unwrap();
            assert!(shard.del(7).unwrap());
            shard.commit().unwrap();
            let s = shard.snapshot(0);
            assert_eq!(s.wal_appends, 3);
            assert!(s.wal_fsyncs >= 1);
            // Dropped without flush: a crash. Everything committed must
            // still be recoverable.
        }
        let mut shard = Shard::recover(64, 0xBEEF, &tmp.0, &config).unwrap();
        assert_eq!(shard.store_len(), 20, "+1 new, -1 deleted");
        assert_eq!(shard.get(100), Some(record_for(100)));
        assert_eq!(shard.get(5), Some(record_for(505)));
        assert_eq!(shard.get(7), None);
        let s = shard.snapshot(0);
        assert_eq!(s.recovery_replayed, 3);
        assert_eq!(s.recovery_torn, 0);
        // The replayed keys were re-installed: reading them hits the cache.
        assert!(s.hits >= 2, "recovered hot keys hit, got {}", s.hits);
    }

    #[test]
    fn replicated_records_apply_skip_stale_and_reject_gaps() {
        let tmp = TempDir::new("repl-apply");
        let config = DurabilityConfig::default();
        let mut shard = loaded_shard(5);
        shard.enable_durability_fresh(&tmp.0, &config).unwrap();

        let set = |seq, key| WalRecord {
            seq,
            op: WalOp::Set {
                key,
                record: record_for(key + 1000),
            },
        };
        assert!(shard.apply_replicated(&set(1, 100)).unwrap());
        assert!(shard.apply_replicated(&set(2, 101)).unwrap());
        assert_eq!(shard.last_seq(), 2);
        assert_eq!(shard.get(100), Some(record_for(1100)));

        // Re-delivery of an already-applied record is a no-op, not damage.
        assert!(!shard.apply_replicated(&set(2, 101)).unwrap());
        assert_eq!(shard.last_seq(), 2);

        // A DEL replicates with the same invalidate-before-free order.
        let del = WalRecord {
            seq: 3,
            op: WalOp::Del { key: 100 },
        };
        assert!(shard.apply_replicated(&del).unwrap());
        assert_eq!(shard.get(100), None);

        // A sequence gap is refused (the puller resyncs its cursor).
        assert!(shard.apply_replicated(&set(9, 102)).is_err());
        assert_eq!(shard.last_seq(), 3, "a refused record appends nothing");

        // The replicated history is durable: the shard loop commits each
        // applied batch, and recovery replays it.
        shard.commit().unwrap();
        drop(shard);
        let mut shard = Shard::recover(64, 0xBEEF, &tmp.0, &config).unwrap();
        assert_eq!(shard.get(101), Some(record_for(1101)));
        assert_eq!(shard.get(100), None);
    }

    #[test]
    fn shipped_snapshot_replaces_state_and_resets_the_log() {
        let tmp_primary = TempDir::new("repl-snap-src");
        let tmp_follower = TempDir::new("repl-snap-dst");
        let config = DurabilityConfig::default();

        // The "primary": 30 records sealed into a snapshot at seq 4.
        let mut primary = loaded_shard(30);
        primary
            .enable_durability_fresh(&tmp_primary.0, &config)
            .unwrap();
        for seq in 1..=4 {
            primary.set(seq + 200, record_for(seq + 200)).unwrap();
        }
        primary.commit().unwrap();
        if let Some(log) = &mut primary.log {
            log.snapshot(&primary.db).unwrap();
        }
        let (seq, path) = p4lru_durable::snapshot::list_snapshots(&tmp_primary.0)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(seq, 4);
        let bytes = std::fs::read(path).unwrap();

        // The "follower": diverged junk state that must disappear.
        let mut follower = loaded_shard(3);
        follower
            .enable_durability_fresh(&tmp_follower.0, &config)
            .unwrap();
        follower.set(999, record_for(999)).unwrap();
        follower.get(999); // cache it, so drain() has something to clear
        follower.install_shipped_snapshot(seq, &bytes).unwrap();

        assert_eq!(follower.store_len(), 34);
        assert_eq!(follower.last_seq(), seq);
        assert_eq!(follower.get(999), None, "pre-snapshot state is gone");
        assert_eq!(follower.get(201), Some(record_for(201)));

        // The log continues from the snapshot's sequence.
        let next = WalRecord {
            seq: seq + 1,
            op: WalOp::Set {
                key: 777,
                record: record_for(777),
            },
        };
        assert!(follower.apply_replicated(&next).unwrap());
        follower.commit().unwrap();
        drop(follower);
        let mut follower = Shard::recover(64, 0xBEEF, &tmp_follower.0, &config).unwrap();
        assert_eq!(follower.get(777), Some(record_for(777)));
        assert_eq!(follower.store_len(), 35);
    }

    #[test]
    fn replication_needs_a_durable_shard() {
        let mut shard = loaded_shard(2);
        let rec = WalRecord {
            seq: 1,
            op: WalOp::Del { key: 0 },
        };
        assert!(shard.apply_replicated(&rec).is_err());
        assert!(shard.install_shipped_snapshot(1, &[]).is_err());
        assert_eq!(shard.last_seq(), 0);
    }

    #[test]
    fn recovery_warms_the_cache_with_replayed_keys() {
        let tmp = TempDir::new("warm");
        let config = DurabilityConfig::default();
        {
            let mut shard = loaded_shard(10);
            shard.enable_durability_fresh(&tmp.0, &config).unwrap();
            shard.set(42, record_for(42)).unwrap();
            shard.commit().unwrap();
        }
        let mut shard = Shard::recover(64, 0xBEEF, &tmp.0, &config).unwrap();
        shard.get(42);
        let s = shard.snapshot(0);
        assert_eq!((s.hits, s.misses), (1, 0), "replayed key was pre-installed");
    }
}
