//! One shard: a P4LRU front cache write-through to its own slice of the
//! backing store.
//!
//! This is the software analogue of the paper's LruTable deployment (§3.1):
//! the switch holds a small LRU cache in front of the servers, and a miss
//! takes the *slow path* — here, a B+Tree index walk in
//! [`p4lru_kvstore::Database`] — after which the looked-up record's address
//! is installed in the cache (the §3.1 placeholder is the install; in a
//! single-threaded shard the install is atomic with the lookup, so the
//! placeholder's "reserve, then fill" dance collapses into one step — see
//! DESIGN.md §7). Like LruIndex (§3.2), the cache stores the record's
//! 48-bit *address*, not its value: a hit skips the index walk and reads
//! the slab directly.
//!
//! A shard is single-threaded by construction — the server gives each shard
//! thread exclusive ownership, mirroring how one pipeline owns its
//! registers — so the cache needs no interior locking (see the thread-safety
//! notes on [`p4lru_core::array::LruArray`]).

use std::sync::Arc;

use p4lru_core::array::P4Lru3Array;
use p4lru_core::unit::Outcome;
use p4lru_kvstore::slab::Record;
use p4lru_kvstore::{Addr48, Database, VALUE_SIZE};

use crate::metrics::{ShardMetrics, ShardSnapshot};

/// A shard: front cache, backing store, and counters.
#[derive(Debug)]
pub struct Shard {
    cache: P4Lru3Array<u64, Addr48>,
    db: Database,
    metrics: Arc<ShardMetrics>,
}

fn overwrite(slot: &mut Addr48, addr: Addr48) {
    *slot = addr;
}

impl Shard {
    /// A shard with `units` three-entry cache units and an empty store.
    pub fn new(units: usize, seed: u64) -> Self {
        Self {
            cache: P4Lru3Array::with_seed(units, seed),
            db: Database::default(),
            metrics: Arc::new(ShardMetrics::default()),
        }
    }

    /// The shard's metrics handle (share with the STATS path).
    pub fn metrics(&self) -> Arc<ShardMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Front-cache capacity in entries.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Number of records in the backing store.
    pub fn store_len(&self) -> usize {
        self.db.len()
    }

    /// Bulk-loads a record without touching counters or the cache (initial
    /// population).
    pub fn load(&mut self, key: u64, record: Record) {
        self.db.insert(key, record);
    }

    /// Reads `key`. A cache hit reads the slab directly by cached address
    /// and refreshes the entry's recency; a miss walks the index and
    /// installs the address.
    pub fn get(&mut self, key: u64) -> Option<Record> {
        if let Some(&addr) = self.cache.get(&key) {
            let record = *self.db.lookup_by_addr(addr);
            self.cache.update(key, addr, overwrite);
            self.metrics.hit();
            return Some(record);
        }
        match self.db.lookup_by_key(key) {
            Some(found) => {
                let (addr, visits) = (found.addr, found.index_visits);
                let record = *found.record;
                self.metrics.miss(visits);
                self.install(key, addr);
                Some(record)
            }
            None => {
                self.metrics.absent();
                None
            }
        }
    }

    /// Write-through SET: the backing store is updated first, then the
    /// cache (write-allocate — the written key becomes most recently used,
    /// matching YCSB's read-your-writes access pattern).
    pub fn set(&mut self, key: u64, record: Record) {
        match self.db.insert(key, record) {
            Some(addr) => {
                // Existing key: the record was overwritten in place, so any
                // cached address is still valid.
                self.metrics.set(0);
                self.install(key, addr);
            }
            None => {
                // New key: learn the freshly assigned address the same way
                // a miss would.
                let found = self.db.lookup_by_key(key).expect("key was just inserted");
                let (addr, visits) = (found.addr, found.index_visits);
                self.metrics.set(visits);
                self.install(key, addr);
            }
        }
    }

    /// Deletes `key`, returning whether it existed.
    ///
    /// The cached address **must** be invalidated before the store frees the
    /// record: the slab reuses freed addresses, so a stale cache entry would
    /// later serve some other key's record.
    pub fn del(&mut self, key: u64) -> bool {
        self.metrics.del();
        self.cache.remove(&key);
        self.db.remove(key)
    }

    /// A snapshot of this shard's counters.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        self.metrics.snapshot(shard)
    }

    fn install(&mut self, key: u64, addr: Addr48) {
        if let Outcome::Evicted { .. } = self.cache.update(key, addr, overwrite) {
            self.metrics.eviction();
        }
    }
}

/// Pads or truncates arbitrary value bytes to the store's record size.
pub fn record_from_bytes(value: &[u8]) -> Record {
    let mut r = [0u8; VALUE_SIZE];
    let n = value.len().min(VALUE_SIZE);
    r[..n].copy_from_slice(&value[..n]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4lru_kvstore::db::record_for;
    use std::sync::atomic::Ordering;

    fn loaded_shard(items: u64) -> Shard {
        let mut shard = Shard::new(64, 0xBEEF);
        for k in 0..items {
            shard.load(k, record_for(k));
        }
        shard
    }

    #[test]
    fn get_miss_then_hit() {
        let mut shard = loaded_shard(100);
        assert_eq!(shard.get(7), Some(record_for(7)));
        assert_eq!(shard.get(7), Some(record_for(7)));
        assert_eq!(shard.get(999), None);
        let s = shard.snapshot(0);
        assert_eq!((s.hits, s.misses, s.absent), (1, 1, 1));
        assert_eq!(s.gets, 3);
        assert!(s.index_visits > 0, "a miss walks the index");
    }

    #[test]
    fn set_new_and_existing_keys() {
        let mut shard = loaded_shard(10);
        shard.set(3, record_for(103)); // existing: in-place
        assert_eq!(shard.get(3), Some(record_for(103)));
        shard.set(500, record_for(500)); // new key
        assert_eq!(shard.get(500), Some(record_for(500)));
        assert_eq!(shard.store_len(), 11);
        let s = shard.snapshot(0);
        assert_eq!(s.sets, 2);
        // Both SETs installed the address, so both GETs hit.
        assert_eq!((s.hits, s.misses), (2, 0));
    }

    #[test]
    fn del_invalidates_the_cached_address() {
        let mut shard = loaded_shard(10);
        assert_eq!(shard.get(4), Some(record_for(4))); // cache addr of key 4
        assert!(shard.del(4));
        assert!(!shard.del(4), "second delete finds nothing");
        // The slab reuses key 4's freed slot for the next insert; a stale
        // cached address would now serve key 777's record under key 4.
        shard.set(777, record_for(777));
        assert_eq!(shard.get(4), None, "deleted key must stay deleted");
        assert_eq!(shard.get(777), Some(record_for(777)));
    }

    #[test]
    fn eviction_is_counted_when_the_cache_overflows() {
        let mut shard = Shard::new(1, 1); // one unit: 3 entries total
        for k in 0..10 {
            shard.load(k, record_for(k));
        }
        for k in 0..10 {
            assert_eq!(shard.get(k), Some(record_for(k)));
        }
        let s = shard.snapshot(0);
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 7, "10 installs into 3 slots evict 7");
    }

    #[test]
    fn metrics_handle_is_shared() {
        let mut shard = loaded_shard(5);
        let handle = shard.metrics();
        shard.get(1);
        assert_eq!(handle.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn record_from_bytes_pads_and_truncates() {
        assert_eq!(record_from_bytes(b"ab")[..2], *b"ab");
        assert_eq!(record_from_bytes(b"ab")[2..], [0u8; VALUE_SIZE - 2]);
        let long = vec![7u8; VALUE_SIZE + 9];
        assert_eq!(record_from_bytes(&long), [7u8; VALUE_SIZE]);
    }
}
